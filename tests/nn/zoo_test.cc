/**
 * @file
 * Zoo invariants against paper Table 1: network types, layer
 * counts, parameter counts, and input/output geometry for the five
 * Tonic architectures.
 */

#include "nn/zoo.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/net_def.hh"

namespace djinn {
namespace nn {
namespace zoo {
namespace {

/** Parse without weight init: structure checks only (fast). */
std::shared_ptr<Network>
structureOf(Model model)
{
    return parseNetDefOrDie(netDef(model));
}

TEST(Zoo, AllModelsListedInTableOrder)
{
    auto models = allModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0], Model::AlexNet);
    EXPECT_EQ(models[3], Model::KaldiAsr);
    EXPECT_EQ(models[6], Model::SennaNer);
}

TEST(Zoo, NameRoundTrip)
{
    for (Model m : allModels())
        EXPECT_EQ(modelFromName(modelName(m)), m);
    EXPECT_THROW(modelFromName("resnet"), FatalError);
}

TEST(Zoo, AlexNetMatchesTable1)
{
    auto net = structureOf(Model::AlexNet);
    EXPECT_EQ(net->inputShape(), Shape(1, 3, 227, 227));
    EXPECT_EQ(net->outputShape(), Shape(1, 1000));
    // Table 1: 22 layers, 60M parameters. Our Caffe-style deploy
    // structure has 23 layers (dropout counting differs); parameter
    // count lands on the paper's 60M.
    EXPECT_NEAR(static_cast<double>(net->layerCount()), 22.0, 1.5);
    EXPECT_NEAR(static_cast<double>(net->paramCount()) / 1e6, 60.0,
                3.0);
}

TEST(Zoo, AlexNetPyramid)
{
    auto net = structureOf(Model::AlexNet);
    // The conv feature pyramid must reproduce 55/27/13/6.
    EXPECT_EQ(net->findLayer("conv1")->outputShape(),
              Shape(1, 96, 55, 55));
    EXPECT_EQ(net->findLayer("pool1")->outputShape(),
              Shape(1, 96, 27, 27));
    EXPECT_EQ(net->findLayer("pool2")->outputShape(),
              Shape(1, 256, 13, 13));
    EXPECT_EQ(net->findLayer("pool5")->outputShape(),
              Shape(1, 256, 6, 6));
    EXPECT_EQ(net->findLayer("fc6")->outputShape(), Shape(1, 4096));
}

TEST(Zoo, MnistMatchesTable1)
{
    auto net = structureOf(Model::Mnist);
    EXPECT_EQ(net->inputShape(), Shape(1, 1, 28, 28));
    EXPECT_EQ(net->outputShape(), Shape(1, 10));
    EXPECT_EQ(net->layerCount(), 7u); // Table 1: 7 layers
    // Table 1: 60K parameters.
    EXPECT_NEAR(static_cast<double>(net->paramCount()) / 1e3, 60.0,
                10.0);
}

TEST(Zoo, DeepFaceMatchesTable1)
{
    auto net = structureOf(Model::DeepFace);
    EXPECT_EQ(net->inputShape(), Shape(1, 3, 152, 152));
    EXPECT_EQ(net->layerCount(), 8u); // Table 1: 8 layers
    // Table 1: 120M parameters; our faithful PubFig83-classifier
    // variant lands within ~15%.
    EXPECT_NEAR(static_cast<double>(net->paramCount()) / 1e6, 120.0,
                20.0);
    // 83 celebrity identities (PubFig83+LFW).
    EXPECT_EQ(net->outputShape(), Shape(1, 83));
}

TEST(Zoo, DeepFaceLocallyConnectedDominatesParams)
{
    auto net = structureOf(Model::DeepFace);
    uint64_t lc_params = 0;
    for (size_t i = 0; i < net->layerCount(); ++i) {
        if (net->layer(i).kind() == LayerKind::LocallyConnected)
            lc_params += net->layer(i).paramCount();
    }
    EXPECT_GT(lc_params, net->paramCount() / 2);
}

TEST(Zoo, KaldiMatchesTable1)
{
    auto net = structureOf(Model::KaldiAsr);
    EXPECT_EQ(net->inputShape(), Shape(1, 440, 1, 1));
    EXPECT_EQ(net->layerCount(), 13u); // Table 1: 13 layers
    EXPECT_NEAR(static_cast<double>(net->paramCount()) / 1e6, 30.0,
                2.0);
    EXPECT_EQ(net->outputShape(), Shape(1, 4000));
}

TEST(Zoo, KaldiIsPureDnn)
{
    auto net = structureOf(Model::KaldiAsr);
    for (size_t i = 0; i < net->layerCount(); ++i) {
        LayerKind kind = net->layer(i).kind();
        EXPECT_TRUE(kind == LayerKind::InnerProduct ||
                    kind == LayerKind::Sigmoid)
            << "layer " << i << " is not DNN-style";
    }
}

TEST(Zoo, SennaVariantsMatchTable1)
{
    for (Model m : {Model::SennaPos, Model::SennaChk,
                    Model::SennaNer}) {
        auto net = structureOf(m);
        EXPECT_EQ(net->inputShape(), Shape(1, 250, 1, 1))
            << modelName(m);
        EXPECT_EQ(net->layerCount(), 3u) << modelName(m);
        EXPECT_NEAR(static_cast<double>(net->paramCount()) / 1e3,
                    180.0, 30.0)
            << modelName(m);
    }
}

TEST(Zoo, SennaTagSetSizes)
{
    EXPECT_EQ(structureOf(Model::SennaPos)->outputShape(),
              Shape(1, 45));
    EXPECT_EQ(structureOf(Model::SennaChk)->outputShape(),
              Shape(1, 23));
    EXPECT_EQ(structureOf(Model::SennaNer)->outputShape(),
              Shape(1, 9));
}

TEST(Zoo, AllNetdefsRoundTripThroughFormatter)
{
    for (Model m : allModels()) {
        auto net = structureOf(m);
        auto reparsed = parseNetDef(formatNetDef(*net));
        ASSERT_TRUE(reparsed.isOk())
            << modelName(m) << ": "
            << reparsed.status().toString();
        auto net2 = reparsed.value();
        EXPECT_EQ(net2->layerCount(), net->layerCount())
            << modelName(m);
        EXPECT_EQ(net2->paramCount(), net->paramCount())
            << modelName(m);
        EXPECT_EQ(net2->inputShape(), net->inputShape())
            << modelName(m);
        EXPECT_EQ(net2->outputShape(), net->outputShape())
            << modelName(m);
    }
}

TEST(Zoo, BuildInitializesWeightsDeterministically)
{
    auto a = build(Model::Mnist, 42);
    auto b = build(Model::Mnist, 42);
    auto pa = a->layer(0).params();
    auto pb = b->layer(0).params();
    for (int64_t i = 0; i < pa[0]->elems(); ++i)
        EXPECT_FLOAT_EQ((*pa[0])[i], (*pb[0])[i]);
}

TEST(Zoo, MnistForwardRuns)
{
    auto net = build(Model::Mnist, 42);
    Tensor in(Shape(2, 1, 28, 28), 0.5f);
    Tensor out = net->forward(in);
    EXPECT_EQ(out.shape(), Shape(2, 10));
}

TEST(Zoo, SennaForwardRuns)
{
    auto net = build(Model::SennaPos, 42);
    Tensor in(Shape(28, 250), 0.1f);
    Tensor out = net->forward(in);
    EXPECT_EQ(out.shape(), Shape(28, 45));
}

TEST(Zoo, AlexNetForwardRuns)
{
    auto net = build(Model::AlexNet, 42);
    Tensor in(Shape(1, 3, 227, 227), 0.2f);
    Tensor out = net->forward(in);
    EXPECT_EQ(out.shape(), Shape(1, 1000));
    // Softmax output.
    double sum = 0;
    for (int64_t i = 0; i < 1000; ++i)
        sum += out[i];
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

} // namespace
} // namespace zoo
} // namespace nn
} // namespace djinn
