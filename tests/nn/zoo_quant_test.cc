/**
 * @file
 * Accuracy-preservation tests for the quantized zoo (DESIGN.md
 * §14): lowering a model to bf16 or int8 must keep the top-1
 * prediction on the committed calibration inputs and on fresh test
 * inputs, the calibration batch must be deterministic, and the
 * precision metadata must survive a save/load round trip.
 *
 * Top-1 agreement is the paper's serving-quality bar — DjiNN
 * clients consume argmax labels, so a quantization scheme is only
 * admissible if the label stream is unchanged on the supported
 * zoo. (The determinism suite separately pins the exact bits.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/thread_pool.hh"
#include "nn/serialize.hh"
#include "nn/tensor.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace nn {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

/** A deterministic, sample-varying test batch (distinct from the
 * calibration stream: different LCG constants). */
Tensor
freshInput(const Network &net, int64_t batch)
{
    Tensor in(net.inputShape().withBatch(batch));
    float *data = in.data();
    int64_t elems = in.shape().elems();
    uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (int64_t e = 0; e < elems; ++e) {
        state = state * 2862933555777941757ULL + 3037000493ULL;
        data[e] = static_cast<float>(
                      static_cast<uint32_t>(state >> 40)) /
                      8388608.0f -
                  1.0f;
    }
    return in;
}

TEST(ZooQuant, CalibrationBatchIsDeterministicAndModelKeyed)
{
    auto mnist = zoo::build(zoo::Model::Mnist, 42);
    Tensor a = zoo::calibrationBatch(*mnist);
    Tensor b = zoo::calibrationBatch(*mnist);
    ASSERT_EQ(a.shape(), b.shape());
    ASSERT_EQ(a.shape(), mnist->inputShape().withBatch(4));
    for (int64_t i = 0; i < a.elems(); ++i)
        ASSERT_EQ(a[i], b[i]) << "calibration batch not stable at "
                              << i;

    // Keyed by network name: a different model sees different bytes
    // (same values would mean the key is ignored).
    auto senna = zoo::build(zoo::Model::SennaPos, 42);
    Tensor c = zoo::calibrationBatch(*senna);
    ASSERT_NE(c.shape(), a.shape());
    bool differs = false;
    int64_t n = std::min(a.elems(), c.elems());
    for (int64_t i = 0; i < n && !differs; ++i)
        differs = a[i] != c[i];
    ASSERT_TRUE(differs)
        << "calibration stream ignores the network name";
}

TEST(ZooQuant, QuantizedForwardKeepsTopOneAgreement)
{
    PoolSizeGuard guard;
    common::setComputeThreads(2);
    // The full-conv models (alexnet, deepface) are exercised by the
    // determinism suite; here the small-but-representative trio
    // keeps the accuracy bar cheap enough for every CI run.
    const zoo::Model models[] = {zoo::Model::Mnist,
                                 zoo::Model::KaldiAsr,
                                 zoo::Model::SennaPos};
    for (zoo::Model model : models) {
        std::string name = zoo::modelName(model);
        auto f32 = zoo::build(model, 42);
        Tensor calib = zoo::calibrationBatch(*f32);
        Tensor test = freshInput(*f32, 4);
        Tensor refCalib = f32->forward(calib);
        Tensor refTest = f32->forward(test);

        for (Precision p : {Precision::Bf16, Precision::Int8}) {
            SCOPED_TRACE(name + "/" + precisionName(p));
            auto low = zoo::build(model, p, 42);
            ASSERT_EQ(low->precision(), p);
            Tensor gotCalib = low->forward(calib);
            Tensor gotTest = low->forward(test);
            ASSERT_EQ(gotCalib.shape(), refCalib.shape());
            for (int64_t s = 0; s < calib.shape().n(); ++s) {
                EXPECT_EQ(gotCalib.argmaxSample(s),
                          refCalib.argmaxSample(s))
                    << "top-1 flip on calibration sample " << s;
            }
            for (int64_t s = 0; s < test.shape().n(); ++s) {
                EXPECT_EQ(gotTest.argmaxSample(s),
                          refTest.argmaxSample(s))
                    << "top-1 flip on test sample " << s;
            }
        }
    }
}

TEST(ZooQuant, QuantizedModelSurvivesSaveLoadBitExactly)
{
    PoolSizeGuard guard;
    common::setComputeThreads(1);
    std::string path =
        ::testing::TempDir() + "/zoo_quant_test.djw";
    for (Precision p : {Precision::Bf16, Precision::Int8}) {
        SCOPED_TRACE(precisionName(p));
        auto src = zoo::build(zoo::Model::Mnist, p, 42);
        ASSERT_TRUE(saveWeights(*src, path).isOk());

        // Load into a plain f32 build: the QNT1 trailer must restore
        // both the precision and the exact quantized numerics.
        auto dst = zoo::build(zoo::Model::Mnist, 42);
        ASSERT_EQ(dst->precision(), Precision::F32);
        ASSERT_TRUE(loadWeights(*dst, path).isOk());
        ASSERT_EQ(dst->precision(), p);

        Tensor in = freshInput(*src, 2);
        Tensor a = src->forward(in);
        Tensor b = dst->forward(in);
        ASSERT_EQ(a.shape(), b.shape());
        for (int64_t i = 0; i < a.elems(); ++i) {
            uint32_t ba, bb;
            std::memcpy(&ba, &a[i], sizeof(ba));
            std::memcpy(&bb, &b[i], sizeof(bb));
            ASSERT_EQ(ba, bb)
                << "bit mismatch after reload at " << i;
        }
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace nn
} // namespace djinn
