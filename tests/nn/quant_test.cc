/**
 * @file
 * Property-based tests for the scalar quantization primitives
 * (nn/quant.hh): quantize/dequantize round trips stay within half a
 * quantization step, real zero is always exactly representable, and
 * the bf16 rounding helpers implement round-to-nearest-even. Edge
 * cases — all-zero tensors, single-value tensors, denormal-adjacent
 * magnitudes, and ±FLT_MAX — are exercised explicitly alongside the
 * random sweeps.
 */

#include "nn/quant.hh"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace djinn {
namespace nn {
namespace {

/**
 * Round-trip bound: a value inside the calibrated range maps to a
 * code at most half a step away, and the dequant multiply adds at
 * most a couple of ulps on top.
 */
float
stepBound(const QuantParams &p)
{
    return 0.5f * p.scale * (1.0f + 4.0f * FLT_EPSILON);
}

void
checkRoundTrip(const QuantParams &p, float lo, float hi,
               const std::vector<float> &values)
{
    for (float x : values) {
        if (x < lo || x > hi)
            continue;
        int32_t q = p.quantize(x);
        ASSERT_GE(q, p.qmin) << "x=" << x;
        ASSERT_LE(q, p.qmax) << "x=" << x;
        float back = p.dequantize(q);
        ASSERT_NEAR(back, x, stepBound(p))
            << "x=" << x << " q=" << q << " scale=" << p.scale
            << " zp=" << p.zeroPoint;
    }
}

TEST(Quant, ZeroPointIsExactForAllMappings)
{
    djinn::Rng rng(0x5eed);
    for (int trial = 0; trial < 200; ++trial) {
        float a = static_cast<float>(rng.uniform(-100.0, 100.0));
        float b = static_cast<float>(rng.uniform(-100.0, 100.0));
        float lo = std::min(a, b);
        float hi = std::max(a, b);
        for (const QuantParams &p :
             {QuantParams::affineU8(lo, hi),
              QuantParams::affineS8(lo, hi),
              QuantParams::symmetricS8(std::max(std::fabs(lo),
                                                std::fabs(hi)))}) {
            SCOPED_TRACE(testing::Message()
                         << "lo=" << lo << " hi=" << hi
                         << " scale=" << p.scale
                         << " zp=" << p.zeroPoint);
            // Real zero maps to the zero point and back to exact 0:
            // padding and sparse activations must not drift.
            ASSERT_EQ(p.quantize(0.0f), p.zeroPoint);
            ASSERT_EQ(p.dequantize(p.zeroPoint), 0.0f);
            ASSERT_GE(p.zeroPoint, p.qmin);
            ASSERT_LE(p.zeroPoint, p.qmax);
        }
    }
}

TEST(Quant, PerTensorRoundTripWithinHalfStep)
{
    djinn::Rng rng(0xabcd);
    for (int trial = 0; trial < 100; ++trial) {
        float a = static_cast<float>(rng.uniform(-50.0, 50.0));
        float b = static_cast<float>(rng.uniform(-50.0, 50.0));
        float lo = std::min(a, b);
        float hi = std::max(a, b);
        std::vector<float> values(256);
        for (float &v : values) {
            v = static_cast<float>(
                rng.uniform(static_cast<double>(lo),
                            static_cast<double>(hi)));
        }
        values.push_back(lo);
        values.push_back(hi);
        values.push_back(0.0f);
        // The affine factories widen the range to include zero.
        float wlo = std::min(lo, 0.0f);
        float whi = std::max(hi, 0.0f);
        checkRoundTrip(QuantParams::affineU8(lo, hi), wlo, whi,
                       values);
        checkRoundTrip(QuantParams::affineS8(lo, hi), wlo, whi,
                       values);
    }
}

TEST(Quant, PerChannelSymmetricRoundTripWithinHalfStep)
{
    djinn::Rng rng(0x77);
    // Per-output-channel weight quantization: each channel gets its
    // own symmetric scale from its own max magnitude.
    for (int channel = 0; channel < 64; ++channel) {
        double mag = std::pow(10.0, rng.uniform(-3.0, 3.0));
        std::vector<float> w(128);
        for (float &x : w)
            x = static_cast<float>(rng.uniform(-mag, mag));
        float m = maxAbs(w.data(), static_cast<int64_t>(w.size()));
        QuantParams p = QuantParams::symmetricS8(m);
        ASSERT_EQ(p.zeroPoint, 0);
        checkRoundTrip(p, -m, m, w);
        // Symmetric mapping: negation of the input negates the code.
        for (float x : w)
            ASSERT_EQ(p.quantize(-x), -p.quantize(x)) << "x=" << x;
    }
}

TEST(Quant, AllZeroTensorIsWellDefined)
{
    std::vector<float> zeros(64, 0.0f);
    float lo, hi;
    minMax(zeros.data(), 64, &lo, &hi);
    ASSERT_EQ(lo, 0.0f);
    ASSERT_EQ(hi, 0.0f);
    for (const QuantParams &p :
         {QuantParams::affineU8(lo, hi), QuantParams::affineS8(lo, hi),
          QuantParams::symmetricS8(maxAbs(zeros.data(), 64))}) {
        ASSERT_EQ(p.scale, 1.0f); // degenerate range falls back
        ASSERT_EQ(p.quantize(0.0f), p.zeroPoint);
        ASSERT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
    }
}

TEST(Quant, SingleValueTensorRoundTrips)
{
    for (float v : {4.2f, -3.0f, 1e-3f, 2048.0f}) {
        QuantParams p = QuantParams::affineS8(v, v);
        // Range widened to [min(v,0), max(v,0)]; the endpoint must
        // round-trip within half a step.
        ASSERT_NEAR(p.dequantize(p.quantize(v)), v, stepBound(p))
            << "v=" << v;
        ASSERT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
        QuantParams s = QuantParams::symmetricS8(std::fabs(v));
        ASSERT_NEAR(s.dequantize(s.quantize(v)), v, stepBound(s))
            << "v=" << v;
    }
}

TEST(Quant, DenormalAdjacentMagnitudes)
{
    // Tiny but normal magnitudes must not divide to inf/NaN or
    // collapse the scale to zero.
    for (float m : {FLT_MIN, 4.0f * FLT_MIN, 1e-30f, 1e-20f}) {
        QuantParams p = QuantParams::symmetricS8(m);
        ASSERT_GT(p.scale, 0.0f);
        ASSERT_TRUE(std::isfinite(p.scale));
        ASSERT_EQ(p.quantize(m), 127);
        ASSERT_EQ(p.quantize(-m), -127);
        ASSERT_NEAR(p.dequantize(p.quantize(m)), m, stepBound(p));
        ASSERT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
    }
}

TEST(Quant, MaxMagnitudeDoesNotOverflow)
{
    for (float m : {FLT_MAX, 0.5f * FLT_MAX}) {
        QuantParams p = QuantParams::symmetricS8(m);
        ASSERT_TRUE(std::isfinite(p.scale));
        ASSERT_EQ(p.quantize(m), 127);
        ASSERT_EQ(p.quantize(-m), -127);
        ASSERT_EQ(p.quantize(2.0f * m), 127);   // +inf clamps
        ASSERT_EQ(p.quantize(-2.0f * m), -127); // -inf clamps
        ASSERT_NEAR(p.dequantize(127), m, stepBound(p));

        QuantParams u = QuantParams::affineU8(-m, m);
        ASSERT_TRUE(std::isfinite(u.scale));
        int32_t q = u.quantize(m);
        ASSERT_GE(q, u.qmin);
        ASSERT_LE(q, u.qmax);
    }
}

TEST(Quant, QuantizeClampsOutOfRange)
{
    QuantParams p = QuantParams::affineU8(-1.0f, 1.0f);
    ASSERT_EQ(p.quantize(100.0f), p.qmax);
    ASSERT_EQ(p.quantize(-100.0f), p.qmin);
    QuantParams s = QuantParams::symmetricS8(1.0f);
    ASSERT_EQ(s.quantize(5.0f), 127);
    ASSERT_EQ(s.quantize(-5.0f), -127); // never the -128 code
}

TEST(Quant, Bf16RoundTripAndIdempotence)
{
    djinn::Rng rng(0xbf16);
    for (int trial = 0; trial < 2000; ++trial) {
        float x = static_cast<float>(
            rng.uniform(-1e6, 1e6));
        float r = bf16Round(x);
        // Storage rounding: relative error bounded by the bf16 unit
        // roundoff, and rounding is idempotent.
        ASSERT_LE(std::fabs(r - x),
                  std::fabs(x) * (1.0f / 256.0f))
            << "x=" << x;
        ASSERT_EQ(bf16Round(r), r);
        ASSERT_EQ(floatFromBf16(bf16FromFloat(r)), r);
    }
    // Exact values survive: powers of two, zero, small integers.
    for (float x : {0.0f, -0.0f, 1.0f, -2.0f, 0.5f, 96.0f, -128.0f})
        ASSERT_EQ(bf16Round(x), x);
    // Round-to-nearest-even at the halfway point: 1 + 2^-9 is
    // exactly between 1.0 and the next bf16 (1 + 2^-8); ties go to
    // the even mantissa (1.0).
    ASSERT_EQ(bf16Round(1.0f + 0.001953125f), 1.0f);
    ASSERT_EQ(bf16Round(1.0f + 3.0f * 0.001953125f),
              1.0f + 2.0f * 0.00390625f);
    // NaN stays NaN (quieted), infinities survive.
    ASSERT_TRUE(std::isnan(bf16Round(std::nanf(""))));
    ASSERT_EQ(bf16Round(INFINITY), INFINITY);
    ASSERT_EQ(bf16Round(-INFINITY), -INFINITY);
}

TEST(Quant, PrecisionNamesRoundTrip)
{
    for (Precision p :
         {Precision::F32, Precision::Bf16, Precision::Int8})
        ASSERT_EQ(precisionFromName(precisionName(p)), p);
    ASSERT_EQ(precisionFromName("fp32"), Precision::F32);
    ASSERT_EQ(precisionFromName("bfloat16"), Precision::Bf16);
    ASSERT_EQ(precisionFromName("s8"), Precision::Int8);
}

TEST(Quant, MinMaxAndMaxAbs)
{
    std::vector<float> v{-3.0f, 0.5f, 2.0f, -0.25f};
    float lo, hi;
    minMax(v.data(), 4, &lo, &hi);
    ASSERT_EQ(lo, -3.0f);
    ASSERT_EQ(hi, 2.0f);
    ASSERT_EQ(maxAbs(v.data(), 4), 3.0f);
    minMax(v.data(), 0, &lo, &hi);
    ASSERT_EQ(lo, 0.0f);
    ASSERT_EQ(hi, 0.0f);
    ASSERT_EQ(maxAbs(v.data(), 0), 0.0f);
}

} // namespace
} // namespace nn
} // namespace djinn
