#include "nn/network.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/init.hh"
#include "nn/layers/activation.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/softmax.hh"

namespace djinn {
namespace nn {
namespace {

std::shared_ptr<Network>
smallMlp()
{
    auto net = std::make_shared<Network>("mlp", Shape(1, 8));
    net->add(std::make_unique<InnerProductLayer>("fc1", 16));
    net->add(std::make_unique<ActivationLayer>("relu1",
                                               LayerKind::ReLU));
    net->add(std::make_unique<InnerProductLayer>("fc2", 4));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    net->finalize();
    return net;
}

TEST(Network, ShapePropagation)
{
    auto net = smallMlp();
    EXPECT_EQ(net->inputShape(), Shape(1, 8));
    EXPECT_EQ(net->outputShape(), Shape(1, 4));
    EXPECT_EQ(net->layerCount(), 4u);
}

TEST(Network, ParamCount)
{
    auto net = smallMlp();
    // fc1: 8*16+16, fc2: 16*4+4.
    EXPECT_EQ(net->paramCount(), 144u + 68u);
    EXPECT_EQ(net->weightBytes(), (144u + 68u) * 4);
}

TEST(Network, ForwardProducesDistribution)
{
    auto net = smallMlp();
    initializeWeights(*net, 1);
    Tensor in(Shape(3, 8), 0.5f);
    Tensor out = net->forward(in);
    EXPECT_EQ(out.shape(), Shape(3, 4));
    for (int64_t n = 0; n < 3; ++n) {
        double sum = 0;
        for (int64_t i = 0; i < 4; ++i)
            sum += out.sample(n)[i];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Network, ForwardDeterministic)
{
    auto net = smallMlp();
    initializeWeights(*net, 7);
    Tensor in(Shape(1, 8), 0.25f);
    Tensor a = net->forward(in);
    Tensor b = net->forward(in);
    for (int64_t i = 0; i < a.elems(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Network, BatchEqualsPerSampleForward)
{
    auto net = smallMlp();
    initializeWeights(*net, 3);
    Tensor x1(Shape(1, 8));
    Tensor x2(Shape(1, 8));
    for (int i = 0; i < 8; ++i) {
        x1[i] = static_cast<float>(i) * 0.1f;
        x2[i] = 1.0f - static_cast<float>(i) * 0.05f;
    }
    Tensor batch(Shape(2, 8));
    std::copy(x1.data(), x1.data() + 8, batch.sample(0));
    std::copy(x2.data(), x2.data() + 8, batch.sample(1));

    Tensor y1 = net->forward(x1);
    Tensor y2 = net->forward(x2);
    Tensor yb = net->forward(batch);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(yb.sample(0)[i], y1[i], 1e-5);
        EXPECT_NEAR(yb.sample(1)[i], y2[i], 1e-5);
    }
}

TEST(Network, FindLayer)
{
    auto net = smallMlp();
    EXPECT_NE(net->findLayer("fc1"), nullptr);
    EXPECT_EQ(net->findLayer("fc1")->kind(),
              LayerKind::InnerProduct);
    EXPECT_EQ(net->findLayer("nope"), nullptr);
}

TEST(Network, DuplicateLayerNameFatal)
{
    Network net("dup", Shape(1, 4));
    net.add(std::make_unique<InnerProductLayer>("fc", 4));
    EXPECT_THROW(net.add(std::make_unique<InnerProductLayer>("fc",
                                                             4)),
                 FatalError);
}

TEST(Network, EmptyNetworkFinalizeFatal)
{
    Network net("empty", Shape(1, 4));
    EXPECT_THROW(net.finalize(), FatalError);
}

TEST(Network, EmptyInputShapeFatal)
{
    EXPECT_THROW(Network("bad", Shape(1, 0)), FatalError);
}

TEST(Network, DescribeListsLayers)
{
    auto net = smallMlp();
    std::string desc = net->describe();
    EXPECT_NE(desc.find("fc1"), std::string::npos);
    EXPECT_NE(desc.find("prob"), std::string::npos);
    EXPECT_NE(desc.find("total params"), std::string::npos);
}

TEST(Init, DeterministicPerSeed)
{
    auto a = smallMlp();
    auto b = smallMlp();
    initializeWeights(*a, 42);
    initializeWeights(*b, 42);
    auto pa = a->layer(0).params();
    auto pb = b->layer(0).params();
    for (int64_t i = 0; i < pa[0]->elems(); ++i)
        EXPECT_FLOAT_EQ((*pa[0])[i], (*pb[0])[i]);
}

TEST(Init, DifferentSeedsDiffer)
{
    auto a = smallMlp();
    auto b = smallMlp();
    initializeWeights(*a, 1);
    initializeWeights(*b, 2);
    auto pa = a->layer(0).params();
    auto pb = b->layer(0).params();
    bool any_diff = false;
    for (int64_t i = 0; i < pa[0]->elems(); ++i) {
        if ((*pa[0])[i] != (*pb[0])[i])
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Init, BiasesZeroWeightsScaled)
{
    auto net = smallMlp();
    initializeWeights(*net, 5);
    auto params = net->layer(0).params();
    // Bias tensor all zero.
    for (int64_t i = 0; i < params[1]->elems(); ++i)
        EXPECT_FLOAT_EQ((*params[1])[i], 0.0f);
    // Weight variance near He scale 2/fan_in = 0.25.
    double sq = 0.0;
    for (int64_t i = 0; i < params[0]->elems(); ++i)
        sq += (*params[0])[i] * (*params[0])[i];
    double var = sq / params[0]->elems();
    EXPECT_NEAR(var, 0.25, 0.08);
}

} // namespace
} // namespace nn
} // namespace djinn
