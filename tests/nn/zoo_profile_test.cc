/**
 * @file
 * Cross-checks the runtime per-layer profiler against the static
 * cost model: for every zoo model, Layer::flopsPerSample() (what
 * the profiler reports) must agree layer-for-layer with
 * perf::analyzeNetwork's kernel FLOP counts, and a profiled
 * forward pass must report those exact numbers.
 */

#include <gtest/gtest.h>

#include "nn/profile.hh"
#include "nn/zoo.hh"
#include "perf/layer_cost.hh"

namespace djinn {
namespace nn {
namespace {

/** Profile one single-row forward pass of @p model. */
std::vector<LayerProfile>
profileModel(zoo::Model model)
{
    NetworkPtr net = zoo::build(model, 42);
    Tensor in(net->inputShape().withBatch(1), 0.25f);
    VectorProfileSink sink;
    (void)net->forward(in, &sink);
    return sink.profiles();
}

TEST(ZooProfile, FlopsMatchStaticModelForAllModels)
{
    for (zoo::Model model : zoo::allModels()) {
        NetworkPtr net = zoo::build(model, 42);
        perf::NetCost cost = perf::analyzeNetwork(*net, 1);
        ASSERT_EQ(cost.kernels.size(), net->layerCount())
            << zoo::modelName(model);
        for (size_t i = 0; i < net->layerCount(); ++i) {
            const Layer &layer = net->layer(i);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(layer.flopsPerSample()),
                cost.kernels[i].flops)
                << zoo::modelName(model) << " layer "
                << layer.name();
        }
    }
}

TEST(ZooProfile, AlexNetProfiledFlopsMatchLayerShapes)
{
    auto profiles = profileModel(zoo::Model::AlexNet);
    ASSERT_FALSE(profiles.empty());

    // conv1: 96 filters, 11x11, stride 4 over 3x227x227 -> 55x55.
    // 2 * 96 * 55*55 * 3*11*11 = 210,830,400.
    EXPECT_EQ(profiles[0].name, "conv1");
    EXPECT_EQ(profiles[0].flops, 210830400ull);

    // Whole net agrees with the static analyzer at batch 1.
    NetworkPtr net = zoo::build(zoo::Model::AlexNet, 42);
    perf::NetCost cost = perf::analyzeNetwork(*net, 1);
    ASSERT_EQ(profiles.size(), cost.kernels.size());
    double profiled_total = 0.0;
    for (size_t i = 0; i < profiles.size(); ++i) {
        EXPECT_EQ(profiles[i].name, cost.kernels[i].layer);
        EXPECT_DOUBLE_EQ(static_cast<double>(profiles[i].flops),
                         cost.kernels[i].flops)
            << profiles[i].name;
        profiled_total += static_cast<double>(profiles[i].flops);
    }
    EXPECT_DOUBLE_EQ(profiled_total, cost.totalFlops());
}

TEST(ZooProfile, MnistProfiledFlopsMatchLayerShapes)
{
    auto profiles = profileModel(zoo::Model::Mnist);
    ASSERT_FALSE(profiles.empty());

    // conv1: 10 filters, 5x5 over 1x28x28 -> 24x24.
    // 2 * 10 * 24*24 * 1*5*5 = 288,000.
    EXPECT_EQ(profiles[0].name, "conv1");
    EXPECT_EQ(profiles[0].flops, 288000ull);

    NetworkPtr net = zoo::build(zoo::Model::Mnist, 42);
    perf::NetCost cost = perf::analyzeNetwork(*net, 1);
    ASSERT_EQ(profiles.size(), cost.kernels.size());
    for (size_t i = 0; i < profiles.size(); ++i) {
        EXPECT_DOUBLE_EQ(static_cast<double>(profiles[i].flops),
                         cost.kernels[i].flops)
            << profiles[i].name;
    }
}

TEST(ZooProfile, ProfiledFlopsScaleLinearlyWithBatch)
{
    NetworkPtr net = zoo::build(zoo::Model::Mnist, 42);
    Tensor in4(net->inputShape().withBatch(4), 0.25f);
    VectorProfileSink sink;
    (void)net->forward(in4, &sink);
    perf::NetCost cost = perf::analyzeNetwork(*net, 4);
    ASSERT_EQ(sink.profiles().size(), cost.kernels.size());
    for (size_t i = 0; i < sink.profiles().size(); ++i) {
        EXPECT_DOUBLE_EQ(
            static_cast<double>(sink.profiles()[i].flops),
            cost.kernels[i].flops)
            << sink.profiles()[i].name;
    }
}

} // namespace
} // namespace nn
} // namespace djinn
