/**
 * @file
 * Property-based tests on inference-library invariants: pooling
 * against a naive reference over a geometry sweep, convolution
 * linearity, batch-order independence, and softmax invariances.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/rng.hh"
#include "nn/init.hh"
#include "nn/layers/pooling.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/softmax.hh"
#include "nn/net_def.hh"

namespace djinn {
namespace nn {
namespace {

Tensor
randomTensor(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Tensor t(shape);
    for (int64_t i = 0; i < t.elems(); ++i)
        t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    return t;
}

// Pooling vs naive reference over a geometry sweep ------------------

struct PoolCase {
    int64_t size, kernel, stride, pad;
    bool max_pool;
};

class PoolingProperty : public ::testing::TestWithParam<PoolCase>
{};

TEST_P(PoolingProperty, MatchesNaiveReference)
{
    PoolCase p = GetParam();
    PoolingLayer pool("pool",
                      p.max_pool ? LayerKind::MaxPool
                                 : LayerKind::AvgPool,
                      p.kernel, p.stride, p.pad);
    pool.setup(Shape(1, 2, p.size, p.size));
    Tensor in = randomTensor(Shape(2, 2, p.size, p.size),
                             p.size * 131 + p.kernel);
    Tensor out;
    pool.forward(in, out);

    const Shape &os = pool.outputShape();
    for (int64_t n = 0; n < 2; ++n) {
        for (int64_t c = 0; c < 2; ++c) {
            for (int64_t oh = 0; oh < os.h(); ++oh) {
                for (int64_t ow = 0; ow < os.w(); ++ow) {
                    double best = p.max_pool ? -1e30 : 0.0;
                    int64_t count = 0;
                    for (int64_t kh = 0; kh < p.kernel; ++kh) {
                        for (int64_t kw = 0; kw < p.kernel; ++kw) {
                            int64_t ih = oh * p.stride - p.pad + kh;
                            int64_t iw = ow * p.stride - p.pad + kw;
                            if (ih < 0 || ih >= p.size || iw < 0 ||
                                iw >= p.size) {
                                continue;
                            }
                            double v = in.at(n, c, ih, iw);
                            if (p.max_pool)
                                best = std::max(best, v);
                            else
                                best += v;
                            ++count;
                        }
                    }
                    if (!p.max_pool && count > 0)
                        best /= count;
                    ASSERT_NEAR(out.at(n, c, oh, ow), best, 1e-5)
                        << "at " << n << "," << c << "," << oh
                        << "," << ow;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolingProperty,
    ::testing::Values(PoolCase{8, 2, 2, 0, true},
                      PoolCase{8, 2, 2, 0, false},
                      PoolCase{9, 3, 2, 0, true},
                      PoolCase{9, 3, 2, 0, false},
                      PoolCase{7, 3, 3, 1, true},
                      PoolCase{7, 3, 3, 1, false},
                      PoolCase{13, 3, 2, 0, true},
                      PoolCase{5, 5, 1, 2, false},
                      PoolCase{6, 1, 1, 0, true}));

// Convolution linearity ----------------------------------------------

TEST(ConvProperty, LinearInInputWithoutBias)
{
    ConvolutionLayer conv("c", 4, 3, 1, 1, 1, false);
    conv.setup(Shape(1, 3, 8, 8));
    Rng rng(5);
    for (Tensor *param : conv.params()) {
        for (int64_t i = 0; i < param->elems(); ++i)
            (*param)[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    Tensor x = randomTensor(Shape(1, 3, 8, 8), 6);
    Tensor scaled = x;
    for (int64_t i = 0; i < scaled.elems(); ++i)
        scaled[i] *= 3.0f;
    Tensor y1, y2;
    conv.forward(x, y1);
    conv.forward(scaled, y2);
    for (int64_t i = 0; i < y1.elems(); ++i)
        ASSERT_NEAR(y2[i], 3.0f * y1[i], 1e-3);
}

TEST(ConvProperty, AdditiveInInputWithoutBias)
{
    ConvolutionLayer conv("c", 2, 3, 1, 0, 1, false);
    conv.setup(Shape(1, 2, 6, 6));
    Rng rng(8);
    for (Tensor *param : conv.params()) {
        for (int64_t i = 0; i < param->elems(); ++i)
            (*param)[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    Tensor a = randomTensor(Shape(1, 2, 6, 6), 10);
    Tensor b = randomTensor(Shape(1, 2, 6, 6), 11);
    Tensor sum(Shape(1, 2, 6, 6));
    for (int64_t i = 0; i < sum.elems(); ++i)
        sum[i] = a[i] + b[i];
    Tensor ya, yb, ys;
    conv.forward(a, ya);
    conv.forward(b, yb);
    conv.forward(sum, ys);
    for (int64_t i = 0; i < ys.elems(); ++i)
        ASSERT_NEAR(ys[i], ya[i] + yb[i], 1e-3);
}

// Batch-order independence -------------------------------------------

class BatchOrderProperty : public ::testing::TestWithParam<int>
{};

TEST_P(BatchOrderProperty, NetworkOutputIndependentOfRowOrder)
{
    auto net = parseNetDefOrDie(
        "name p\ninput 2 6 6\n"
        "layer c conv out 4 kernel 3 pad 1\n"
        "layer r relu\n"
        "layer p maxpool kernel 2 stride 2\n"
        "layer f fc out 5\n"
        "layer s softmax\n");
    initializeWeights(*net, 33);

    int batch = GetParam();
    Tensor in = randomTensor(Shape(batch, 2, 6, 6), 100 + batch);
    Tensor out = net->forward(in);

    // Reverse the batch and verify outputs reverse with it.
    Tensor reversed(in.shape());
    for (int64_t n = 0; n < batch; ++n) {
        std::copy(in.sample(n),
                  in.sample(n) + in.shape().sampleElems(),
                  reversed.sample(batch - 1 - n));
    }
    Tensor out_rev = net->forward(reversed);
    int64_t out_elems = out.shape().sampleElems();
    for (int64_t n = 0; n < batch; ++n) {
        for (int64_t i = 0; i < out_elems; ++i) {
            ASSERT_NEAR(out.sample(n)[i],
                        out_rev.sample(batch - 1 - n)[i], 1e-5);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchOrderProperty,
                         ::testing::Values(1, 2, 3, 7, 16));

// Softmax invariances ---------------------------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<int>
{};

TEST_P(SoftmaxProperty, ShiftInvariant)
{
    int dim = GetParam();
    SoftmaxLayer sm("s");
    sm.setup(Shape(1, dim));
    Tensor x = randomTensor(Shape(1, dim), 7 * dim);
    Tensor shifted = x;
    for (int64_t i = 0; i < dim; ++i)
        shifted[i] += 42.0f;
    Tensor y1, y2;
    sm.forward(x, y1);
    sm.forward(shifted, y2);
    for (int64_t i = 0; i < dim; ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5);
}

TEST_P(SoftmaxProperty, OutputsAreAProbability)
{
    int dim = GetParam();
    SoftmaxLayer sm("s");
    sm.setup(Shape(1, dim));
    Tensor x = randomTensor(Shape(3, dim), 13 * dim);
    Tensor y;
    sm.forward(x, y);
    for (int64_t n = 0; n < 3; ++n) {
        double sum = 0;
        for (int64_t i = 0; i < dim; ++i) {
            ASSERT_GE(y.sample(n)[i], 0.0f);
            ASSERT_LE(y.sample(n)[i], 1.0f);
            sum += y.sample(n)[i];
        }
        ASSERT_NEAR(sum, 1.0, 1e-5);
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, SoftmaxProperty,
                         ::testing::Values(2, 10, 45, 1000));

} // namespace
} // namespace nn
} // namespace djinn
