#include "nn/tensor.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace nn {
namespace {

TEST(Shape, DefaultIsEmpty)
{
    Shape s;
    EXPECT_EQ(s.elems(), 0);
}

TEST(Shape, ElementCounts)
{
    Shape s(2, 3, 4, 5);
    EXPECT_EQ(s.n(), 2);
    EXPECT_EQ(s.c(), 3);
    EXPECT_EQ(s.h(), 4);
    EXPECT_EQ(s.w(), 5);
    EXPECT_EQ(s.elems(), 120);
    EXPECT_EQ(s.sampleElems(), 60);
}

TEST(Shape, VectorShapeDefaultsHw)
{
    Shape s(4, 100);
    EXPECT_EQ(s.h(), 1);
    EXPECT_EQ(s.w(), 1);
    EXPECT_EQ(s.sampleElems(), 100);
}

TEST(Shape, WithBatchReplacesN)
{
    Shape s(1, 3, 8, 8);
    Shape b = s.withBatch(16);
    EXPECT_EQ(b.n(), 16);
    EXPECT_EQ(b.c(), 3);
    EXPECT_EQ(b.sampleElems(), s.sampleElems());
}

TEST(Shape, EqualityAndToString)
{
    EXPECT_EQ(Shape(1, 2, 3, 4), Shape(1, 2, 3, 4));
    EXPECT_NE(Shape(1, 2, 3, 4), Shape(1, 2, 3, 5));
    EXPECT_EQ(Shape(1, 2, 3, 4).toString(), "1x2x3x4");
}

TEST(Shape, NegativeDimensionFatal)
{
    EXPECT_THROW(Shape(-1, 2, 3, 4), FatalError);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape(2, 3));
    EXPECT_EQ(t.elems(), 6);
    for (int64_t i = 0; i < t.elems(); ++i)
        EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t(Shape(2, 2), 3.5f);
    EXPECT_FLOAT_EQ(t[0], 3.5f);
    EXPECT_FLOAT_EQ(t[3], 3.5f);
}

TEST(Tensor, NchwIndexing)
{
    Tensor t(Shape(2, 3, 4, 5));
    t.at(1, 2, 3, 4) = 7.0f;
    // Flat offset: ((1*3 + 2)*4 + 3)*5 + 4 = 119.
    EXPECT_FLOAT_EQ(t[119], 7.0f);
    EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 7.0f);
}

TEST(Tensor, SamplePointsIntoBatch)
{
    Tensor t(Shape(3, 4));
    t.at(2, 1, 0, 0) = 9.0f;
    EXPECT_FLOAT_EQ(t.sample(2)[1], 9.0f);
    EXPECT_EQ(t.sample(1) - t.sample(0), 4);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(Shape(1, 2, 3, 4));
    t[5] = 1.5f;
    t.reshape(Shape(1, 24));
    EXPECT_FLOAT_EQ(t[5], 1.5f);
    EXPECT_EQ(t.shape(), Shape(1, 24));
}

TEST(Tensor, ReshapeMismatchedElementsFatal)
{
    Tensor t(Shape(1, 6));
    EXPECT_THROW(t.reshape(Shape(1, 7)), FatalError);
}

TEST(Tensor, ResizeChangesShape)
{
    Tensor t(Shape(1, 2));
    t.resize(Shape(4, 8));
    EXPECT_EQ(t.elems(), 32);
}

TEST(Tensor, FillSetsAll)
{
    Tensor t(Shape(2, 3));
    t.fill(2.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 12.0);
}

TEST(Tensor, ArgmaxSample)
{
    Tensor t(Shape(2, 4));
    t.at(0, 2, 0, 0) = 5.0f;
    t.at(1, 0, 0, 0) = 1.0f;
    EXPECT_EQ(t.argmaxSample(0), 2);
    EXPECT_EQ(t.argmaxSample(1), 0);
}

TEST(Tensor, ArgmaxTieTakesFirst)
{
    Tensor t(Shape(1, 3), 1.0f);
    EXPECT_EQ(t.argmaxSample(0), 0);
}

TEST(Tensor, EmptyTensor)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.elems(), 0);
}

} // namespace
} // namespace nn
} // namespace djinn
