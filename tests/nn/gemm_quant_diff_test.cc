/**
 * @file
 * Differential test battery for the low-precision GEMM kernels
 * (DESIGN.md §14), mirroring gemm_diff_test.cc's structure: shapes
 * × transposes × strides × scales, each run at 1, 2, and 8 compute
 * threads with pad-clobber checks and cross-thread-count bit
 * checksums.
 *
 * Error contracts under test:
 *
 *  - gemm_bf16 vs sgemm_naive: each operand is rounded to bf16
 *    (relative error <= 2^-9), so a k-term dot product of [-1, 1]
 *    inputs drifts by at most ~k * 2^-8, plus the usual f32
 *    reassociation term.
 *
 *  - gemm_s8 / gemm_s8_wl: integer accumulation is *exact*, so the
 *    kernels are compared two ways: (a) against a scalar integer
 *    reference within a few ulps of the dequant arithmetic — this
 *    pins the quantized semantics exactly — and (b) against the f32
 *    reference within the quantization-step bound
 *    ~k * (sa/2 * max|b| + sb/2 * max|a| + sa*sb/4).
 *
 * Suite names start with GemmDiff so the TSan CI stage's
 * --gtest_filter picks these up alongside the f32 battery.
 */

#include "nn/gemm.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace nn {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

constexpr float kEps = 1.19209290e-07f; // FLT_EPSILON

void
fillUniform(std::vector<float> &v, djinn::Rng &rng)
{
    for (float &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
}

/** FNV-1a over the float bit patterns: detects any bit difference. */
uint64_t
bitChecksum(const std::vector<float> &v)
{
    uint64_t h = 1469598103934665603ULL;
    for (float x : v) {
        uint32_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

struct Case {
    int64_t m, n, k;
    Trans ta, tb;
    int64_t lda, ldb, ldc;
    float alpha, beta;
};

/** op(A)[i][p] for a stored row-major buffer. */
float
opA(const std::vector<float> &a, const Case &cs, int64_t i, int64_t p)
{
    return cs.ta == Trans::No ? a[static_cast<size_t>(i * cs.lda + p)]
                              : a[static_cast<size_t>(p * cs.lda + i)];
}

/** op(B)[p][j] for a stored row-major buffer. */
float
opB(const std::vector<float> &b, const Case &cs, int64_t p, int64_t j)
{
    return cs.tb == Trans::No ? b[static_cast<size_t>(p * cs.ldb + j)]
                              : b[static_cast<size_t>(j * cs.ldb + p)];
}

// ---------------------------------------------------------------
// bf16
// ---------------------------------------------------------------

/**
 * bf16-vs-f32 bound for [-1, 1] inputs: operand rounding
 * contributes <= k * 2^-8 per dot product (two operands at 2^-9
 * each), the f32 reassociation contributes the same term as the f32
 * battery, and 8 ulp covers the alpha/beta arithmetic.
 */
float
bf16Bound(int64_t k, float alpha)
{
    float amax = std::max(1.0f, std::fabs(alpha));
    float kf = static_cast<float>(k);
    return amax * kf * 0.00390625f /* 2^-8 */ +
           2.0f * kEps * kf * kf * amax + 8.0f * kEps;
}

void
runBf16Case(const Case &cs, djinn::Rng &rng)
{
    SCOPED_TRACE(testing::Message()
                 << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k
                 << " ta=" << (cs.ta == Trans::Yes) << " tb="
                 << (cs.tb == Trans::Yes) << " lda=" << cs.lda
                 << " ldb=" << cs.ldb << " ldc=" << cs.ldc
                 << " alpha=" << cs.alpha << " beta=" << cs.beta);

    int64_t aRows = cs.ta == Trans::No ? cs.m : cs.k;
    int64_t bRows = cs.tb == Trans::No ? cs.k : cs.n;
    std::vector<float> a(static_cast<size_t>(aRows * cs.lda));
    std::vector<float> b(static_cast<size_t>(bRows * cs.ldb));
    std::vector<float> c0(static_cast<size_t>(cs.m * cs.ldc));
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(c0, rng);

    std::vector<float> want = c0;
    sgemm_naive(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                cs.lda, b.data(), cs.ldb, cs.beta, want.data(),
                cs.ldc);

    float bound = bf16Bound(cs.k, cs.alpha);
    uint64_t firstSum = 0;
    bool haveFirst = false;
    for (int threads : {1, 2, 8}) {
        common::setComputeThreads(threads);
        std::vector<float> got = c0;
        gemm_bf16(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                  cs.lda, b.data(), cs.ldb, cs.beta, got.data(),
                  cs.ldc);
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = 0; j < cs.n; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                ASSERT_NEAR(got[at], want[at], bound)
                    << "threads=" << threads << " i=" << i
                    << " j=" << j;
            }
        }
        // Padding columns beyond n must never be written.
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = cs.n; j < cs.ldc; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                ASSERT_EQ(got[at], c0[at])
                    << "pad clobbered at i=" << i << " j=" << j;
            }
        }
        uint64_t sum = bitChecksum(got);
        if (!haveFirst) {
            firstSum = sum;
            haveFirst = true;
        } else {
            ASSERT_EQ(sum, firstSum)
                << "bf16 output bits depend on thread count ("
                << threads << ")";
        }
    }
}

TEST(GemmDiffBf16, SweepShapesTransposesStridesScales)
{
    PoolSizeGuard guard;
    const int64_t dims[] = {1, 3, 8, 17, 64, 129};
    const float scales[] = {0.0f, 1.0f, 0.5f, -2.0f};
    djinn::Rng rng(0xbf16d1f5u);

    for (int64_t m : dims) {
        for (int64_t n : dims) {
            for (int64_t k : dims) {
                int spin = static_cast<int>(m * 31 + n * 7 + k);
                for (int tc = 0; tc < 4; ++tc) {
                    Case cs;
                    cs.m = m;
                    cs.n = n;
                    cs.k = k;
                    cs.ta = (tc & 1) ? Trans::Yes : Trans::No;
                    cs.tb = (tc & 2) ? Trans::Yes : Trans::No;
                    int64_t aCols = cs.ta == Trans::No ? k : m;
                    int64_t bCols = cs.tb == Trans::No ? n : k;
                    cs.lda = aCols + 1 + (spin + tc) % 5;
                    cs.ldb = bCols + 2 + spin % 3;
                    cs.ldc = n + 1 + (spin + 2 * tc) % 4;
                    cs.alpha = scales[(spin + tc) % 4];
                    cs.beta = scales[(spin / 4 + tc) % 4];
                    runBf16Case(cs, rng);
                    if (testing::Test::HasFatalFailure())
                        return;
                }
            }
        }
    }
}

TEST(GemmDiffBf16, LargeShapeAcrossBlockBoundaries)
{
    PoolSizeGuard guard;
    djinn::Rng rng(0xb1f5);
    // k > 256 forces multiple KC slices, m > 64 multiple row blocks.
    Case cs{300,  257,  520,  Trans::No, Trans::No,
            520,  257,  257,  1.0f,      0.5f};
    runBf16Case(cs, rng);
}

// ---------------------------------------------------------------
// int8
// ---------------------------------------------------------------

/**
 * int8-vs-f32 quantization bound: per k step the activation error
 * is <= sa/2 against an operand bounded by max|b| (and vice versa),
 * plus the sa*sb/4 cross term; 2x slack absorbs the final float
 * dequant arithmetic.
 */
float
int8Bound(int64_t k, float alpha, float sa, float sb, float amax,
          float bmax)
{
    float kf = static_cast<float>(k);
    float per_step = 0.5f * sa * bmax + 0.5f * sb * amax +
                     0.25f * sa * sb;
    return 2.0f * std::max(1.0f, std::fabs(alpha)) * kf * per_step +
           8.0f * kEps;
}

/**
 * Shared int8 case runner. @p weightLeft selects gemm_s8_wl (s8
 * codes on the left, f32 activations quantized on the right) versus
 * gemm_s8 (f32 activations quantized on the left, s8 codes on the
 * right). Checks, per thread count: exact agreement (few ulps) with
 * a scalar integer reference, the quantization-step bound against
 * the f32 reference, pad preservation, and cross-thread bit
 * identity.
 */
void
runInt8Case(const Case &cs, bool weightLeft, djinn::Rng &rng)
{
    SCOPED_TRACE(testing::Message()
                 << (weightLeft ? "wl " : "al ") << "m=" << cs.m
                 << " n=" << cs.n << " k=" << cs.k << " ta="
                 << (cs.ta == Trans::Yes) << " tb="
                 << (cs.tb == Trans::Yes) << " lda=" << cs.lda
                 << " ldb=" << cs.ldb << " ldc=" << cs.ldc
                 << " alpha=" << cs.alpha << " beta=" << cs.beta);

    int64_t aRows = cs.ta == Trans::No ? cs.m : cs.k;
    int64_t bRows = cs.tb == Trans::No ? cs.k : cs.n;
    std::vector<float> af(static_cast<size_t>(aRows * cs.lda));
    std::vector<float> bf(static_cast<size_t>(bRows * cs.ldb));
    std::vector<float> c0(static_cast<size_t>(cs.m * cs.ldc));
    fillUniform(af, rng);
    fillUniform(bf, rng);
    fillUniform(c0, rng);

    // f32 reference for the quantization-error comparison.
    std::vector<float> f32ref = c0;
    sgemm_naive(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, af.data(),
                cs.lda, bf.data(), cs.ldb, cs.beta, f32ref.data(),
                cs.ldc);

    // Quantize the weight-side operand per output channel (columns
    // of op(B) for gemm_s8, rows of op(A) for gemm_s8_wl) and build
    // the activation-side per-tensor mapping.
    std::vector<int8_t> a8(af.size()), b8(bf.size());
    std::vector<float> a_scales(static_cast<size_t>(cs.m));
    std::vector<float> b_scales(static_cast<size_t>(cs.n));
    QuantParams actq;
    if (weightLeft) {
        for (int64_t i = 0; i < cs.m; ++i) {
            float mx = 0.0f;
            for (int64_t p = 0; p < cs.k; ++p)
                mx = std::max(mx, std::fabs(opA(af, cs, i, p)));
            QuantParams wq = QuantParams::symmetricS8(mx);
            a_scales[static_cast<size_t>(i)] = wq.scale;
            for (int64_t p = 0; p < cs.k; ++p) {
                size_t at = cs.ta == Trans::No
                    ? static_cast<size_t>(i * cs.lda + p)
                    : static_cast<size_t>(p * cs.lda + i);
                a8[at] = static_cast<int8_t>(wq.quantize(af[at]));
            }
        }
        float lo, hi;
        minMax(bf.data(), static_cast<int64_t>(bf.size()), &lo, &hi);
        actq = QuantParams::affineS8(lo, hi);
    } else {
        for (int64_t j = 0; j < cs.n; ++j) {
            float mx = 0.0f;
            for (int64_t p = 0; p < cs.k; ++p)
                mx = std::max(mx, std::fabs(opB(bf, cs, p, j)));
            QuantParams wq = QuantParams::symmetricS8(mx);
            b_scales[static_cast<size_t>(j)] = wq.scale;
            for (int64_t p = 0; p < cs.k; ++p) {
                size_t at = cs.tb == Trans::No
                    ? static_cast<size_t>(p * cs.ldb + j)
                    : static_cast<size_t>(j * cs.ldb + p);
                b8[at] = static_cast<int8_t>(wq.quantize(bf[at]));
            }
        }
        float lo, hi;
        minMax(af.data(), static_cast<int64_t>(af.size()), &lo, &hi);
        actq = QuantParams::affineU8(lo, hi);
    }

    // Scalar integer reference: the exact accumulator the kernel
    // must produce, dequantized with the same float expression.
    auto intRef = [&](int64_t i, int64_t j) -> float {
        int64_t acc = 0;
        for (int64_t p = 0; p < cs.k; ++p) {
            int64_t qa, qb;
            if (weightLeft) {
                size_t at = cs.ta == Trans::No
                    ? static_cast<size_t>(i * cs.lda + p)
                    : static_cast<size_t>(p * cs.lda + i);
                qa = a8[at];
                qb = actq.quantize(opB(bf, cs, p, j)) -
                     actq.zeroPoint;
            } else {
                qa = actq.quantize(opA(af, cs, i, p)) -
                     actq.zeroPoint;
                size_t at = cs.tb == Trans::No
                    ? static_cast<size_t>(p * cs.ldb + j)
                    : static_cast<size_t>(j * cs.ldb + p);
                qb = b8[at];
            }
            acc += qa * qb;
        }
        float sa = weightLeft ? a_scales[static_cast<size_t>(i)]
                              : actq.scale;
        float sb = weightLeft ? actq.scale
                              : b_scales[static_cast<size_t>(j)];
        size_t at = static_cast<size_t>(i * cs.ldc + j);
        float base = cs.beta == 0.0f ? 0.0f : c0[at] * cs.beta;
        return base +
               cs.alpha * sa * sb * static_cast<float>(acc);
    };

    float a_lo, a_hi, b_lo, b_hi;
    minMax(af.data(), static_cast<int64_t>(af.size()), &a_lo, &a_hi);
    minMax(bf.data(), static_cast<int64_t>(bf.size()), &b_lo, &b_hi);
    float amax = std::max(std::fabs(a_lo), std::fabs(a_hi));
    float bmax = std::max(std::fabs(b_lo), std::fabs(b_hi));
    float sa_rep = weightLeft
        ? *std::max_element(a_scales.begin(), a_scales.end())
        : actq.scale;
    float sb_rep = weightLeft
        ? actq.scale
        : *std::max_element(b_scales.begin(), b_scales.end());
    float qbound =
        int8Bound(cs.k, cs.alpha, sa_rep, sb_rep, amax, bmax);

    uint64_t firstSum = 0;
    bool haveFirst = false;
    for (int threads : {1, 2, 8}) {
        common::setComputeThreads(threads);
        std::vector<float> got = c0;
        if (weightLeft) {
            gemm_s8_wl(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
                       a8.data(), cs.lda, a_scales.data(), bf.data(),
                       cs.ldb, actq, cs.beta, got.data(), cs.ldc);
        } else {
            gemm_s8(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
                    af.data(), cs.lda, actq, b8.data(), cs.ldb,
                    b_scales.data(), cs.beta, got.data(), cs.ldc);
        }
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = 0; j < cs.n; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                float exact = intRef(i, j);
                // Integer accumulation is exact; only the dequant
                // float arithmetic may differ by a few ulps.
                float ulps = 8.0f * kEps *
                             (std::fabs(exact) + 1.0f);
                ASSERT_NEAR(got[at], exact, ulps)
                    << "int-ref threads=" << threads << " i=" << i
                    << " j=" << j;
                ASSERT_NEAR(got[at], f32ref[at], qbound)
                    << "f32-ref threads=" << threads << " i=" << i
                    << " j=" << j;
            }
        }
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = cs.n; j < cs.ldc; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                ASSERT_EQ(got[at], c0[at])
                    << "pad clobbered at i=" << i << " j=" << j;
            }
        }
        uint64_t sum = bitChecksum(got);
        if (!haveFirst) {
            firstSum = sum;
            haveFirst = true;
        } else {
            ASSERT_EQ(sum, firstSum)
                << "int8 output bits depend on thread count ("
                << threads << ")";
        }
    }
}

TEST(GemmDiffInt8, SweepShapesTransposesStridesScales)
{
    PoolSizeGuard guard;
    const int64_t dims[] = {1, 3, 8, 17, 64, 129};
    const float scales[] = {0.0f, 1.0f, 0.5f, -2.0f};
    djinn::Rng rng(0x1e8d1f5u);

    for (int64_t m : dims) {
        for (int64_t n : dims) {
            for (int64_t k : dims) {
                int spin = static_cast<int>(m * 31 + n * 7 + k);
                for (int tc = 0; tc < 4; ++tc) {
                    Case cs;
                    cs.m = m;
                    cs.n = n;
                    cs.k = k;
                    cs.ta = (tc & 1) ? Trans::Yes : Trans::No;
                    cs.tb = (tc & 2) ? Trans::Yes : Trans::No;
                    int64_t aCols = cs.ta == Trans::No ? k : m;
                    int64_t bCols = cs.tb == Trans::No ? n : k;
                    cs.lda = aCols + 1 + (spin + tc) % 5;
                    cs.ldb = bCols + 2 + spin % 3;
                    cs.ldc = n + 1 + (spin + 2 * tc) % 4;
                    cs.alpha = scales[(spin + tc) % 4];
                    cs.beta = scales[(spin / 4 + tc) % 4];
                    // Alternate orientations across the sweep so
                    // both entry points cover the full grid.
                    runInt8Case(cs, (spin + tc) % 2 == 1, rng);
                    if (testing::Test::HasFatalFailure())
                        return;
                }
            }
        }
    }
}

TEST(GemmDiffInt8, LargeShapeAcrossSliceBoundaries)
{
    PoolSizeGuard guard;
    djinn::Rng rng(0x1e85);
    // k > 1024 forces multiple int8 KC slices (accumulator carried
    // across slices), m > 64 multiple row blocks.
    for (bool weightLeft : {false, true}) {
        Case cs{130,  97,   1500, Trans::No, Trans::No,
                1500, 97,   101,  1.0f,      0.5f};
        runInt8Case(cs, weightLeft, rng);
        if (testing::Test::HasFatalFailure())
            return;
    }
}

TEST(GemmDiffInt8, KBeyondAccumulatorBoundIsFatal)
{
    PoolSizeGuard guard;
    std::vector<float> a(1), b(1), c(1);
    std::vector<int8_t> b8(1);
    std::vector<float> scales(1, 1.0f);
    QuantParams aq = QuantParams::affineU8(-1.0f, 1.0f);
    // k beyond 2^16 could overflow the int32 accumulators; the
    // kernel must refuse loudly rather than wrap silently.
    ASSERT_THROW(gemm_s8(Trans::No, Trans::No, 1, 1,
                         (int64_t{1} << 16) + 1, 1.0f, a.data(),
                         (int64_t{1} << 16) + 1, aq, b8.data(), 1,
                         scales.data(), 0.0f, c.data(), 1),
                 FatalError);
}

} // namespace
} // namespace nn
} // namespace djinn
