/**
 * @file
 * Differential test battery for the packed/blocked SGEMM kernel:
 * every (shape, transpose, stride, scale) combination is checked
 * against the reference scalar kernel (sgemm_naive), at 1, 2, and 8
 * compute threads. The two kernels accumulate in different orders,
 * so results are compared within an explicit error bound derived
 * from the accumulation depth k, not bit-exactly; bit-exactness
 * *across thread counts* of the fast kernel itself is asserted by
 * determinism_test.cc and by the checksum comparison here.
 */

#include "nn/gemm.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace nn {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

/**
 * Error bound for comparing the blocked kernel against the
 * reference. Both kernels compute the same k-term dot products in
 * different association orders; with inputs in [-1, 1] each partial
 * sum is bounded by k, and reassociating a k-term float sum
 * perturbs it by at most ~k * eps * max|partial sum|. The fast
 * kernel's build also disables FMA contraction (-ffp-contract=off),
 * so no extra contraction term appears. 8 ulp of slack covers the
 * alpha/beta scaling arithmetic.
 */
float
errorBound(int64_t k, float alpha)
{
    float eps = 1.19209290e-07f; // FLT_EPSILON
    float mag = static_cast<float>(k) * std::max(1.0f,
                                                 std::fabs(alpha));
    return 2.0f * eps * static_cast<float>(k) * mag + 8.0f * eps;
}

void
fillUniform(std::vector<float> &v, djinn::Rng &rng)
{
    for (float &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
}

/** FNV-1a over the float bit patterns: detects any bit difference. */
uint64_t
bitChecksum(const std::vector<float> &v)
{
    uint64_t h = 1469598103934665603ULL;
    for (float x : v) {
        uint32_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

struct Case {
    int64_t m, n, k;
    Trans ta, tb;
    int64_t lda, ldb, ldc;
    float alpha, beta;
};

/**
 * Runs one case: reference once, fast kernel at each thread count.
 * Asserts (a) fast stays within the error bound of the reference
 * and (b) fast output bits are identical at every thread count.
 */
void
runCase(const Case &cs, djinn::Rng &rng)
{
    SCOPED_TRACE(testing::Message()
                 << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k
                 << " ta=" << (cs.ta == Trans::Yes) << " tb="
                 << (cs.tb == Trans::Yes) << " lda=" << cs.lda
                 << " ldb=" << cs.ldb << " ldc=" << cs.ldc
                 << " alpha=" << cs.alpha << " beta=" << cs.beta);

    // A as stored: m x k rows if untransposed, k x m if transposed.
    int64_t aRows = cs.ta == Trans::No ? cs.m : cs.k;
    int64_t bRows = cs.tb == Trans::No ? cs.k : cs.n;
    std::vector<float> a(static_cast<size_t>(aRows * cs.lda));
    std::vector<float> b(static_cast<size_t>(bRows * cs.ldb));
    std::vector<float> c0(static_cast<size_t>(cs.m * cs.ldc));
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(c0, rng);

    std::vector<float> want = c0;
    sgemm_naive(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                cs.lda, b.data(), cs.ldb, cs.beta, want.data(),
                cs.ldc);

    float bound = errorBound(cs.k, cs.alpha);
    uint64_t firstSum = 0;
    bool haveFirst = false;
    for (int threads : {1, 2, 8}) {
        common::setComputeThreads(threads);
        std::vector<float> got = c0;
        sgemm(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
              cs.lda, b.data(), cs.ldb, cs.beta, got.data(),
              cs.ldc);
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = 0; j < cs.n; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                ASSERT_NEAR(got[at], want[at], bound)
                    << "threads=" << threads << " i=" << i
                    << " j=" << j;
            }
        }
        // Padding columns beyond n must never be written.
        for (int64_t i = 0; i < cs.m; ++i) {
            for (int64_t j = cs.n; j < cs.ldc; ++j) {
                size_t at = static_cast<size_t>(i * cs.ldc + j);
                ASSERT_EQ(got[at], c0[at])
                    << "pad clobbered at i=" << i << " j=" << j;
            }
        }
        uint64_t sum = bitChecksum(got);
        if (!haveFirst) {
            firstSum = sum;
            haveFirst = true;
        } else {
            ASSERT_EQ(sum, firstSum)
                << "output bits depend on thread count ("
                << threads << ")";
        }
    }
}

TEST(GemmDiff, SweepShapesTransposesStridesScales)
{
    PoolSizeGuard guard;
    const int64_t dims[] = {1, 3, 8, 17, 64, 129};
    const float scales[] = {0.0f, 1.0f, 0.5f, -2.0f};
    djinn::Rng rng(0xd1f5u);

    for (int64_t m : dims) {
        for (int64_t n : dims) {
            for (int64_t k : dims) {
                // Rotate through the transpose and scale grids so
                // every value appears against every dimension
                // without exploding the case count.
                int spin = static_cast<int>(m * 31 + n * 7 + k);
                for (int tc = 0; tc < 4; ++tc) {
                    Case cs;
                    cs.m = m;
                    cs.n = n;
                    cs.k = k;
                    cs.ta = (tc & 1) ? Trans::Yes : Trans::No;
                    cs.tb = (tc & 2) ? Trans::Yes : Trans::No;
                    // Non-unit leading dimensions: stored row
                    // lengths plus a case-dependent slack.
                    int64_t aCols = cs.ta == Trans::No ? k : m;
                    int64_t bCols = cs.tb == Trans::No ? n : k;
                    cs.lda = aCols + 1 + (spin + tc) % 5;
                    cs.ldb = bCols + 2 + spin % 3;
                    cs.ldc = n + 1 + (spin + 2 * tc) % 4;
                    cs.alpha = scales[(spin + tc) % 4];
                    cs.beta = scales[(spin / 4 + tc) % 4];
                    runCase(cs, rng);
                    if (testing::Test::HasFatalFailure())
                        return;
                }
            }
        }
    }
}

TEST(GemmDiff, UnitStridesAndIdentityScales)
{
    PoolSizeGuard guard;
    djinn::Rng rng(7);
    // The most common production configuration deserves an
    // unrotated pass: alpha=1, beta=0, packed strides.
    for (int64_t m : {1, 8, 17, 129}) {
        for (int64_t n : {1, 16, 64}) {
            for (int64_t k : {3, 64, 129}) {
                Case cs{m,        n,    k,    Trans::No, Trans::No,
                        k,        n,    n,    1.0f,      0.0f};
                runCase(cs, rng);
                if (testing::Test::HasFatalFailure())
                    return;
            }
        }
    }
}

TEST(GemmDiff, LargeSingleShapeAgainstReference)
{
    PoolSizeGuard guard;
    djinn::Rng rng(99);
    // One shape big enough to cross the KC/MC blocking boundaries
    // (k > 256 forces multiple packed slices, m > 64 multiple row
    // blocks).
    Case cs{300,  257,  520,  Trans::No, Trans::No,
            520,  257,  257,  1.0f,      0.5f};
    runCase(cs, rng);
}

TEST(GemmDiff, SgemvMatchesSgemm)
{
    PoolSizeGuard guard;
    djinn::Rng rng(1234);
    for (int64_t m : {1, 7, 64, 301}) {
        for (int64_t n : {1, 13, 250, 600}) {
            std::vector<float> a(static_cast<size_t>(m * n));
            std::vector<float> x(static_cast<size_t>(n));
            fillUniform(a, rng);
            fillUniform(x, rng);

            std::vector<float> viaGemv(static_cast<size_t>(m));
            sgemv(m, n, a.data(), x.data(), viaGemv.data());

            std::vector<float> viaGemm(static_cast<size_t>(m),
                                       123.0f);
            sgemm(Trans::No, Trans::No, m, 1, n, 1.0f, a.data(), n,
                  x.data(), 1, 0.0f, viaGemm.data(), 1);

            // Same routing, same kernel: bit-identical, not just
            // close.
            for (int64_t i = 0; i < m; ++i)
                ASSERT_EQ(viaGemv[static_cast<size_t>(i)],
                          viaGemm[static_cast<size_t>(i)])
                    << "m=" << m << " n=" << n << " i=" << i;
        }
    }
}

} // namespace
} // namespace nn
} // namespace djinn
