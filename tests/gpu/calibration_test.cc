/**
 * @file
 * Calibration of the simulator against the paper's headline
 * results. Each test pins one claim from the paper to a band; if a
 * model-constant change moves a shape outside its band, the test
 * fails. (Absolute values are model outputs, only shapes are
 * asserted — see EXPERIMENTS.md.)
 */

#include <gtest/gtest.h>

#include <map>

#include "gpu/gpu_model.hh"
#include "serve/simulation.hh"

namespace djinn {
namespace {

using serve::App;
using serve::appSpec;
using serve::SimConfig;
using serve::runServingSim;

/** CPU DNN-portion QPS for one query, single Xeon core. */
double
cpuQps(App app)
{
    return 1.0 / serve::cpuQueryTime(app, gpu::CpuSpec());
}

/** Sim throughput with the given knobs. */
double
gpuQps(App app, int64_t batch, int instances, int gpus = 1,
       bool mps = true)
{
    SimConfig config;
    config.app = app;
    config.batch = batch;
    config.instancesPerGpu = instances;
    config.gpuCount = gpus;
    config.mps = mps;
    return runServingSim(config).throughputQps;
}

/** Fully optimized single-GPU ratio (Figure 10). */
double
optimizedRatio(App app)
{
    static std::map<App, double> cache;
    auto it = cache.find(app);
    if (it != cache.end())
        return it->second;
    double ratio = gpuQps(app, appSpec(app).tunedBatch, 4) /
                   cpuQps(app);
    cache[app] = ratio;
    return ratio;
}

// Figure 5: batch-1 GPU vs CPU ratios ------------------------------

TEST(Calibration, Fig5AsrHighestUnbatchedGain)
{
    // "ASR achieves significant improvement, 120x speedup."
    double ratio = gpuQps(App::ASR, 1, 1) / cpuQps(App::ASR);
    EXPECT_GT(ratio, 90.0);
    EXPECT_LT(ratio, 220.0);
}

TEST(Calibration, Fig5NlpAroundSevenX)
{
    // "NLP applications ... achieve only around 7x improvement."
    for (App app : {App::POS, App::CHK, App::NER}) {
        double ratio = gpuQps(app, 1, 1) / cpuQps(app);
        EXPECT_GT(ratio, 3.0) << serve::appName(app);
        EXPECT_LT(ratio, 11.0) << serve::appName(app);
    }
}

TEST(Calibration, Fig5BigNetworksAboveTwentyX)
{
    // "Networks with more than 30M parameters achieve above 20x."
    for (App app : {App::IMC, App::FACE, App::ASR}) {
        double ratio = gpuQps(app, 1, 1) / cpuQps(app);
        EXPECT_GT(ratio, 20.0) << serve::appName(app);
    }
}

// Figure 6: occupancy ----------------------------------------------

TEST(Calibration, Fig6NlpOccupancyUnder20Percent)
{
    SimConfig config;
    for (App app : {App::POS, App::CHK, App::NER}) {
        config.app = app;
        config.batch = 1;
        EXPECT_LT(runServingSim(config).gpuOccupancy, 0.20)
            << serve::appName(app);
    }
}

TEST(Calibration, Fig6AsrOccupancyAbove90Percent)
{
    SimConfig config;
    config.app = App::ASR;
    config.batch = 1;
    EXPECT_GT(runServingSim(config).gpuOccupancy, 0.90);
}

// Figure 7: batching -----------------------------------------------

TEST(Calibration, Fig7NlpBatchingGainLarge)
{
    // "NLP tasks achieve over a 15x throughput improvement" from
    // batching (we accept 8x and above).
    for (App app : {App::POS, App::NER}) {
        double gain = gpuQps(app, 64, 1) / gpuQps(app, 1, 1);
        EXPECT_GT(gain, 8.0) << serve::appName(app);
    }
}

TEST(Calibration, Fig7ImcBatchingGainModerate)
{
    // "5x for IMC with limited latency increases."
    double gain = gpuQps(App::IMC, 16, 1) / gpuQps(App::IMC, 1, 1);
    EXPECT_GT(gain, 2.0);
    EXPECT_LT(gain, 8.0);
}

TEST(Calibration, Fig7AsrBatchingGainSmall)
{
    // ASR is already occupancy-saturated; batching adds little.
    double gain = gpuQps(App::ASR, 8, 1) / gpuQps(App::ASR, 1, 1);
    EXPECT_LT(gain, 1.5);
}

TEST(Calibration, Fig7FaceBatchingGainSmall)
{
    // FACE's locally connected layers stream weights per sample.
    double gain = gpuQps(App::FACE, 8, 1) / gpuQps(App::FACE, 1, 1);
    EXPECT_LT(gain, 2.0);
}

TEST(Calibration, Fig7ThroughputPlateausWithBatch)
{
    // Doubling the batch beyond the knee must not keep doubling
    // throughput.
    double q64 = gpuQps(App::POS, 64, 1);
    double q128 = gpuQps(App::POS, 128, 1);
    EXPECT_LT(q128, 1.5 * q64);
}

// Figures 8 and 9: MPS ----------------------------------------------

TEST(Calibration, Fig8MpsRaisesThroughput)
{
    // NLP gains a lot (host-side gaps dominate its small batches);
    // IMC gains modestly (its GPU passes already fill the device).
    double pos_single = gpuQps(App::POS, 64, 1);
    double pos_four = gpuQps(App::POS, 64, 4);
    EXPECT_GT(pos_four, 1.5 * pos_single);

    double imc_single = gpuQps(App::IMC, 16, 1);
    double imc_four = gpuQps(App::IMC, 16, 4);
    EXPECT_GT(imc_four, 1.05 * imc_single);
}

TEST(Calibration, Fig8MpsBeatsTimeSharing)
{
    for (App app : {App::POS, App::IMC}) {
        int64_t batch = appSpec(app).tunedBatch;
        double mps = gpuQps(app, batch, 8, 1, true);
        double shared = gpuQps(app, batch, 8, 1, false);
        EXPECT_GE(mps, 0.99 * shared) << serve::appName(app);
    }
}

TEST(Calibration, Fig9LatencyGrowsWithInstances)
{
    SimConfig config;
    config.app = App::POS;
    config.batch = 64;
    config.instancesPerGpu = 1;
    double lat1 = runServingSim(config).meanLatency;
    config.instancesPerGpu = 16;
    double lat16 = runServingSim(config).meanLatency;
    EXPECT_GT(lat16, 1.5 * lat1);
}

TEST(Calibration, Fig9MpsLimitsLatencyVsTimeSharing)
{
    SimConfig config;
    config.app = App::IMC;
    config.batch = 16;
    config.instancesPerGpu = 8;
    config.mps = true;
    double mps_lat = runServingSim(config).meanLatency;
    config.mps = false;
    double shared_lat = runServingSim(config).meanLatency;
    EXPECT_LE(mps_lat, shared_lat * 1.05);
}

// Figure 10: final single-GPU gains ---------------------------------

TEST(Calibration, Fig10AllButFaceOver100x)
{
    // "over 100x throughput improvement on the GPU for all but the
    // FACE application."
    for (App app : {App::IMC, App::DIG, App::ASR, App::POS,
                    App::CHK, App::NER}) {
        EXPECT_GT(optimizedRatio(app), 80.0) << serve::appName(app);
    }
}

TEST(Calibration, Fig10FaceAroundFortyX)
{
    // "...which achieves a 40x improvement."
    double ratio = optimizedRatio(App::FACE);
    EXPECT_GT(ratio, 20.0);
    EXPECT_LT(ratio, 70.0);
}

// Figures 11 and 12: multi-GPU scaling -------------------------------

TEST(Calibration, Fig11ComputeHeavyAppsScaleNearLinearly)
{
    for (App app : {App::IMC, App::ASR, App::FACE}) {
        int64_t batch = appSpec(app).tunedBatch;
        double one = gpuQps(app, batch, 4, 1);
        double eight = gpuQps(app, batch, 4, 8);
        EXPECT_GT(eight / one, 6.5) << serve::appName(app);
    }
}

TEST(Calibration, Fig11NlpPlateausFromBandwidth)
{
    for (App app : {App::POS, App::CHK, App::NER}) {
        int64_t batch = appSpec(app).tunedBatch;
        double one = gpuQps(app, batch, 4, 1);
        double eight = gpuQps(app, batch, 4, 8);
        EXPECT_LT(eight / one, 5.5) << serve::appName(app);
    }
}

TEST(Calibration, Fig12NoPcieLimitRestoresLinearScaling)
{
    for (App app : {App::POS, App::CHK}) {
        SimConfig config;
        config.app = app;
        config.batch = appSpec(app).tunedBatch;
        config.instancesPerGpu = 4;
        config.hostLink = gpu::unlimitedLink();
        config.gpuCount = 1;
        double one = runServingSim(config).throughputQps;
        config.gpuCount = 8;
        double eight = runServingSim(config).throughputQps;
        EXPECT_GT(eight / one, 6.5) << serve::appName(app);
    }
}

} // namespace
} // namespace djinn
