#include "gpu/gpu_model.hh"

#include <gtest/gtest.h>

#include "nn/net_def.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace gpu {
namespace {

std::shared_ptr<nn::Network>
cachedStructure(nn::zoo::Model model)
{
    return nn::parseNetDefOrDie(nn::zoo::netDef(model));
}

TEST(GpuModel, TotalTimeSumsKernels)
{
    auto net = nn::parseNetDefOrDie(
        "input 8 1 1\nlayer a fc out 16\nlayer r relu\n"
        "layer b fc out 4\n");
    GpuSpec spec;
    auto cost = perf::analyzeNetwork(*net, 1);
    auto profile = profileForward(cost, spec);
    ASSERT_EQ(profile.kernels.size(), 3u);
    double sum = 0.0;
    for (const auto &k : profile.kernels)
        sum += k.totalTime;
    EXPECT_NEAR(profile.totalTime, sum, 1e-12);
}

TEST(GpuModel, ThroughputImprovesWithBatchForSmallNets)
{
    auto net = cachedStructure(nn::zoo::Model::SennaPos);
    GpuSpec spec;
    auto p1 = profileForward(perf::analyzeNetwork(*net, 28), spec);
    auto p64 = profileForward(
        perf::analyzeNetwork(*net, 28 * 64), spec);
    EXPECT_GT(p64.samplesPerSecond(), 5.0 * p1.samplesPerSecond());
}

TEST(GpuModel, OccupancyRisesWithBatch)
{
    auto net = cachedStructure(nn::zoo::Model::SennaPos);
    GpuSpec spec;
    auto p1 = profileForward(perf::analyzeNetwork(*net, 28), spec);
    auto p64 = profileForward(
        perf::analyzeNetwork(*net, 28 * 64), spec);
    EXPECT_LT(p1.occupancy, 0.25);   // paper Fig 6: NLP under 20%
    EXPECT_GT(p64.occupancy, 0.75);  // paper Fig 7b: >80% at 64
}

TEST(GpuModel, AsrOccupancyHighAtBatchOne)
{
    auto net = cachedStructure(nn::zoo::Model::KaldiAsr);
    GpuSpec spec;
    // One ASR query carries 548 feature vectors.
    auto p = profileForward(perf::analyzeNetwork(*net, 548), spec);
    EXPECT_GT(p.occupancy, 0.9); // paper Fig 6: above 90%
}

TEST(GpuModel, MemoryFootprintMatchesWeights)
{
    auto net = cachedStructure(nn::zoo::Model::KaldiAsr);
    GpuSpec spec;
    auto p = profileForward(perf::analyzeNetwork(*net, 16), spec);
    double weight_bytes =
        static_cast<double>(net->paramCount()) * sizeof(float);
    EXPECT_GE(p.memoryFootprint, weight_bytes);
    EXPECT_LT(p.memoryFootprint, weight_bytes * 1.5);
}

TEST(GpuModel, DeepFaceFitsInK40Memory)
{
    auto net = cachedStructure(nn::zoo::Model::DeepFace);
    GpuSpec spec;
    auto p = profileForward(perf::analyzeNetwork(*net, 2), spec);
    EXPECT_LT(p.memoryFootprint, spec.memoryBytes);
}

TEST(GpuModel, AggregatesWeightedByTime)
{
    auto net = nn::parseNetDefOrDie(
        "input 8 1 1\nlayer a fc out 16\n");
    GpuSpec spec;
    auto p = profileForward(perf::analyzeNetwork(*net, 1), spec);
    // Single kernel: aggregate equals the kernel's own counters.
    EXPECT_DOUBLE_EQ(p.occupancy, p.kernels[0].occupancy);
    EXPECT_DOUBLE_EQ(p.ipcRatio, p.kernels[0].ipcRatio);
}

TEST(GpuModel, CpuForwardTimeSumsLayers)
{
    auto net = nn::parseNetDefOrDie(
        "input 8 1 1\nlayer a fc out 16\nlayer b fc out 4\n");
    CpuSpec spec;
    auto cost = perf::analyzeNetwork(*net, 1);
    double total = cpuForwardTime(cost, spec);
    double manual = 0.0;
    for (const auto &k : cost.kernels)
        manual += cpuLayerTime(k, spec);
    EXPECT_DOUBLE_EQ(total, manual);
}

TEST(GpuModel, CpuTimeScalesRoughlyWithBatch)
{
    auto net = cachedStructure(nn::zoo::Model::KaldiAsr);
    CpuSpec spec;
    double t1 = cpuForwardTime(perf::analyzeNetwork(*net, 100),
                               spec);
    double t2 = cpuForwardTime(perf::analyzeNetwork(*net, 200),
                               spec);
    EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

} // namespace
} // namespace gpu
} // namespace djinn
