#include "gpu/link.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace gpu {
namespace {

TEST(Link, PcieV3Bandwidth)
{
    LinkSpec link = pcieV3();
    EXPECT_DOUBLE_EQ(link.peakBandwidth, 15.75e9);
    EXPECT_DOUBLE_EQ(link.effectiveBandwidth(), 15.75e9 * 0.8);
}

TEST(Link, PcieV4DoublesV3)
{
    EXPECT_NEAR(pcieV4().peakBandwidth / pcieV3().peakBandwidth,
                2.0, 0.02);
}

TEST(Link, QpiAggregateMatchesPaper)
{
    // Section 6.4: 12 x 25.6 GB/s = 307.2 GB/s.
    EXPECT_DOUBLE_EQ(qpiAggregate().peakBandwidth, 307.2e9);
}

TEST(Link, Ethernet10GTeaming)
{
    EXPECT_DOUBLE_EQ(ethernet10G(16).peakBandwidth, 16 * 1.25e9);
    EXPECT_DOUBLE_EQ(ethernet10G().peakBandwidth, 1.25e9);
}

TEST(Link, PaperFootnoteSixteenNicsYield16GBps)
{
    // Footnote 1: 16 x 1.25 GB/s at 80% yields 16 GB/s.
    EXPECT_DOUBLE_EQ(ethernet10G(16).effectiveBandwidth(), 16e9);
}

TEST(Link, Ethernet40GAnd400G)
{
    EXPECT_DOUBLE_EQ(ethernet40G(9).peakBandwidth, 9 * 5.0e9);
    EXPECT_DOUBLE_EQ(ethernet400G(8).peakBandwidth, 8 * 50.0e9);
}

TEST(Link, TransferTimeLinearInBytes)
{
    LinkSpec link = pcieV3();
    double t1 = link.transferTime(1e6);
    double t2 = link.transferTime(2e6);
    EXPECT_NEAR(t2 - t1, 1e6 / link.effectiveBandwidth(), 1e-12);
}

TEST(Link, TransferTimeIncludesLatency)
{
    LinkSpec link = pcieV3();
    EXPECT_DOUBLE_EQ(link.transferTime(0.0),
                     link.perTransferLatency);
}

TEST(Link, UnlimitedLinkIsEffectivelyFree)
{
    LinkSpec link = unlimitedLink();
    EXPECT_LT(link.transferTime(1e12), 1e-5);
}

TEST(Link, ZeroNicCountFatal)
{
    EXPECT_THROW(ethernet10G(0), FatalError);
    EXPECT_THROW(ethernet40G(-1), FatalError);
    EXPECT_THROW(ethernet400G(0), FatalError);
}

} // namespace
} // namespace gpu
} // namespace djinn
