#include "gpu/kernel_model.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace gpu {
namespace {

perf::KernelCost
fcKernel(double flops, double weight_bytes, int64_t blocks,
         double util = 1.0)
{
    perf::KernelCost k;
    k.kind = nn::LayerKind::InnerProduct;
    k.flops = flops;
    k.weightBytes = weight_bytes;
    k.tileUtilization = util;
    k.blocks = blocks;
    k.threadsPerBlock = 256;
    k.launches = 1;
    return k;
}

TEST(KernelModel, OccupancySaturatesAtOne)
{
    GpuSpec spec;
    auto k = fcKernel(1e9, 0, 100000);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_DOUBLE_EQ(t.occupancy, 1.0);
}

TEST(KernelModel, SmallLaunchHasLowOccupancy)
{
    GpuSpec spec;
    // 19 blocks x 8 warps = 152 of 960 warps.
    auto k = fcKernel(1e6, 0, 19);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_NEAR(t.occupancy, 152.0 / 960.0, 1e-9);
}

TEST(KernelModel, ComputeTimeScalesWithFlops)
{
    GpuSpec spec;
    auto t1 = timeKernel(fcKernel(1e9, 0, 100000), spec);
    auto t2 = timeKernel(fcKernel(2e9, 0, 100000), spec);
    EXPECT_NEAR(t2.computeTime, 2.0 * t1.computeTime, 1e-12);
}

TEST(KernelModel, LowOccupancySlowsCompute)
{
    GpuSpec spec;
    auto full = timeKernel(fcKernel(1e8, 0, 100000), spec);
    auto starved = timeKernel(fcKernel(1e8, 0, 4), spec);
    EXPECT_GT(starved.computeTime, 5.0 * full.computeTime);
}

TEST(KernelModel, TileUtilizationSlowsCompute)
{
    GpuSpec spec;
    auto full = timeKernel(fcKernel(1e8, 0, 100000, 1.0), spec);
    auto thin = timeKernel(fcKernel(1e8, 0, 100000, 1.0 / 32),
                           spec);
    EXPECT_NEAR(thin.computeTime, 32.0 * full.computeTime,
                full.computeTime * 0.01);
}

TEST(KernelModel, MemoryBoundKernelUsesMemoryTime)
{
    GpuSpec spec;
    // Tiny flops, large weight traffic.
    auto k = fcKernel(1e3, 1e9, 100000);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_GT(t.memoryTime, t.computeTime);
    EXPECT_NEAR(t.totalTime, t.memoryTime + t.launchTime, 1e-12);
}

TEST(KernelModel, LaunchOverheadPerLaunch)
{
    GpuSpec spec;
    auto k = fcKernel(1e6, 0, 1000);
    k.launches = 10;
    KernelTiming t = timeKernel(k, spec);
    EXPECT_DOUBLE_EQ(t.launchTime, 10 * spec.launchOverhead);
}

TEST(KernelModel, LocallyConnectedPaysScatteredBandwidth)
{
    GpuSpec spec;
    perf::KernelCost lc;
    lc.kind = nn::LayerKind::LocallyConnected;
    lc.flops = 1e6;
    lc.weightBytes = 1e9;
    lc.blocks = 100000;
    auto fc = fcKernel(1e6, 1e9, 100000);
    auto t_lc = timeKernel(lc, spec);
    auto t_fc = timeKernel(fc, spec);
    EXPECT_GT(t_lc.memoryTime, 1.5 * t_fc.memoryTime);
}

TEST(KernelModel, IpcRatioHighForComputeBound)
{
    GpuSpec spec;
    auto k = fcKernel(1e9, 1e6, 100000);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_GT(t.ipcRatio, 0.3);
    EXPECT_LE(t.ipcRatio, 1.0);
}

TEST(KernelModel, IpcRatioLowForStarvedKernel)
{
    GpuSpec spec;
    auto k = fcKernel(1e6, 0, 2, 0.5);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_LT(t.ipcRatio, 0.1);
}

TEST(KernelModel, MemUtilizationBounded)
{
    GpuSpec spec;
    auto k = fcKernel(1e3, 1e9, 100000);
    KernelTiming t = timeKernel(k, spec);
    EXPECT_GT(t.memUtilization, 0.5);
    EXPECT_LE(t.memUtilization, 1.0);
}

TEST(KernelModel, MaxActiveWarpsMatchesK40)
{
    GpuSpec spec;
    EXPECT_EQ(spec.maxActiveWarps(), 960);
}

TEST(CpuModel, ComputeBoundLayer)
{
    CpuSpec spec;
    auto k = fcKernel(1e9, 1e6, 1);
    double t = cpuLayerTime(k, spec);
    // ~1e9 / (16.8e9 * 0.7) plus overhead.
    EXPECT_NEAR(t, 1e9 / (spec.peakFlops() * spec.gemmEfficiency) +
                       spec.layerOverhead,
                1e-3);
}

TEST(CpuModel, MemoryBoundLayer)
{
    CpuSpec spec;
    auto k = fcKernel(1e3, 1.28e9, 1);
    double t = cpuLayerTime(k, spec);
    EXPECT_NEAR(t, 0.1 + spec.layerOverhead, 1e-3);
}

TEST(CpuModel, SmallTilePenalty)
{
    CpuSpec spec;
    auto big = fcKernel(1e8, 0, 1, 1.0);
    auto small = fcKernel(1e8, 0, 1, 1.0 / 32);
    EXPECT_GT(cpuLayerTime(small, spec),
              1.5 * cpuLayerTime(big, spec));
}

TEST(CpuModel, PeakFlopsFromClock)
{
    CpuSpec spec;
    EXPECT_DOUBLE_EQ(spec.peakFlops(), 2.1e9 * 8.0);
}

} // namespace
} // namespace gpu
} // namespace djinn
