/**
 * @file
 * The percentile-unification regression: every latency percentile
 * in the repo flows through telemetry::LogHistogram with the
 * sim::latencyHistogramOptions() bucket layout. This locks the
 * shared layout's resolution against the exact sample-storing
 * sim::Distribution oracle, so a layout change that degrades
 * percentile accuracy fails here rather than silently skewing
 * every simulator and server report.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "sim/stats.hh"
#include "telemetry/histogram.hh"

namespace djinn {
namespace sim {
namespace {

TEST(PercentileUnification, LayoutCoversMicrosecondsToMinutes)
{
    telemetry::HistogramOptions options = latencyHistogramOptions();
    EXPECT_LE(options.firstBound, 1e-6);
    // Growth factor bounds the relative quantile error per bucket.
    EXPECT_LE(options.growth, 1.05);
    EXPECT_GT(options.growth, 1.0);
    // Top bound must exceed any latency a simulation can report.
    double top = options.firstBound *
                 std::pow(options.growth, options.bucketCount - 1);
    EXPECT_GT(top, 1000.0);
}

TEST(PercentileUnification, HistogramAgreesWithExactOracle)
{
    telemetry::LogHistogram histogram(latencyHistogramOptions());
    Distribution oracle;

    // A long-tailed latency-like distribution spanning ~4 decades:
    // lognormal body plus an exponential tail.
    Rng rng(2026);
    for (int i = 0; i < 200000; ++i) {
        double sample =
            1e-3 * std::exp(rng.gaussian(0.0, 1.0)) +
            rng.exponential(200.0);
        histogram.record(sample);
        oracle.add(sample);
    }

    telemetry::HistogramSnapshot snapshot = histogram.snapshot();
    ASSERT_EQ(snapshot.count, oracle.count());
    for (double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
        double exact = oracle.quantile(q);
        double bucketed = snapshot.quantile(q);
        // One 4% bucket of slack either side.
        EXPECT_NEAR(bucketed, exact, 0.05 * exact)
            << "quantile " << q;
    }
}

TEST(PercentileUnification, ExtremesLandInRange)
{
    telemetry::LogHistogram histogram(latencyHistogramOptions());
    // Below the first bound and beyond the last: both must clamp,
    // not crash or vanish.
    histogram.record(1e-9);
    histogram.record(1e6);
    telemetry::HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 2u);
    EXPECT_GT(snapshot.quantile(0.99), 1.0);
}

} // namespace
} // namespace sim
} // namespace djinn
