#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"

namespace djinn {
namespace sim {
namespace {

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_DOUBLE_EQ(eq.now(), 0.0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(3.0, [&]() { order.push_back(3); });
    eq.scheduleAt(1.0, [&]() { order.push_back(1); });
    eq.scheduleAt(2.0, [&]() { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TiesFireFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(1.0, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    double fired_at = -1.0;
    eq.scheduleAt(5.0, [&]() {
        eq.scheduleAfter(2.0, [&]() { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.scheduleAt(1.0, [&]() { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIsNoop)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.scheduleAt(1.0, []() {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.scheduleAt(1.0, []() {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    EventId a = eq.scheduleAt(1.0, []() {});
    eq.scheduleAt(2.0, []() {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1.0, [&]() { ++fired; });
    eq.scheduleAt(5.0, [&]() { ++fired; });
    eq.run(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(10.0);
    EXPECT_DOUBLE_EQ(eq.now(), 10.0);
}

TEST(EventQueue, ReentrantSchedulingChain)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 100)
            eq.scheduleAfter(0.5, chain);
    };
    eq.scheduleAfter(0.5, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(eq.now(), 50.0);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiredCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(i, []() {});
    eq.run();
    EXPECT_EQ(eq.firedCount(), 5u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleAt(5.0, []() {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(1.0, []() {}), "before now");
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.scheduleAfter(-1.0, []() {}),
                 "negative delay");
}

TEST(EventQueue, CancelInsideCallbackOfSameTime)
{
    EventQueue eq;
    bool second_fired = false;
    EventId second = 0;
    eq.scheduleAt(1.0, [&]() { eq.cancel(second); });
    second = eq.scheduleAt(1.0, [&]() { second_fired = true; });
    eq.run();
    EXPECT_FALSE(second_fired);
}

} // namespace
} // namespace sim
} // namespace djinn
