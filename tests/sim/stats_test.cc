#include "sim/stats.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace djinn {
namespace sim {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyDefaults)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanAndVariance)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, MinMaxSum)
{
    Accumulator a;
    a.add(3.0);
    a.add(-1.0);
    a.add(10.0);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.add(7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 7.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 7.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.add(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, EmptyQuantilesZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Distribution, ExactQuantiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_NEAR(d.median(), 50.5, 1e-9);
    EXPECT_NEAR(d.quantile(0.99), 99.01, 1e-9);
    EXPECT_NEAR(d.quantile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(d.quantile(1.0), 100.0, 1e-9);
}

TEST(Distribution, QuantileClampsOutOfRange)
{
    Distribution d;
    d.add(5.0);
    d.add(10.0);
    EXPECT_DOUBLE_EQ(d.quantile(-1.0), 5.0);
    EXPECT_DOUBLE_EQ(d.quantile(2.0), 10.0);
}

TEST(Distribution, MeanMatches)
{
    Distribution d;
    d.add(2.0);
    d.add(4.0);
    d.add(9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Distribution, InterleavedAddAndQuantile)
{
    Distribution d;
    d.add(3.0);
    EXPECT_DOUBLE_EQ(d.median(), 3.0);
    d.add(1.0);
    EXPECT_DOUBLE_EQ(d.median(), 2.0);
    d.add(2.0);
    EXPECT_DOUBLE_EQ(d.median(), 2.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.add(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(StatRegistry, SetGetHas)
{
    StatRegistry reg;
    reg.set("qps", 120.5);
    EXPECT_TRUE(reg.has("qps"));
    EXPECT_FALSE(reg.has("latency"));
    EXPECT_DOUBLE_EQ(reg.get("qps"), 120.5);
}

TEST(StatRegistry, OverwriteKeepsLatest)
{
    StatRegistry reg;
    reg.set("x", 1.0);
    reg.set("x", 2.0);
    EXPECT_DOUBLE_EQ(reg.get("x"), 2.0);
    EXPECT_EQ(reg.all().size(), 1u);
}

TEST(StatRegistry, DumpSortedByName)
{
    StatRegistry reg;
    reg.set("b", 2.0);
    reg.set("a", 1.0);
    std::string dump = reg.dump();
    EXPECT_LT(dump.find("a 1"), dump.find("b 2"));
}

} // namespace
} // namespace sim
} // namespace djinn
