/**
 * @file
 * Randomized property test for the event queue: thousands of
 * interleaved schedule/cancel operations checked against a naive
 * reference model (a sorted list).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace djinn {
namespace sim {
namespace {

struct Fired {
    int tag;
    double time;
};

class EventQueueRandomized : public ::testing::TestWithParam<int>
{};

TEST_P(EventQueueRandomized, MatchesReferenceModel)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
    EventQueue eq;

    // Reference: (time, seq, tag) of live events, fired in
    // (time, seq) order.
    struct RefEvent {
        double time;
        uint64_t seq;
        int tag;
    };
    std::vector<RefEvent> reference;
    std::map<int, EventId> live_ids;
    std::vector<Fired> fired;
    uint64_t seq = 0;
    int next_tag = 0;

    const int ops = 2000;
    for (int op = 0; op < ops; ++op) {
        double roll = rng.uniform();
        if (roll < 0.7 || live_ids.empty()) {
            double when = rng.uniform(0.0, 1000.0);
            int tag = next_tag++;
            EventId id = eq.scheduleAt(
                when, [tag, &fired, &eq]() {
                    fired.push_back({tag, eq.now()});
                });
            reference.push_back({when, seq++, tag});
            live_ids[tag] = id;
        } else {
            // Cancel a uniformly chosen live event.
            auto it = live_ids.begin();
            std::advance(it, static_cast<long>(rng.uniformInt(
                0, static_cast<int64_t>(live_ids.size()) - 1)));
            ASSERT_TRUE(eq.cancel(it->second));
            int tag = it->first;
            reference.erase(
                std::find_if(reference.begin(), reference.end(),
                             [tag](const RefEvent &e) {
                                 return e.tag == tag;
                             }));
            live_ids.erase(it);
        }
    }

    eq.run();

    std::stable_sort(reference.begin(), reference.end(),
                     [](const RefEvent &a, const RefEvent &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         return a.seq < b.seq;
                     });

    ASSERT_EQ(fired.size(), reference.size());
    for (size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].tag, reference[i].tag) << "at " << i;
        EXPECT_DOUBLE_EQ(fired[i].time, reference[i].time);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueRandomized,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EventQueueRandomized, CancellationDuringRun)
{
    // Events cancel other events while the queue drains.
    Rng rng(99);
    EventQueue eq;
    std::vector<EventId> ids;
    std::vector<int> fired;
    for (int i = 0; i < 200; ++i) {
        int tag = i;
        ids.push_back(eq.scheduleAt(
            static_cast<double>(i),
            [tag, &fired]() { fired.push_back(tag); }));
    }
    // Event 10 cancels all even events above 10.
    eq.scheduleAt(10.5, [&eq, &ids]() {
        for (size_t i = 12; i < ids.size(); i += 2)
            eq.cancel(ids[i]);
    });
    eq.run();
    // 0..10 all fired; beyond that only odd tags.
    for (int tag : fired) {
        if (tag > 10) {
            EXPECT_EQ(tag % 2, 1) << tag;
        }
    }
    EXPECT_EQ(fired.size(), 11u + 95u); // 0..10 plus odd 11..199
}

} // namespace
} // namespace sim
} // namespace djinn
