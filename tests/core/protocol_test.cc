#include "core/protocol.hh"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

namespace djinn {
namespace core {
namespace {

TEST(Protocol, RequestRoundTrip)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "alexnet";
    request.rows = 2;
    request.payload = {1.0f, 2.5f, -3.0f, 0.0f};

    auto bytes = encodeRequest(request);
    auto decoded = decodeRequest(bytes);
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    const Request &r = decoded.value();
    EXPECT_EQ(r.type, RequestType::Inference);
    EXPECT_EQ(r.model, "alexnet");
    EXPECT_EQ(r.rows, 2u);
    ASSERT_EQ(r.payload.size(), 4u);
    EXPECT_FLOAT_EQ(r.payload[1], 2.5f);
    EXPECT_FLOAT_EQ(r.payload[2], -3.0f);
}

TEST(Protocol, ResponseRoundTrip)
{
    Response response;
    response.status = WireStatus::UnknownModel;
    response.message = "unknown model 'x'";
    response.payload = {0.25f};

    auto bytes = encodeResponse(response);
    auto decoded = decodeResponse(bytes);
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().status, WireStatus::UnknownModel);
    EXPECT_EQ(decoded.value().message, "unknown model 'x'");
    ASSERT_EQ(decoded.value().payload.size(), 1u);
}

TEST(Protocol, EmptyPayloadAllowed)
{
    Request request;
    request.type = RequestType::Ping;
    auto decoded = decodeRequest(encodeRequest(request));
    ASSERT_TRUE(decoded.isOk());
    EXPECT_TRUE(decoded.value().payload.empty());
}

TEST(Protocol, RejectsBadMagic)
{
    auto bytes = encodeRequest(Request{});
    bytes[0] ^= 0xff;
    auto decoded = decodeRequest(bytes);
    ASSERT_FALSE(decoded.isOk());
    EXPECT_EQ(decoded.status().code(), StatusCode::ProtocolError);
}

TEST(Protocol, RejectsBadVersion)
{
    auto bytes = encodeRequest(Request{});
    bytes[4] = 0x77;
    EXPECT_FALSE(decodeRequest(bytes).isOk());
}

TEST(Protocol, RejectsUnknownType)
{
    auto bytes = encodeRequest(Request{});
    bytes[6] = 0x42;
    EXPECT_FALSE(decodeRequest(bytes).isOk());
}

TEST(Protocol, RejectsTruncatedFrames)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1, 2, 3};
    auto bytes = encodeRequest(request);
    for (size_t cut : {size_t(3), size_t(9), bytes.size() - 1}) {
        std::vector<uint8_t> partial(bytes.begin(),
                                     bytes.begin() + cut);
        EXPECT_FALSE(decodeRequest(partial).isOk())
            << "cut at " << cut;
    }
}

TEST(Protocol, RejectsTrailingGarbage)
{
    auto bytes = encodeRequest(Request{});
    bytes.push_back(0xab);
    EXPECT_FALSE(decodeRequest(bytes).isOk());
}

TEST(Protocol, RejectsOversizeModelName)
{
    auto bytes = encodeRequest(Request{});
    // Patch the name length field (offset 8) to a huge value.
    bytes[8] = 0xff;
    bytes[9] = 0xff;
    bytes[10] = 0xff;
    bytes[11] = 0x7f;
    EXPECT_FALSE(decodeRequest(bytes).isOk());
}

TEST(Protocol, UntracedRequestEncodesAsVersionOne)
{
    // Backward compatibility: a request without a trace context
    // must emit the original v1 frame, byte for byte — an old
    // server never sees the v2 trailer.
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f};
    auto bytes = encodeRequest(request);
    EXPECT_EQ(bytes[4], protocolVersion & 0xff);
    EXPECT_EQ(bytes[5], (protocolVersion >> 8) & 0xff);

    auto decoded = decodeRequest(bytes);
    ASSERT_TRUE(decoded.isOk());
    EXPECT_FALSE(decoded.value().trace.valid());
}

TEST(Protocol, TracedRequestRoundTripsTraceContext)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "alexnet";
    request.rows = 1;
    request.payload = {0.5f, 0.25f};
    request.trace = telemetry::makeTraceContext();

    auto bytes = encodeRequest(request);
    EXPECT_EQ(bytes[4], protocolVersionTraced & 0xff);

    auto decoded = decodeRequest(bytes);
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    const Request &r = decoded.value();
    EXPECT_EQ(r.model, "alexnet");
    ASSERT_EQ(r.payload.size(), 2u);
    EXPECT_TRUE(r.trace.valid());
    EXPECT_TRUE(r.trace.sampled());
    EXPECT_EQ(r.trace.traceId, request.trace.traceId);
    EXPECT_EQ(r.trace.spanId, request.trace.spanId);
    EXPECT_EQ(r.trace.flags, request.trace.flags);
}

TEST(Protocol, TracedEncodingOnlyAppendsTrailer)
{
    // The v2 frame is the v1 frame plus 17 trailer bytes and the
    // bumped version field — nothing else moves, so a v1 decoder's
    // view of the shared prefix is unchanged.
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f, 2.0f};
    auto v1 = encodeRequest(request);
    request.trace = telemetry::makeTraceContext();
    auto v2 = encodeRequest(request);

    ASSERT_EQ(v2.size(), v1.size() + 17);
    for (size_t i = 6; i < v1.size(); ++i)
        EXPECT_EQ(v2[i], v1[i]) << "offset " << i;
}

TEST(Protocol, RejectsTruncatedTraceTrailer)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f};
    request.trace = telemetry::makeTraceContext();
    auto bytes = encodeRequest(request);
    for (size_t drop = 1; drop <= 16; drop += 5) {
        std::vector<uint8_t> partial(bytes.begin(),
                                     bytes.end() - drop);
        EXPECT_FALSE(decodeRequest(partial).isOk())
            << "dropped " << drop;
    }
}

TEST(Protocol, DeadlineRequestRoundTrips)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "alexnet";
    request.rows = 1;
    request.payload = {0.5f};
    request.deadlineMs = 250;

    auto bytes = encodeRequest(request);
    EXPECT_EQ(bytes[4], protocolVersionDeadline & 0xff);

    auto decoded = decodeRequest(bytes);
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().deadlineMs, 250u);
    // The v3 trace block is present but all-zero for an untraced
    // request, and must not decode as a valid context.
    EXPECT_FALSE(decoded.value().trace.valid());
}

TEST(Protocol, DeadlineAndTraceRoundTripTogether)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f};
    request.trace = telemetry::makeTraceContext();
    request.deadlineMs = 75;

    auto decoded = decodeRequest(encodeRequest(request));
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().deadlineMs, 75u);
    EXPECT_TRUE(decoded.value().trace.valid());
    EXPECT_EQ(decoded.value().trace.traceId,
              request.trace.traceId);
}

TEST(Protocol, DeadlineEncodingOnlyAppendsTrailer)
{
    // The v3 frame is the v2 frame plus the 4-byte deadline block
    // and the bumped version field: a v1/v2 decoder's view of the
    // shared prefix is unchanged (back-compat battery across the
    // three versions).
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f, 2.0f};
    auto v1 = encodeRequest(request);
    request.trace = telemetry::makeTraceContext();
    auto v2 = encodeRequest(request);
    request.deadlineMs = 1000;
    auto v3 = encodeRequest(request);

    ASSERT_EQ(v2.size(), v1.size() + 17);
    ASSERT_EQ(v3.size(), v2.size() + 4);
    for (size_t i = 6; i < v1.size(); ++i)
        EXPECT_EQ(v3[i], v1[i]) << "offset " << i;
    for (size_t i = 6; i < v2.size(); ++i)
        EXPECT_EQ(v3[i], v2[i]) << "offset " << i;
}

TEST(Protocol, ZeroDeadlineStaysVersionOne)
{
    // No deadline and no trace must keep the frame byte-identical
    // to v1 so old servers keep working.
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f};
    request.deadlineMs = 0;
    auto bytes = encodeRequest(request);
    EXPECT_EQ(bytes[4], protocolVersion & 0xff);
}

TEST(Protocol, RejectsTruncatedDeadlineBlock)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = "m";
    request.rows = 1;
    request.payload = {1.0f};
    request.deadlineMs = 42;
    auto bytes = encodeRequest(request);
    for (size_t drop = 1; drop <= 4; ++drop) {
        std::vector<uint8_t> partial(bytes.begin(),
                                     bytes.end() - drop);
        EXPECT_FALSE(decodeRequest(partial).isOk())
            << "dropped " << drop;
    }
}

TEST(Protocol, OverloadedResponseRoundTrips)
{
    Response response;
    response.status = WireStatus::Overloaded;
    response.message = "model 'm' queue full (64 queued)";
    auto decoded = decodeResponse(encodeResponse(response));
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().status, WireStatus::Overloaded);
    EXPECT_EQ(decoded.value().message, response.message);
}

TEST(Protocol, DeadlineExceededResponseRoundTrips)
{
    Response response;
    response.status = WireStatus::DeadlineExceeded;
    response.message = "deadline expired before forward pass";
    auto decoded = decodeResponse(encodeResponse(response));
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().status,
              WireStatus::DeadlineExceeded);
}

TEST(Protocol, ResponseRejectsBadStatus)
{
    auto bytes = encodeResponse(Response{});
    bytes[6] = 0x63; // status 99
    EXPECT_FALSE(decodeResponse(bytes).isOk());
}

TEST(Protocol, RequestAndResponseMagicsDiffer)
{
    auto req = encodeRequest(Request{});
    EXPECT_FALSE(decodeResponse(req).isOk());
    auto resp = encodeResponse(Response{});
    EXPECT_FALSE(decodeRequest(resp).isOk());
}

TEST(FrameIo, RoundTripOverSocketPair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo a(fds[0]), b(fds[1]);

    std::vector<uint8_t> frame{1, 2, 3, 4, 5};
    ASSERT_TRUE(a.writeFrame(frame).isOk());
    auto got = b.readFrame();
    ASSERT_TRUE(got.isOk());
    EXPECT_EQ(got.value(), frame);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIo, EmptyFrameRoundTrips)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo a(fds[0]), b(fds[1]);
    ASSERT_TRUE(a.writeFrame({}).isOk());
    auto got = b.readFrame();
    ASSERT_TRUE(got.isOk());
    EXPECT_TRUE(got.value().empty());
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIo, LargeFrameRoundTrips)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::vector<uint8_t> frame(1 << 20);
    for (size_t i = 0; i < frame.size(); ++i)
        frame[i] = static_cast<uint8_t>(i * 31);
    // Write from a thread so the pipe buffer can drain.
    std::thread writer([&]() {
        FrameIo a(fds[0]);
        ASSERT_TRUE(a.writeFrame(frame).isOk());
    });
    FrameIo b(fds[1]);
    auto got = b.readFrame();
    writer.join();
    ASSERT_TRUE(got.isOk());
    EXPECT_EQ(got.value(), frame);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIo, RejectsFrameOverLimit)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo a(fds[0]), b(fds[1]);
    std::vector<uint8_t> frame(1024);
    ASSERT_TRUE(a.writeFrame(frame).isOk());
    auto got = b.readFrame(512);
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::ProtocolError);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIo, PeerCloseReportsIoError)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[0]);
    FrameIo b(fds[1]);
    auto got = b.readFrame();
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::IoError);
    ::close(fds[1]);
}

} // namespace
} // namespace core
} // namespace djinn
