/**
 * @file
 * Request-lifecycle robustness battery (DESIGN.md §10): I/O
 * timeouts against stalled and trickling peers, fault injection,
 * admission control under burst load with client retries, graceful
 * drain, protocol-error accounting, HTTP slowloris defense, and
 * acceptor survival under fd exhaustion.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "core/fault.hh"
#include "core/http_endpoint.hh"
#include "core/protocol.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/exposition.hh"

namespace djinn {
namespace core {
namespace {

TEST(FaultSpec, ParsesKnownNames)
{
    std::string error;
    EXPECT_EQ(parseFaultSpec("", &error), FaultNone);
    EXPECT_EQ(parseFaultSpec("slow-read", &error), FaultSlowRead);
    EXPECT_EQ(parseFaultSpec("slow-read,mid-frame-close", &error),
              FaultSlowRead | FaultMidFrameClose);
    EXPECT_EQ(parseFaultSpec("stall-after-header", &error),
              FaultStallAfterHeader);
    EXPECT_TRUE(error.empty()) << error;
}

TEST(FaultSpec, ReportsUnknownNames)
{
    std::string error;
    uint32_t mask = parseFaultSpec("slow-read,bogus", &error);
    EXPECT_EQ(mask, FaultSlowRead);
    EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(FrameIoTimeout, IdleTimeoutBoundsFirstByte)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo reader(fds[1]);
    reader.setIdleTimeout(0.05);
    auto got = reader.readFrame();
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIoTimeout, StalledMidFrameTimesOut)
{
    // The peer sends the length prefix then stalls: the transfer
    // timeout (armed at the first byte) must fire even though the
    // connection was never idle-before-frame.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    uint8_t header[4] = {100, 0, 0, 0}; // claims 100 bytes, sends 0
    ASSERT_EQ(::write(fds[0], header, sizeof(header)), 4);

    FrameIo reader(fds[1]);
    reader.setTimeout(0.05);
    auto start = std::chrono::steady_clock::now();
    auto got = reader.readFrame();
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);
    EXPECT_LT(seconds, 2.0);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIoTimeout, TricklingPeerCannotResetBudget)
{
    // Slowloris: a peer delivering one byte at a time restarts any
    // per-read timeout but must not defeat the per-frame budget.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::atomic<bool> stop{false};
    std::thread trickler([&]() {
        // Claim a 1000-byte frame, then trickle a byte every 10 ms
        // (would take 10 s; the reader's budget is 150 ms).
        uint8_t header[4] = {0xe8, 0x03, 0, 0};
        (void)!::write(fds[0], header, sizeof(header));
        uint8_t b = 0;
        while (!stop.load()) {
            if (::write(fds[0], &b, 1) != 1)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });
    FrameIo reader(fds[1]);
    reader.setTimeout(0.15);
    auto got = reader.readFrame();
    stop.store(true);
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);
    ::shutdown(fds[0], SHUT_RDWR);
    trickler.join();
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIoFaults, SlowReadStillDeliversIntactFrames)
{
    // FaultSlowRead degrades throughput, not correctness.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo writer(fds[0]), reader(fds[1]);
    reader.setFaults(FaultSlowRead);
    std::vector<uint8_t> frame{9, 8, 7, 6, 5};
    ASSERT_TRUE(writer.writeFrame(frame).isOk());
    auto got = reader.readFrame();
    ASSERT_TRUE(got.isOk()) << got.status().toString();
    EXPECT_EQ(got.value(), frame);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIoFaults, StallAfterHeaderStallsThePeer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo writer(fds[0]), reader(fds[1]);
    writer.setFaults(FaultStallAfterHeader);
    EXPECT_TRUE(writer.writeFrame({1, 2, 3}).isOk());
    reader.setTimeout(0.05);
    auto got = reader.readFrame();
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FrameIoFaults, MidFrameCloseTruncatesThePeer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameIo writer(fds[0]), reader(fds[1]);
    writer.setFaults(FaultMidFrameClose);
    EXPECT_FALSE(writer.writeFrame({1, 2, 3, 4}).isOk());
    auto got = reader.readFrame();
    EXPECT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::ProtocolError);
    ::close(fds[0]);
    ::close(fds[1]);
}

/** Server-side battery over a real loopback server. */
class RobustnessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 2 2\nlayer fc fc out 3\n"
            "layer prob softmax\n");
        nn::initializeWeights(*net, 5);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config = ServerConfig{})
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    Status
    connect(DjinnClient &client)
    {
        return client.connect("127.0.0.1", server_->port());
    }

    /** Raw TCP connection to the server, for misbehaving peers. */
    int
    rawConnect()
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server_->port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    /** A metric's current value from the server's registry. */
    double
    metric(const std::string &name,
           const telemetry::LabelMap &labels = {})
    {
        auto parsed = telemetry::parseExposition(
            telemetry::renderPrometheus(
                server_->metrics().snapshot()));
        if (!parsed.isOk())
            return -1.0;
        auto v = telemetry::findSample(parsed.value(), name, labels);
        return v.isOk() ? v.value() : 0.0;
    }

    /** Poll until @p name{labels} >= @p least or ~2s elapse. */
    bool
    waitForMetric(const std::string &name,
                  const telemetry::LabelMap &labels, double least)
    {
        for (int i = 0; i < 200; ++i) {
            if (metric(name, labels) >= least)
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

TEST_F(RobustnessTest, StalledClientCannotBlockWorkerPastTimeout)
{
    // Acceptance: a client that stalls mid-frame must not park its
    // worker thread forever; the I/O timeout reclaims it and the
    // stall is visible in djinn_io_timeouts_total. Other clients
    // stay served throughout.
    ServerConfig config;
    config.ioTimeoutSeconds = 0.1;
    startServer(config);

    int stalled = rawConnect();
    ASSERT_GE(stalled, 0);
    {
        // Send the length prefix and two payload bytes, then stall.
        uint8_t partial[6] = {100, 0, 0, 0, 0xaa, 0xbb};
        ASSERT_EQ(::write(stalled, partial, sizeof(partial)), 6);
    }

    DjinnClient healthy;
    ASSERT_TRUE(connect(healthy).isOk());
    EXPECT_TRUE(healthy.infer("tiny", 1, {1, 2, 3, 4}).isOk());

    EXPECT_TRUE(waitForMetric("djinn_io_timeouts_total",
                              {{"op", "read"}}, 1.0))
        << "stalled connection was never timed out";
    EXPECT_TRUE(healthy.ping().isOk());
    ::close(stalled);
}

TEST_F(RobustnessTest, OverloadBurstShedsAndRetriesSucceed)
{
    // Acceptance: a burst far above the queue cap sheds with
    // Overloaded (bounded queue), the sheds are counted, and a
    // client retrying with backoff eventually gets every answer.
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 64;
    config.batchOptions.maxDelay = 0.05;
    config.batchOptions.maxQueueDepth = 4;
    startServer(config);

    constexpr int burst = 16; // 4 x the queue cap
    std::atomic<int> ok{0}, overloaded{0}, other{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < burst; ++c) {
        clients.emplace_back([this, &ok, &overloaded, &other]() {
            DjinnClient client;
            if (!connect(client).isOk()) {
                ++other;
                return;
            }
            auto result = client.infer("tiny", 1, {1, 2, 3, 4});
            if (result.isOk())
                ++ok;
            else if (result.status().code() ==
                     StatusCode::Overloaded)
                ++overloaded;
            else
                ++other;
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(other.load(), 0);
    EXPECT_EQ(ok.load() + overloaded.load(), burst);
    EXPECT_GT(overloaded.load(), 0)
        << "burst of 4x queue depth never shed";
    EXPECT_GE(metric("djinn_shed_total", {{"model", "tiny"},
                                          {"reason", "queue_full"}}),
              static_cast<double>(overloaded.load()));
    EXPECT_GE(metric("djinn_request_errors_total",
                     {{"reason", "overloaded"}}),
              static_cast<double>(overloaded.load()));

    // The same burst with retries enabled must fully succeed: an
    // Overloaded shed is explicitly safe to retry, and backoff
    // spreads the retries past the spike.
    std::atomic<int> retried_ok{0}, retried_fail{0};
    std::vector<std::thread> retry_clients;
    for (int c = 0; c < burst; ++c) {
        retry_clients.emplace_back(
            [this, c, &retried_ok, &retried_fail]() {
                DjinnClient client;
                RetryPolicy policy;
                policy.maxAttempts = 20;
                policy.initialBackoffSeconds = 0.02;
                policy.maxBackoffSeconds = 0.2;
                client.setRetryPolicy(policy);
                client.setRetrySeed(1000 + c);
                if (!connect(client).isOk()) {
                    ++retried_fail;
                    return;
                }
                if (client.infer("tiny", 1, {1, 2, 3, 4}).isOk())
                    ++retried_ok;
                else
                    ++retried_fail;
            });
    }
    for (auto &c : retry_clients)
        c.join();
    EXPECT_EQ(retried_ok.load(), burst);
    EXPECT_EQ(retried_fail.load(), 0);
}

TEST_F(RobustnessTest, DeadlineExpiredInQueueIsShedNotServed)
{
    // A 1 ms budget cannot survive a 100 ms batch window: the
    // server must shed at dequeue (before the forward pass) with
    // DeadlineExceeded, and count the shed.
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 64;
    config.batchOptions.maxDelay = 0.1;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setDeadlineMs(1);
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::DeadlineExceeded);
    EXPECT_GE(metric("djinn_shed_total",
                     {{"model", "tiny"}, {"reason", "deadline"}}),
              1.0);

    // Without a deadline the same request completes.
    client.setDeadlineMs(0);
    EXPECT_TRUE(client.infer("tiny", 1, {1, 2, 3, 4}).isOk());
}

TEST_F(RobustnessTest, DeadlineTrailerAcceptedWithoutBatching)
{
    // An expired-on-arrival budget is hard to construct without
    // batching delay; instead verify a generous budget passes
    // through the non-batching path untouched.
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setDeadlineMs(60000);
    EXPECT_TRUE(client.infer("tiny", 1, {1, 2, 3, 4}).isOk());
}

TEST_F(RobustnessTest, StopUnderLoadDrainsInflightResponses)
{
    // Acceptance: stop() during an in-flight request must flush
    // that request's response (drain), not cut the connection
    // under it. The batch window keeps the request in flight long
    // enough for stop() to overlap it.
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 64;
    config.batchOptions.maxDelay = 0.1;
    config.drainTimeoutSeconds = 5.0;
    startServer(config);

    std::atomic<bool> ok{false};
    std::atomic<bool> sent{false};
    std::thread inflight([this, &ok, &sent]() {
        DjinnClient client;
        if (!connect(client).isOk())
            return;
        sent.store(true);
        auto result = client.infer("tiny", 1, {1, 2, 3, 4});
        ok.store(result.isOk());
    });
    while (!sent.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Give the request time to reach the server, then stop while
    // it sits in the batch window.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_->stop();
    inflight.join();
    EXPECT_TRUE(ok.load())
        << "in-flight response dropped during stop()";
}

TEST_F(RobustnessTest, OversizeFrameCountsProtocolError)
{
    // Satellite regression: oversized frames used to be dropped
    // silently; they must surface in djinn_protocol_errors.
    startServer();
    int fd = rawConnect();
    ASSERT_GE(fd, 0);
    // Length prefix claiming 1 GiB, over the server's cap.
    uint8_t header[4] = {0, 0, 0, 0x40};
    ASSERT_EQ(::write(fd, header, sizeof(header)), 4);
    EXPECT_TRUE(waitForMetric("djinn_protocol_errors",
                              {{"reason", "oversize"}}, 1.0));
    ::close(fd);
}

TEST_F(RobustnessTest, TruncatedFrameCountsProtocolError)
{
    startServer();
    int fd = rawConnect();
    ASSERT_GE(fd, 0);
    // Claim 100 bytes, deliver 10, close: a mid-frame truncation.
    uint8_t header[4] = {100, 0, 0, 0};
    uint8_t body[10] = {};
    ASSERT_EQ(::write(fd, header, sizeof(header)), 4);
    ASSERT_EQ(::write(fd, body, sizeof(body)), 10);
    ::close(fd);
    EXPECT_TRUE(waitForMetric("djinn_protocol_errors",
                              {{"reason", "truncated"}}, 1.0));
}

TEST_F(RobustnessTest, MalformedRequestCountsProtocolError)
{
    // A well-framed but undecodable payload (bad magic) counts
    // under the malformed reason and earns a BadRequest response.
    startServer();
    int fd = rawConnect();
    ASSERT_GE(fd, 0);
    FrameIo io(fd);
    ASSERT_TRUE(io.writeFrame({0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
                    .isOk());
    auto response = io.readFrame();
    ASSERT_TRUE(response.isOk());
    auto decoded = decodeResponse(response.value());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().status, WireStatus::BadRequest);
    EXPECT_GE(metric("djinn_protocol_errors",
                     {{"reason", "malformed"}}),
              1.0);
    ::close(fd);
}

TEST_F(RobustnessTest, ServerFaultInjectionBreaksResponses)
{
    // The --fault plumbing end to end: a server injecting
    // mid-frame closes on its responses must produce truncated
    // frames at the client, not valid answers.
    ServerConfig config;
    config.faultSpec = "mid-frame-close";
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    EXPECT_FALSE(result.isOk());
}

TEST_F(RobustnessTest, ClientRequestTimeoutBoundsStalledServer)
{
    // A server stalling its responses (stall-after-header fault)
    // must not hang a client that set a request timeout.
    ServerConfig config;
    config.faultSpec = "stall-after-header";
    startServer(config);
    DjinnClient client;
    client.setRequestTimeout(0.1);
    ASSERT_TRUE(connect(client).isOk());
    auto start = std::chrono::steady_clock::now();
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::DeadlineExceeded);
    EXPECT_LT(seconds, 2.0);
}

TEST_F(RobustnessTest, ConnectTimeoutExpiresQuickly)
{
    // A listener whose accept queue is saturated stops answering
    // SYNs, so a further connect can only end via the client-side
    // timeout. (A blackhole address would be simpler but is not
    // reliable in every network environment.)
    int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener,
                            reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    ASSERT_EQ(::listen(listener, 0), 0);

    // Saturate the backlog with non-blocking connects that are
    // never accepted; once it is full the kernel drops new SYNs.
    std::vector<int> fillers;
    for (int i = 0; i < 8; ++i) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        (void)::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr));
        fillers.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    DjinnClient client;
    client.setConnectTimeout(0.1);
    auto start = std::chrono::steady_clock::now();
    Status s = client.connect("127.0.0.1", ntohs(addr.sin_port));
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    for (int fd : fillers)
        ::close(fd);
    ::close(listener);
    if (s.isOk())
        GTEST_SKIP() << "kernel accepted past the backlog; cannot "
                        "force a connect stall here";
    EXPECT_EQ(s.code(), StatusCode::DeadlineExceeded)
        << s.toString();
    EXPECT_LT(seconds, 5.0);
}

TEST(HttpTimeout, StalledScraperGets408)
{
    // Slowloris defense: a scraper that never finishes its request
    // head must get 408 within the socket timeout instead of
    // wedging the single-threaded endpoint, and the timeout must
    // be counted.
    telemetry::MetricRegistry metrics;
    telemetry::Tracer tracer(1024);
    HttpEndpoint endpoint(metrics, tracer);
    endpoint.setIoTimeout(0.1);
    ASSERT_TRUE(endpoint.start("127.0.0.1", 0).isOk());

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    // A partial request line and then silence.
    ASSERT_GT(::write(fd, "GET /heal", 9), 0);

    std::string reply;
    char buf[512];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    EXPECT_NE(reply.find("408"), std::string::npos) << reply;
    ::close(fd);

    auto parsed = telemetry::parseExposition(
        telemetry::renderPrometheus(metrics.snapshot()));
    ASSERT_TRUE(parsed.isOk());
    auto count = telemetry::findSample(parsed.value(),
                                       "djinn_http_timeouts_total");
    ASSERT_TRUE(count.isOk());
    EXPECT_GE(count.value(), 1.0);

    // The endpoint still serves the next scrape.
    std::string content_type, body;
    EXPECT_EQ(endpoint.handle("/healthz", content_type, body), 200);
    endpoint.stop();
}

/**
 * Acceptor fd-exhaustion battery. Separate fixture name so the
 * TSan stage (which filters on *Robustness*) skips it: driving the
 * process against RLIMIT_NOFILE under TSan starves the runtime
 * itself.
 */
class AcceptLoopTest : public RobustnessTest
{};

TEST_F(AcceptLoopTest, SurvivesFdExhaustion)
{
    // Satellite regression: accept() returning EMFILE used to kill
    // the acceptor silently, leaving a listening socket that never
    // answers again. The acceptor must count the error, back off,
    // and serve the backlog once descriptors free up.
    startServer();
    DjinnClient before;
    ASSERT_TRUE(connect(before).isOk());
    ASSERT_TRUE(before.ping().isOk());

    // Reserve one spare descriptor for the client socket the test
    // will need after exhausting the table (server and test share
    // one process, so exhaustion hits both).
    int spare = ::open("/dev/null", O_RDONLY);
    ASSERT_GE(spare, 0);

    // Exhaust the rest of the fd table with ballast so accept()
    // deterministically hits EMFILE for the next connection.
    std::vector<int> ballast;
    for (;;) {
        int fd = ::open("/dev/null", O_RDONLY);
        if (fd < 0)
            break;
        ballast.push_back(fd);
        if (ballast.size() > 65536)
            break; // effectively unbounded limit; give up
    }
    if (ballast.empty() || ballast.size() > 65536) {
        for (int fd : ballast)
            ::close(fd);
        ::close(spare);
        GTEST_SKIP() << "cannot exhaust RLIMIT_NOFILE here";
    }

    // Trade the spare for a client socket: the TCP handshake
    // completes in the kernel backlog without a server-side
    // accept, so this connect succeeds while accept() fails
    // EMFILE (the freed descriptor is consumed by this socket).
    ::close(spare);
    int pending = rawConnect();
    ASSERT_GE(pending, 0);

    EXPECT_TRUE(waitForMetric("djinn_accept_errors", {}, 1.0))
        << "accept() never reported fd exhaustion";
    EXPECT_TRUE(server_->running());

    // Free the ballast; the acceptor's retry must then accept the
    // pending connection and serve it.
    for (int fd : ballast)
        ::close(fd);
    ballast.clear();

    FrameIo io(pending);
    io.setTimeout(5.0);
    io.setIdleTimeout(5.0);
    Request ping;
    ping.type = RequestType::Ping;
    ASSERT_TRUE(io.writeFrame(encodeRequest(ping)).isOk());
    auto frame = io.readFrame();
    ASSERT_TRUE(frame.isOk()) << frame.status().toString();
    auto decoded = decodeResponse(frame.value());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().message, "pong");
    ::close(pending);

    // The earlier connection kept working through the exhaustion.
    EXPECT_TRUE(before.ping().isOk());
}

} // namespace
} // namespace core
} // namespace djinn
