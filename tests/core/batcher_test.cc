#include "core/batcher.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/metrics.hh"

namespace djinn {
namespace core {
namespace {

class BatcherTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 2 2\nlayer fc fc out 3\n");
        nn::initializeWeights(*net, 5);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    ModelRegistry registry_;
};

TEST_F(BatcherTest, SingleQueryCompletes)
{
    BatchOptions options;
    options.maxQueries = 4;
    options.maxDelay = 1e-3;
    BatchingExecutor executor(registry_, options);
    auto future = executor.submit("tiny", 1, {1, 2, 3, 4});
    InferenceResult result = future.get();
    ASSERT_TRUE(result.status.isOk()) << result.status.toString();
    EXPECT_EQ(result.output.size(), 3u);
    EXPECT_EQ(executor.queriesServed(), 1u);
}

TEST_F(BatcherTest, UnknownModelRejected)
{
    BatchingExecutor executor(registry_, BatchOptions{});
    auto future = executor.submit("missing", 1, {1, 2, 3, 4});
    InferenceResult result = future.get();
    EXPECT_EQ(result.status.code(), StatusCode::NotFound);
}

TEST_F(BatcherTest, WrongPayloadSizeRejected)
{
    BatchingExecutor executor(registry_, BatchOptions{});
    auto future = executor.submit("tiny", 1, {1, 2, 3});
    InferenceResult result = future.get();
    EXPECT_EQ(result.status.code(), StatusCode::InvalidArgument);
}

TEST_F(BatcherTest, ZeroRowsRejected)
{
    BatchingExecutor executor(registry_, BatchOptions{});
    auto future = executor.submit("tiny", 0, {});
    EXPECT_EQ(future.get().status.code(),
              StatusCode::InvalidArgument);
}

TEST_F(BatcherTest, ConcurrentQueriesGetCombined)
{
    BatchOptions options;
    options.maxQueries = 8;
    options.maxDelay = 200e-3; // generous window to coalesce even
                               // on a loaded machine
    BatchingExecutor executor(registry_, options);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(executor.submit(
            "tiny", 1,
            {static_cast<float>(i), 0, 0, 0}));
    }
    for (auto &f : futures)
        ASSERT_TRUE(f.get().status.isOk());
    EXPECT_EQ(executor.queriesServed(), 8u);
    // Coalescing must beat one-batch-per-query.
    EXPECT_LT(executor.batchesExecuted(), 8u);
}

TEST_F(BatcherTest, BatchedResultsMatchUnbatched)
{
    auto net = registry_.find("tiny");
    BatchOptions options;
    options.maxQueries = 4;
    options.maxDelay = 10e-3;
    BatchingExecutor executor(registry_, options);

    std::vector<std::vector<float>> inputs = {
        {1, 2, 3, 4}, {5, 6, 7, 8}, {-1, 0, 1, 2}};
    std::vector<std::future<InferenceResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(executor.submit("tiny", 1, in));

    for (size_t i = 0; i < inputs.size(); ++i) {
        InferenceResult result = futures[i].get();
        ASSERT_TRUE(result.status.isOk());
        nn::Tensor in(nn::Shape(1, 1, 2, 2));
        std::copy(inputs[i].begin(), inputs[i].end(), in.data());
        nn::Tensor expected = net->forward(in);
        ASSERT_EQ(result.output.size(), 3u);
        for (int64_t j = 0; j < 3; ++j)
            EXPECT_NEAR(result.output[j], expected[j], 1e-5);
    }
}

TEST_F(BatcherTest, MultiRowQueryKeepsRowOrder)
{
    auto net = registry_.find("tiny");
    BatchingExecutor executor(registry_, BatchOptions{});
    std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
    auto result = executor.submit("tiny", 2, data).get();
    ASSERT_TRUE(result.status.isOk());
    ASSERT_EQ(result.output.size(), 6u);

    nn::Tensor in(nn::Shape(2, 1, 2, 2));
    std::copy(data.begin(), data.end(), in.data());
    nn::Tensor expected = net->forward(in);
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_NEAR(result.output[i], expected[i], 1e-5);
}

TEST_F(BatcherTest, ManyThreadsStress)
{
    BatchOptions options;
    options.maxQueries = 16;
    options.maxDelay = 1e-3;
    BatchingExecutor executor(registry_, options);

    constexpr int threads = 8;
    constexpr int per_thread = 25;
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&executor, &failures]() {
            for (int i = 0; i < per_thread; ++i) {
                auto result = executor.submit(
                    "tiny", 1, {1, 1, 1, 1}).get();
                if (!result.status.isOk())
                    ++failures;
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(executor.queriesServed(),
              static_cast<uint64_t>(threads * per_thread));
}

TEST_F(BatcherTest, InvalidOptionsFatal)
{
    BatchOptions options;
    options.maxQueries = 0;
    EXPECT_THROW(BatchingExecutor(registry_, options), FatalError);
    options.maxQueries = 4;
    options.maxDelay = -1.0;
    EXPECT_THROW(BatchingExecutor(registry_, options), FatalError);
    options.maxDelay = 1e-3;
    options.maxQueueDepth = -1;
    EXPECT_THROW(BatchingExecutor(registry_, options), FatalError);
}

TEST_F(BatcherTest, QueueDepthCapDerivesFromBatchSize)
{
    BatchOptions options;
    options.maxQueries = 16;
    EXPECT_EQ(options.queueDepthCap(), 64);
    options.maxQueueDepth = 5;
    EXPECT_EQ(options.queueDepthCap(), 5);
}

TEST_F(BatcherTest, FullQueueShedsWithOverloaded)
{
    // Admission control: with dispatch stalled inside its
    // wait-for-peers window (giant maxDelay, giant batch size),
    // rapid submits keep the queue populated, so the D+1st..Nth
    // submits must be rejected immediately with Overloaded rather
    // than growing the queue without bound.
    BatchOptions options;
    options.maxQueries = 64;   // never fills a batch in this test
    options.maxDelay = 0.5;    // dispatcher waits for peers
    options.maxQueueDepth = 4; // cap D
    BatchingExecutor executor(registry_, options);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(executor.submit("tiny", 1, {1, 2, 3, 4}));

    int ok = 0, overloaded = 0;
    for (auto &f : futures) {
        InferenceResult result = f.get();
        if (result.status.isOk())
            ++ok;
        else if (result.status.code() == StatusCode::Overloaded)
            ++overloaded;
    }
    // The dispatcher may drain a query from the queue between two
    // submits, so a few extra admissions are possible; the bulk of
    // the burst must still shed.
    EXPECT_GE(overloaded, 4) << ok << " ok";
    EXPECT_GE(ok, 4);
    EXPECT_EQ(ok + overloaded, 12);
    EXPECT_EQ(executor.queueFullSheds(),
              static_cast<uint64_t>(overloaded));
}

TEST_F(BatcherTest, AdmissionCapTracksShrunkenBatchTarget)
{
    // The bug-1 regression: the derived queue cap (4 x batch) was
    // computed once from the static maxQueries. After the adaptive
    // scheduler shrinks the dispatch target, admission must
    // re-derive from the *current* target — with the stale cap
    // (4 x 16 = 64) none of the 40 submits below would shed.
    BatchOptions options;
    options.maxQueries = 16;
    options.maxDelay = 1.0; // dispatcher waits for peers
    BatchingExecutor executor(registry_, options);

    // Park the dispatcher so nothing drains while the burst lands.
    std::atomic<bool> open{false};
    executor.setDispatchGate(
        [&open](const std::string &) { return open.load(); });
    executor.setBatchTarget("tiny", 4); // live cap: 4 x 4 = 16

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 40; ++i)
        futures.push_back(executor.submit("tiny", 1, {1, 2, 3, 4}));
    EXPECT_EQ(executor.queueFullSheds(), 24u);

    open.store(true);
    int ok = 0, overloaded = 0;
    for (auto &f : futures) {
        InferenceResult result = f.get();
        if (result.status.isOk())
            ++ok;
        else if (result.status.code() == StatusCode::Overloaded)
            ++overloaded;
    }
    EXPECT_EQ(ok, 16);
    EXPECT_EQ(overloaded, 24);
}

TEST_F(BatcherTest, OccupancyReportsAgainstCurrentTarget)
{
    // The bug-2 regression: djinn_batch_occupancy divided by the
    // static tuned batch, so a full batch under a shrunken target
    // read 4/16 = 0.25 instead of 1.0.
    telemetry::MetricRegistry metrics;
    BatchOptions options;
    options.maxQueries = 16;
    options.maxDelay = 1.0;
    BatchingExecutor executor(registry_, options, &metrics);

    std::atomic<bool> open{false};
    executor.setDispatchGate(
        [&open](const std::string &) { return open.load(); });
    executor.setBatchTarget("tiny", 4);
    EXPECT_EQ(executor.batchTarget("tiny"), 4);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(executor.submit("tiny", 1, {1, 2, 3, 4}));
    open.store(true);
    for (auto &f : futures)
        ASSERT_TRUE(f.get().status.isOk());

    double occupancy = -1.0;
    for (const telemetry::MetricSample &s : metrics.snapshot()) {
        if (s.name == std::string("djinn_batch_occupancy"))
            occupancy = s.value;
    }
    EXPECT_DOUBLE_EQ(occupancy, 1.0);
}

TEST_F(BatcherTest, ExpiredDeadlineShedsBeforeForward)
{
    // A query whose deadline has already passed when its batch is
    // assembled must be shed with DeadlineExceeded, not computed.
    BatchOptions options;
    options.maxQueries = 4;
    options.maxDelay = 20e-3;
    BatchingExecutor executor(registry_, options);

    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(1);
    auto expired = executor.submit("tiny", 1, {1, 2, 3, 4}, past);
    InferenceResult result = expired.get();
    EXPECT_EQ(result.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(executor.deadlineSheds(), 1u);

    // A live query in the same queue still completes.
    auto live = executor.submit("tiny", 1, {1, 2, 3, 4});
    EXPECT_TRUE(live.get().status.isOk());
}

TEST_F(BatcherTest, FutureDeadlineDoesNotShed)
{
    BatchOptions options;
    options.maxQueries = 4;
    options.maxDelay = 1e-3;
    BatchingExecutor executor(registry_, options);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    auto result =
        executor.submit("tiny", 1, {1, 2, 3, 4}, deadline).get();
    EXPECT_TRUE(result.status.isOk());
    EXPECT_EQ(executor.deadlineSheds(), 0u);
}

} // namespace
} // namespace core
} // namespace djinn
