/**
 * @file
 * End-to-end cycle accounting tests against a real loopback
 * server: the per-phase work breakdown (decode / forward / encode,
 * plus queue_wait under batching) must sum to approximately the
 * whole request span in whichever unit the environment provides —
 * CPU cycles with a usable PMU, wall nanoseconds in the clock-only
 * fallback — with the `djinn_perf_counters_available` gauge naming
 * the unit. Also covers the saturation/SLO gauges the background
 * sampler refreshes and the /profile collapsed-stack route under
 * load.
 */

#include "core/djinn_server.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/djinn_client.hh"
#include "core/http_endpoint.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/profiler.hh"
#include "telemetry/slo.hh"
#include "telemetry/trace.hh"

namespace djinn {
namespace core {
namespace {

class CycleAccountingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Large enough that the forward pass carries real work;
        // small enough to keep the suite fast.
        auto net = nn::parseNetDefOrDie(
            "name bulk\ninput 1 8 8\nlayer fc fc out 256\n"
            "layer prob softmax\n");
        nn::initializeWeights(*net, 7);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config)
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    void
    runInferences(int count, int64_t rows)
    {
        DjinnClient client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server_->port()).isOk());
        std::vector<float> payload(
            static_cast<size_t>(rows) * 64, 0.25f);
        for (int i = 0; i < count; ++i)
            ASSERT_TRUE(client.infer("bulk", rows, payload).isOk());
    }

    /** (phase label -> histogram sum) for one metric family. */
    std::map<std::string, double>
    phaseSums(const char *family)
    {
        std::map<std::string, double> out;
        for (const auto &s : server_->metrics().snapshot()) {
            if (s.name == family && s.labels.count("phase") &&
                s.labels.at("phase") != "service") {
                out[s.labels.at("phase")] += s.histogram.sum;
            }
        }
        return out;
    }

    /** Gauge/counter value, or -1 when the family is absent. */
    double
    gaugeValue(const char *name)
    {
        for (const auto &s : server_->metrics().snapshot()) {
            if (s.name == name)
                return s.value;
        }
        return -1.0;
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

/**
 * The acceptance test: on the non-batched path every phase runs on
 * one worker thread, so decode + forward + encode work must cover
 * most of the request span and never exceed it (plus measurement
 * slop). Holds in both hardware and fallback mode.
 */
TEST_F(CycleAccountingTest, PhaseWorkSumsToRequestSpan)
{
    ServerConfig config;
    config.batching = false;
    config.samplerPeriod = 0;
    startServer(config);
    runInferences(25, 64);

    double available =
        gaugeValue(telemetry::perfAvailableMetricName);
    ASSERT_TRUE(available == 0.0 || available == 1.0);

    auto phases = phaseSums(telemetry::phaseCyclesMetricName);
    ASSERT_TRUE(phases.count("decode"));
    ASSERT_TRUE(phases.count("forward"));
    ASSERT_TRUE(phases.count("encode"));
    double phase_sum = 0.0;
    for (const auto &[phase, sum] : phases) {
        EXPECT_GT(sum, 0.0) << phase;
        phase_sum += sum;
    }

    double request_sum = 0.0;
    uint64_t request_count = 0;
    for (const auto &s : server_->metrics().snapshot()) {
        if (s.name == telemetry::requestCyclesMetricName) {
            request_sum += s.histogram.sum;
            request_count += s.histogram.count;
        }
    }
    EXPECT_EQ(request_count, 25u);
    ASSERT_GT(request_sum, 0.0);

    // The three instrumented phases account for ~100% of the
    // request span: the remainder (tensor staging, bookkeeping)
    // must stay small, and the sum can never meaningfully exceed
    // the span it decomposes.
    double share = phase_sum / request_sum;
    EXPECT_GE(share, 0.5) << "phases cover too little of the span";
    EXPECT_LE(share, 1.05) << "phases exceed the request span";

    if (available == 1.0) {
        // Hardware mode additionally exports IPC per phase.
        auto ipc = phaseSums(telemetry::phaseIpcMetricName);
        EXPECT_TRUE(ipc.count("forward"));
        EXPECT_GT(ipc["forward"], 0.0);
    }
}

TEST_F(CycleAccountingTest, BatchedModeAccountsAllFourPhases)
{
    ServerConfig config;
    config.batching = true;
    config.samplerPeriod = 0;
    startServer(config);
    runInferences(8, 16);

    // Worker threads account decode, queue_wait (the blocked span),
    // and encode; the dispatcher accounts forward per pass.
    auto phases = phaseSums(telemetry::phaseCyclesMetricName);
    EXPECT_TRUE(phases.count("decode"));
    EXPECT_TRUE(phases.count("queue_wait"));
    EXPECT_TRUE(phases.count("forward"));
    EXPECT_TRUE(phases.count("encode"));
    for (const auto &[phase, sum] : phases)
        EXPECT_GT(sum, 0.0) << phase;
}

TEST_F(CycleAccountingTest, SamplerExportsSaturationAndSloGauges)
{
    ServerConfig config;
    config.batching = true;
    config.samplerPeriod = 0.05;
    config.sloTargetSeconds = 0.250;
    startServer(config);
    runInferences(6, 16);
    // Let the background sampler run its update hook a few times.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    EXPECT_GE(gaugeValue("djinn_compute_pool_busy"), 0.0);
    EXPECT_GE(gaugeValue("djinn_batch_queue_depth_total"), 0.0);
    EXPECT_GE(gaugeValue(telemetry::perfAvailableMetricName), 0.0);

    double good = gaugeValue(telemetry::sloGoodMetricName);
    double bad = gaugeValue(telemetry::sloBadMetricName);
    EXPECT_EQ((good < 0 ? 0 : good) + (bad < 0 ? 0 : bad), 6.0);
    EXPECT_GE(gaugeValue(telemetry::sloBurnRateMetricName), 0.0);
    EXPECT_EQ(gaugeValue(telemetry::sloTargetMetricName), 0.250);

    // One batched pass ran, so the occupancy gauge is set and
    // bounded by 1.
    double occupancy = gaugeValue("djinn_batch_occupancy");
    EXPECT_GT(occupancy, 0.0);
    EXPECT_LE(occupancy, 1.0);
}

TEST_F(CycleAccountingTest, BatcherQueueDepthTotalDrainsToZero)
{
    telemetry::MetricRegistry metrics;
    BatchingExecutor executor(registry_, BatchOptions{}, &metrics);
    EXPECT_EQ(executor.queueDepthTotal(), 0);

    std::vector<float> payload(4 * 64, 0.5f);
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(executor.submit("bulk", 4, payload));
    for (auto &f : futures)
        EXPECT_TRUE(f.get().status.isOk());
    // Every accepted query was counted in and counted back out.
    EXPECT_EQ(executor.queueDepthTotal(), 0);
}

TEST_F(CycleAccountingTest, ProfileRouteServesCollapsedStacks)
{
    // Probe whether this environment can arm the profiling timer;
    // sandboxes without signal timers skip cleanly.
    Status probe = telemetry::Profiler::instance().start(97);
    if (!probe.isOk())
        GTEST_SKIP() << "profiling restricted: "
                     << probe.toString();
    telemetry::Profiler::instance().stop();

    telemetry::MetricRegistry metrics;
    telemetry::Tracer tracer;
    HttpEndpoint endpoint(metrics, tracer);

    std::string type, body;
    EXPECT_EQ(endpoint.handle("/profile?seconds=nope", type, body),
              400);
    EXPECT_EQ(endpoint.handle("/profile?seconds=0", type, body),
              400);
    EXPECT_EQ(endpoint.handle("/profile?seconds=61", type, body),
              400);

    // Drive real forward passes while the window samples, so the
    // collapsed stacks contain this library's frames.
    auto network = registry_.find("bulk");
    ASSERT_NE(network, nullptr);
    std::atomic<bool> stop{false};
    std::thread burner([&]() {
        nn::Tensor input(network->inputShape().withBatch(32));
        for (int64_t i = 0; i < input.elems(); ++i)
            input.data()[i] = 0.5f;
        while (!stop.load())
            network->forward(input);
    });
    int code = endpoint.handle("/profile?seconds=1", type, body);
    stop.store(true);
    burner.join();

    ASSERT_EQ(code, 200);
    ASSERT_FALSE(body.empty());

    // Every line is "frames... count"; at least one stack carries
    // a frame from this codebase (symbolized via ENABLE_EXPORTS).
    bool saw_djinn_frame = false;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
        if (line.find("djinn") != std::string::npos)
            saw_djinn_frame = true;
    }
    EXPECT_TRUE(saw_djinn_frame) << body;
}

TEST_F(CycleAccountingTest, MetricsVerbServesProfileFormat)
{
    ServerConfig config;
    config.samplerPeriod = 0;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server_->port()).isOk());

    auto collapsed = client.metricsExposition("profile:1");
    if (!collapsed.isOk()) {
        GTEST_SKIP() << "profiling restricted: "
                     << collapsed.status().toString();
    }
    // An idle server may legitimately sample nothing (the CPU-time
    // timer never fires); the format contract still holds per line.
    std::istringstream lines(collapsed.value());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    }

    // Unknown formats still answer BadRequest.
    EXPECT_FALSE(client.metricsExposition("flamegraph").isOk());
}

} // namespace
} // namespace core
} // namespace djinn
