/**
 * @file
 * Property tests on the wire protocol: random payloads round-trip
 * bit-exactly, and arbitrary truncations or corruptions never
 * crash the decoder - they fail cleanly with ProtocolError or
 * decode deterministically.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "core/protocol.hh"

namespace djinn {
namespace core {
namespace {

Request
randomRequest(Rng &rng)
{
    Request request;
    request.type = RequestType::Inference;
    int64_t name_len = rng.uniformInt(0, 64);
    for (int64_t i = 0; i < name_len; ++i) {
        request.model.push_back(
            static_cast<char>(rng.uniformInt(32, 126)));
    }
    request.rows = static_cast<uint32_t>(rng.uniformInt(1, 64));
    int64_t count = rng.uniformInt(0, 4096);
    request.payload.resize(static_cast<size_t>(count));
    for (auto &v : request.payload)
        v = static_cast<float>(rng.gaussian(0, 100.0));
    return request;
}

class ProtocolRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(ProtocolRoundTrip, RandomRequestsRoundTripExactly)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
    for (int i = 0; i < 50; ++i) {
        Request request = randomRequest(rng);
        auto decoded = decodeRequest(encodeRequest(request));
        ASSERT_TRUE(decoded.isOk());
        const Request &r = decoded.value();
        ASSERT_EQ(r.model, request.model);
        ASSERT_EQ(r.rows, request.rows);
        ASSERT_EQ(r.payload.size(), request.payload.size());
        for (size_t j = 0; j < r.payload.size(); ++j) {
            // Bit-exact: NaNs and infinities included.
            ASSERT_EQ(std::memcmp(&r.payload[j],
                                  &request.payload[j],
                                  sizeof(float)), 0);
        }
    }
}

TEST_P(ProtocolRoundTrip, RandomResponsesRoundTripExactly)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7907);
    for (int i = 0; i < 50; ++i) {
        Response response;
        response.status = static_cast<WireStatus>(
            rng.uniformInt(0, 3));
        int64_t msg_len = rng.uniformInt(0, 128);
        for (int64_t j = 0; j < msg_len; ++j) {
            response.message.push_back(
                static_cast<char>(rng.uniformInt(32, 126)));
        }
        int64_t count = rng.uniformInt(0, 2048);
        response.payload.resize(static_cast<size_t>(count));
        for (auto &v : response.payload)
            v = static_cast<float>(rng.gaussian(0, 10.0));

        auto decoded = decodeResponse(encodeResponse(response));
        ASSERT_TRUE(decoded.isOk());
        ASSERT_EQ(decoded.value().status, response.status);
        ASSERT_EQ(decoded.value().message, response.message);
        ASSERT_EQ(decoded.value().payload, response.payload);
    }
}

TEST_P(ProtocolRoundTrip, TruncationsFailCleanly)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
    Request request = randomRequest(rng);
    auto bytes = encodeRequest(request);
    for (int i = 0; i < 60; ++i) {
        size_t cut = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(bytes.size()) - 1));
        std::vector<uint8_t> partial(bytes.begin(),
                                     bytes.begin() + cut);
        auto decoded = decodeRequest(partial);
        ASSERT_FALSE(decoded.isOk()) << "cut=" << cut;
        ASSERT_EQ(decoded.status().code(),
                  StatusCode::ProtocolError);
    }
}

TEST_P(ProtocolRoundTrip, SingleByteCorruptionNeverCrashes)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 65537);
    Request request = randomRequest(rng);
    auto bytes = encodeRequest(request);
    for (int i = 0; i < 100; ++i) {
        auto copy = bytes;
        size_t pos = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(copy.size()) - 1));
        copy[pos] ^= static_cast<uint8_t>(rng.uniformInt(1, 255));
        // Must not crash; may succeed (payload bytes) or fail with
        // a protocol error.
        auto decoded = decodeRequest(copy);
        if (!decoded.isOk()) {
            ASSERT_EQ(decoded.status().code(),
                      StatusCode::ProtocolError);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRoundTrip,
                         ::testing::Values(1, 2, 3));

} // namespace
} // namespace core
} // namespace djinn
