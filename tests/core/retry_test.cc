/**
 * @file
 * Retry-policy unit tests: backoff bounds, jitter determinism
 * under a seeded generator, and the never-retry-ambiguous
 * classification rule.
 */

#include "core/retry.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace djinn {
namespace core {
namespace {

TEST(RetryBackoff, GrowsExponentiallyWithoutJitter)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.010;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffSeconds = 1.0;
    policy.jitterFraction = 0.0;
    Rng rng(1);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 0, rng), 0.010);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 1, rng), 0.020);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 2, rng), 0.040);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 3, rng), 0.080);
}

TEST(RetryBackoff, CapsAtMaxBackoff)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.010;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffSeconds = 0.100;
    policy.jitterFraction = 0.0;
    Rng rng(1);
    // 0.010 * 2^10 = 10.24s, far past the cap.
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 10, rng), 0.100);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, 50, rng), 0.100);
}

TEST(RetryBackoff, JitterStaysWithinBounds)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.010;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffSeconds = 1.0;
    policy.jitterFraction = 0.5;
    Rng rng(7);
    for (int attempt = 0; attempt < 16; ++attempt) {
        double base = std::min(
            policy.initialBackoffSeconds *
                std::pow(policy.backoffMultiplier, attempt),
            policy.maxBackoffSeconds);
        for (int i = 0; i < 32; ++i) {
            double b = retryBackoffSeconds(policy, attempt, rng);
            EXPECT_LE(b, base) << "attempt " << attempt;
            EXPECT_GE(b, base * 0.5) << "attempt " << attempt;
        }
    }
}

TEST(RetryBackoff, JitterDeterministicUnderSeed)
{
    RetryPolicy policy;
    Rng a(42), b(42);
    for (int attempt = 0; attempt < 8; ++attempt) {
        EXPECT_DOUBLE_EQ(retryBackoffSeconds(policy, attempt, a),
                         retryBackoffSeconds(policy, attempt, b));
    }
    // A different seed produces a different jitter stream.
    Rng c(43);
    std::vector<double> from_a, from_c;
    Rng a2(42);
    for (int attempt = 0; attempt < 8; ++attempt) {
        from_a.push_back(retryBackoffSeconds(policy, attempt, a2));
        from_c.push_back(retryBackoffSeconds(policy, attempt, c));
    }
    EXPECT_NE(from_a, from_c);
}

TEST(RetryClassification, OverloadedAlwaysRetryable)
{
    Status s = Status::overloaded("queue full");
    EXPECT_TRUE(retryableFailure(s, FailureStage::Connect));
    EXPECT_TRUE(retryableFailure(s, FailureStage::Send));
    EXPECT_TRUE(retryableFailure(s, FailureStage::Receive));
}

TEST(RetryClassification, TransientConnectAndSendRetryable)
{
    EXPECT_TRUE(retryableFailure(Status::ioError("refused"),
                                 FailureStage::Connect));
    EXPECT_TRUE(retryableFailure(
        Status::deadlineExceeded("connect timed out"),
        FailureStage::Connect));
    EXPECT_TRUE(retryableFailure(Status::ioError("broken pipe"),
                                 FailureStage::Send));
    EXPECT_TRUE(retryableFailure(
        Status::unavailable("not connected"),
        FailureStage::Connect));
}

TEST(RetryClassification, MidStreamFailureNeverRetried)
{
    // The request was fully sent; the server may have executed it.
    EXPECT_FALSE(retryableFailure(Status::ioError("reset"),
                                  FailureStage::Receive));
    EXPECT_FALSE(retryableFailure(
        Status::deadlineExceeded("frame read timed out"),
        FailureStage::Receive));
    EXPECT_FALSE(retryableFailure(
        Status::protocolError("truncated frame"),
        FailureStage::Receive));
}

TEST(RetryClassification, PermanentFailuresNeverRetried)
{
    EXPECT_FALSE(retryableFailure(Status::invalidArgument("bad"),
                                  FailureStage::Send));
    EXPECT_FALSE(retryableFailure(Status::protocolError("bad"),
                                  FailureStage::Send));
    EXPECT_FALSE(retryableFailure(Status::notFound("no model"),
                                  FailureStage::Receive));
    EXPECT_FALSE(retryableFailure(Status::ok(),
                                  FailureStage::Receive));
}

} // namespace
} // namespace core
} // namespace djinn
