/**
 * @file
 * End-to-end tracing tests: a traced request through a real
 * loopback server must produce one linked span tree — client
 * round-trip, server phases, queue wait, batched forward, and
 * per-layer compute — sharing a single trace id, exported as
 * Chrome trace-event JSON. Also covers the HTTP scrape endpoint
 * and tracing-disabled compatibility.
 */

#include "core/djinn_server.hh"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/djinn_client.hh"
#include "core/http_endpoint.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/exposition.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {
namespace {

class TracingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 2 2\nlayer fc fc out 3\n"
            "layer prob softmax\n");
        nn::initializeWeights(*net, 5);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config = ServerConfig{})
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    Status
    connect(DjinnClient &client)
    {
        return client.connect("127.0.0.1", server_->port());
    }

    /** All buffered span events belonging to @p trace_id. */
    std::vector<telemetry::TraceEvent>
    spansOf(uint64_t trace_id)
    {
        std::vector<telemetry::TraceEvent> out;
        for (auto &e : server_->tracer().events()) {
            if (!e.counter && e.traceId == trace_id)
                out.push_back(std::move(e));
        }
        return out;
    }

    static const telemetry::TraceEvent *
    findSpan(const std::vector<telemetry::TraceEvent> &spans,
             const std::string &name)
    {
        for (const auto &e : spans) {
            if (e.name == name)
                return &e;
        }
        return nullptr;
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

/**
 * The acceptance test: one traced request end to end. Client,
 * server-phase, and per-layer spans all share the trace id the
 * client minted, and the Chrome JSON carries it.
 */
TEST_F(TracingTest, SingleRequestProducesLinkedSpanTree)
{
    ServerConfig config;
    config.batching = true;
    config.samplerPeriod = 0; // keep the ring deterministic
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setTracing(true);
    // Share the server's tracer so the client span lands on the
    // same timeline (in-process shorthand for merged traces).
    client.setTracer(&server_->tracer());

    std::vector<float> payload(4, 0.5f);
    auto result = client.infer("tiny", 1, payload);
    ASSERT_TRUE(result.isOk());

    uint64_t trace_id = client.lastTrace().traceId;
    ASSERT_NE(trace_id, 0u);

    auto spans = spansOf(trace_id);
    const auto *client_span = findSpan(spans, "infer tiny");
    const auto *request = findSpan(spans, "request tiny");
    const auto *decode = findSpan(spans, "decode");
    const auto *encode = findSpan(spans, "encode");
    const auto *queue = findSpan(spans, "queue_wait");
    const auto *forward = findSpan(spans, "forward");
    const auto *fc = findSpan(spans, "fc");
    const auto *prob = findSpan(spans, "prob");
    ASSERT_NE(client_span, nullptr);
    ASSERT_NE(request, nullptr);
    ASSERT_NE(decode, nullptr);
    ASSERT_NE(encode, nullptr);
    ASSERT_NE(queue, nullptr);
    ASSERT_NE(forward, nullptr);
    ASSERT_NE(fc, nullptr);
    ASSERT_NE(prob, nullptr);

    // The tree links: client span is the root, the server request
    // span is its child, phases and layers hang below.
    EXPECT_EQ(client_span->spanId, client.lastTrace().spanId);
    EXPECT_EQ(client_span->parentSpanId, 0u);
    EXPECT_EQ(request->parentSpanId, client_span->spanId);
    EXPECT_EQ(decode->parentSpanId, request->spanId);
    EXPECT_EQ(encode->parentSpanId, request->spanId);
    EXPECT_EQ(queue->parentSpanId, request->spanId);
    EXPECT_EQ(fc->parentSpanId, forward->spanId);
    EXPECT_EQ(prob->parentSpanId, forward->spanId);

    // Layer spans carry the profiler's FLOP counts.
    // tiny fc: 2 * 4 * 3 = 24 flops for one row.
    bool saw_flops = false;
    for (const auto &[key, value] : fc->args) {
        if (key == "flops") {
            EXPECT_EQ(value, "24");
            saw_flops = true;
        }
    }
    EXPECT_TRUE(saw_flops);

    // The exported JSON carries the shared trace id on every span.
    std::string json =
        telemetry::renderChromeTrace(server_->tracer().events());
    std::string hex = telemetry::traceIdToHex(trace_id);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find(hex), std::string::npos);
    EXPECT_NE(json.find("\"infer tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"request tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"fc\""), std::string::npos);

    // The request summary correlates the trace id with the batch.
    auto requests = server_->tracer().recentRequests();
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].traceId, trace_id);
    EXPECT_EQ(requests[0].model, "tiny");
    EXPECT_EQ(requests[0].rows, 1);
    EXPECT_GE(requests[0].batchRows, 1);
}

TEST_F(TracingTest, NonBatchingServerAlsoEmitsLayerSpans)
{
    ServerConfig config;
    config.batching = false;
    config.samplerPeriod = 0;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setTracing(true);
    std::vector<float> payload(4, 0.5f);
    ASSERT_TRUE(client.infer("tiny", 1, payload).isOk());

    auto spans = spansOf(client.lastTrace().traceId);
    const auto *request = findSpan(spans, "request tiny");
    const auto *forward = findSpan(spans, "forward");
    const auto *fc = findSpan(spans, "fc");
    ASSERT_NE(request, nullptr);
    ASSERT_NE(forward, nullptr);
    ASSERT_NE(fc, nullptr);
    EXPECT_EQ(forward->parentSpanId, request->spanId);
    EXPECT_EQ(fc->parentSpanId, forward->spanId);
}

TEST_F(TracingTest, UntracedClientLeavesRingQuiet)
{
    ServerConfig config;
    config.batching = true;
    config.samplerPeriod = 0;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    std::vector<float> payload(4, 0.5f);
    ASSERT_TRUE(client.infer("tiny", 1, payload).isOk());

    // No wire trace context -> no spans, but the request summary
    // (trace id 0) is still recorded.
    for (const auto &e : server_->tracer().events())
        EXPECT_TRUE(e.counter) << e.name;
    auto requests = server_->tracer().recentRequests();
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].traceId, 0u);
}

TEST_F(TracingTest, TracingDisabledServerStillServesTracedClients)
{
    ServerConfig config;
    config.tracing = false;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setTracing(true);
    std::vector<float> payload(4, 0.5f);
    auto result = client.infer("tiny", 1, payload);
    ASSERT_TRUE(result.isOk());
    EXPECT_NE(client.lastTrace().traceId, 0u);
    EXPECT_TRUE(server_->tracer().events().empty());
    EXPECT_TRUE(server_->tracer().recentRequests().empty());
}

TEST_F(TracingTest, TraceAndRequestsExpositionFormats)
{
    ServerConfig config;
    config.batching = true;
    config.samplerPeriod = 0;
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    client.setTracing(true);
    std::vector<float> payload(4, 0.5f);
    ASSERT_TRUE(client.infer("tiny", 1, payload).isOk());

    auto trace = client.traceJson();
    ASSERT_TRUE(trace.isOk());
    EXPECT_NE(trace.value().find("\"traceEvents\""),
              std::string::npos);

    auto csv = client.requestsCsv();
    ASSERT_TRUE(csv.isOk());
    EXPECT_NE(csv.value().find(
                  "trace_id,model,rows,batch_rows,service_ms"),
              std::string::npos);
    EXPECT_NE(csv.value().find(telemetry::traceIdToHex(
                  client.lastTrace().traceId)),
              std::string::npos);
}

TEST_F(TracingTest, ServerStartsEmbeddedHttpEndpoint)
{
    ServerConfig config;
    config.httpPort = 0; // ephemeral
    startServer(config);
    EXPECT_GT(server_->httpPort(), 0);
    server_->stop();
    EXPECT_EQ(server_->httpPort(), 0);
}

TEST(HttpEndpointTest, HandleRoutes)
{
    telemetry::MetricRegistry metrics;
    metrics.counter("djinn_requests_total",
                    {{"model", "tiny"}}).inc();
    telemetry::Tracer tracer;
    tracer.record({"decode", "phase", "worker-1", 1, 2, 0, 10, 5,
                   false, 0.0, {}});
    HttpEndpoint endpoint(metrics, tracer);

    std::string type, body;
    EXPECT_EQ(endpoint.handle("/healthz", type, body), 200);
    EXPECT_EQ(body, "ok\n");

    EXPECT_EQ(endpoint.handle("/metrics", type, body), 200);
    EXPECT_NE(type.find("text/plain"), std::string::npos);
    auto parsed = telemetry::parseExposition(body);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_FALSE(parsed.value().empty());

    EXPECT_EQ(endpoint.handle("/trace", type, body), 200);
    EXPECT_EQ(type, "application/json");
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(body.find("\"decode\""), std::string::npos);

    EXPECT_EQ(endpoint.handle("/trace?last=1", type, body), 200);
    EXPECT_EQ(endpoint.handle("/trace?last=nope", type, body), 400);
    EXPECT_EQ(endpoint.handle("/nope", type, body), 404);
}

TEST(HttpEndpointTest, StartStopOnEphemeralPort)
{
    telemetry::MetricRegistry metrics;
    telemetry::Tracer tracer;
    HttpEndpoint endpoint(metrics, tracer);
    ASSERT_TRUE(endpoint.start("127.0.0.1", 0).isOk());
    EXPECT_GT(endpoint.port(), 0);
    EXPECT_TRUE(endpoint.running());
    endpoint.stop();
    EXPECT_FALSE(endpoint.running());
}

} // namespace
} // namespace core
} // namespace djinn
