/**
 * @file
 * End-to-end tests of the continuous observability plane: the live
 * server's time-series store feeding the `top` dashboard and
 * `series:` wire verbs, the structured JSON `/healthz` and
 * `/debug/timeseries` HTTP routes with their JSON error contract,
 * and the sampler-tick-vs-stop() race the TSan stage hammers.
 */

#include "core/djinn_server.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/djinn_client.hh"
#include "core/http_endpoint.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/health.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {
namespace {

class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 4 4\nlayer fc fc out 8\n");
        nn::initializeWeights(*net, 3);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config)
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

TEST_F(ObservabilityTest, TopSeriesAndHealthOverWire)
{
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 4;
    config.batchOptions.maxDelay = 100e-6;
    config.samplerPeriod = 0.01; // fast ticks for the test
    startServer(config);

    DjinnClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server_->port()).isOk());
    std::vector<float> payload(16, 0.5f);
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(client.infer("tiny", 1, payload).isOk());

    // Wait until the sampler has recorded the request history
    // (the store adopts metrics on its first tick after they
    // register).
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::seconds(10);
    for (;;) {
        const telemetry::TimeSeriesStore *store =
            server_->timeSeries();
        ASSERT_NE(store, nullptr);
        if (store->sampleCount() >= 3
            && !store->trackIds("djinn_requests_total").empty())
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "sampler never populated the store";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }

    // The live dashboard names the model and its column header.
    auto top = client.metricsExposition("top");
    ASSERT_TRUE(top.isOk());
    EXPECT_NE(top.value().find("djinn top"), std::string::npos)
        << top.value();
    EXPECT_NE(top.value().find("tiny"), std::string::npos)
        << top.value();
    EXPECT_NE(top.value().find("QPS"), std::string::npos);

    // Windowed variant parses its suffix.
    auto top5 = client.metricsExposition("top:5");
    ASSERT_TRUE(top5.isOk());
    EXPECT_NE(top5.value().find("window 5s"), std::string::npos)
        << top5.value();

    // Per-model series of the request counter.
    auto series =
        client.metricsExposition("series:djinn_requests_total");
    ASSERT_TRUE(series.isOk());
    EXPECT_NE(series.value().find(
                  "\"metric\": \"djinn_requests_total\""),
              std::string::npos)
        << series.value();
    EXPECT_NE(series.value().find("\"points\": ["),
              std::string::npos);

    // Structured health verdict with uptime.
    auto health = client.metricsExposition("health");
    ASSERT_TRUE(health.isOk());
    EXPECT_NE(health.value().find("\"status\": \"ok\""),
              std::string::npos)
        << health.value();
    EXPECT_NE(health.value().find("\"uptime_seconds\""),
              std::string::npos);

    // A bad series spec is a BadRequest, not a crash.
    auto bad = client.metricsExposition("series:");
    EXPECT_FALSE(bad.isOk());

    server_->stop();
}

TEST_F(ObservabilityTest, VerbsFailCleanlyWithoutStore)
{
    ServerConfig config;
    config.tracing = false; // disables sampler, store, monitor
    startServer(config);
    EXPECT_EQ(server_->timeSeries(), nullptr);
    EXPECT_EQ(server_->health(), nullptr);

    DjinnClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server_->port()).isOk());
    EXPECT_FALSE(client.metricsExposition("top").isOk());
    EXPECT_FALSE(client.metricsExposition("health").isOk());
    EXPECT_FALSE(
        client.metricsExposition("series:djinn_requests_total")
            .isOk());
    // The plain exposition still works.
    EXPECT_TRUE(client.metricsExposition().isOk());
    server_->stop();
}

TEST(ObservabilityHttp, TimeseriesRouteAndJsonErrors)
{
    telemetry::MetricRegistry metrics;
    telemetry::Tracer tracer(256);
    telemetry::Counter &requests =
        metrics.counter("djinn_requests_total", {{"model", "m"}});
    telemetry::TimeSeriesStore store(metrics);
    for (int t = 0; t <= 10; ++t) {
        requests.inc(5);
        store.sample(static_cast<double>(t));
    }

    HttpEndpoint endpoint(metrics, tracer);
    std::string type, body;

    // Without a store the route reports 503 with a JSON error.
    EXPECT_EQ(endpoint.handle(
                  "/debug/timeseries?metric=djinn_requests_total",
                  type, body),
              503);
    EXPECT_NE(body.find("\"error\""), std::string::npos);

    endpoint.setTimeSeriesStore(&store);
    EXPECT_EQ(endpoint.handle(
                  "/debug/timeseries?metric=djinn_requests_total"
                  "&window=60",
                  type, body),
              200);
    EXPECT_EQ(type, "application/json");
    EXPECT_NE(body.find("\"series\""), std::string::npos);
    EXPECT_NE(body.find("\"model\": \"m\""), std::string::npos);

    // Missing metric parameter.
    EXPECT_EQ(endpoint.handle("/debug/timeseries", type, body),
              400);
    EXPECT_NE(body.find("\"error\""), std::string::npos);
    EXPECT_NE(body.find("\"status\": 400"), std::string::npos);

    // Out-of-range window and step are bounds-checked.
    EXPECT_EQ(endpoint.handle(
                  "/debug/timeseries?metric=djinn_requests_total"
                  "&window=999999999",
                  type, body),
              400);
    EXPECT_EQ(endpoint.handle(
                  "/debug/timeseries?metric=djinn_requests_total"
                  "&window=60&step=-1",
                  type, body),
              400);

    // Unknown metric.
    EXPECT_EQ(endpoint.handle(
                  "/debug/timeseries?metric=no_such_metric", type,
                  body),
              404);
    EXPECT_NE(body.find("\"error\""), std::string::npos);

    // The JSON error contract also covers the older routes.
    EXPECT_EQ(endpoint.handle("/trace?last=bogus", type, body),
              400);
    EXPECT_NE(body.find("\"error\""), std::string::npos);
    EXPECT_EQ(endpoint.handle("/nope", type, body), 404);
    EXPECT_NE(body.find("\"error\""), std::string::npos);
}

TEST(ObservabilityHttp, HealthzPlainAndStructured)
{
    telemetry::MetricRegistry metrics;
    telemetry::Tracer tracer(256);
    HttpEndpoint endpoint(metrics, tracer);
    std::string type, body;

    // Without a monitor the legacy plain liveness reply stands.
    EXPECT_EQ(endpoint.handle("/healthz", type, body), 200);
    EXPECT_EQ(body, "ok\n");

    // With a monitor the verdict is structured JSON.
    telemetry::TimeSeriesStore store(metrics);
    double now = 0.0;
    telemetry::HealthMonitor monitor(
        store, metrics, telemetry::HealthOptions{},
        [&now] { return now; });
    metrics.counter("djinn_requests_total").inc();
    for (int t = 0; t <= 5; ++t) {
        now = static_cast<double>(t);
        store.sample(now);
    }
    endpoint.setHealthMonitor(&monitor);
    endpoint.setStartTime(0.0);
    EXPECT_EQ(endpoint.handle("/healthz", type, body), 200);
    EXPECT_EQ(type, "application/json");
    EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos)
        << body;
    EXPECT_NE(body.find("\"uptime_seconds\""), std::string::npos);

    // Degraded (stale sampler) still answers 200: degraded means
    // "serving with issues", not "kill the backend".
    now = 1000.0;
    EXPECT_EQ(endpoint.handle("/healthz", type, body), 200);
    EXPECT_NE(body.find("\"status\": \"degraded\""),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("\"rule\": \"stale\""), std::string::npos);

    // Unhealthy answers 503 so load balancers eject the backend.
    telemetry::Gauge &depth =
        metrics.gauge("djinn_batch_queue_depth_total");
    telemetry::Counter &batches =
        metrics.counter("djinn_batches_total");
    batches.inc();
    for (int t = 1000; t <= 1040; ++t) {
        depth.set(5.0);
        now = static_cast<double>(t);
        store.sample(now);
    }
    EXPECT_EQ(endpoint.handle("/healthz", type, body), 503);
    EXPECT_NE(body.find("\"status\": \"unhealthy\""),
              std::string::npos)
        << body;
}

TEST_F(ObservabilityTest, SamplerTickVsStopRace)
{
    // The sampler hook samples the store and ticks the monitor;
    // stop() flags draining and tears the sampler down. Cycle the
    // pair rapidly — TSan runs this suite to prove the shutdown
    // ordering is clean.
    for (int round = 0; round < 20; ++round) {
        ServerConfig config;
        config.batching = true;
        config.batchOptions.maxQueries = 2;
        config.batchOptions.maxDelay = 50e-6;
        config.samplerPeriod = 0.0005;
        DjinnServer server(registry_, config);
        ASSERT_TRUE(server.start().isOk());
        DjinnClient client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server.port()).isOk());
        std::vector<float> payload(16, 0.5f);
        (void)client.infer("tiny", 1, payload);
        server.stop();
        // After stop the last verdict is a drain: never unhealthy.
        const telemetry::HealthMonitor *health = server.health();
        ASSERT_NE(health, nullptr);
        EXPECT_NE(health->lastVerdict().level,
                  telemetry::HealthLevel::Unhealthy);
    }
}

} // namespace
} // namespace core
} // namespace djinn
