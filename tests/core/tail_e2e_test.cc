/**
 * @file
 * End-to-end tail attribution: a real loopback server with an
 * injected straggler fault must finger the faulty phase through
 * the flight recorder, the /debug/tail endpoint, and the tail
 * Metrics verb; and every populated djinn_request_seconds bucket
 * must resolve through its exemplar to a retained flight record.
 */

#include "core/djinn_server.hh"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/djinn_client.hh"
#include "core/http_endpoint.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/attribution.hh"
#include "telemetry/exposition.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {
namespace {

class TailE2eTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 2 2\nlayer fc fc out 3\n"
            "layer prob softmax\n");
        nn::initializeWeights(*net, 5);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config = ServerConfig{})
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    Status
    connect(DjinnClient &client)
    {
        return client.connect("127.0.0.1", server_->port());
    }

    /** Drive n requests of the given row count through one client. */
    void
    drive(DjinnClient &client, int n, int64_t rows)
    {
        std::vector<float> input(size_t(rows) * 4, 0.5f);
        for (int i = 0; i < n; ++i)
            ASSERT_TRUE(client.infer("tiny", rows, input).isOk());
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

TEST_F(TailE2eTest, SlowReadStragglerDominatesTheTail)
{
    // slow-read stretches the socket read of every request in
    // proportion to its byte count (2ms per byte), so the large
    // requests become the tail and their excess is read time. The
    // attribution engine must say "read", end to end.
    ServerConfig config;
    config.faultSpec = "slow-read";
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    drive(client, 12, 1);  // baseline cohort: ~40 wire bytes
    drive(client, 4, 16);  // tail cohort: ~10x the bytes to read

    std::vector<telemetry::FlightRecord> records =
        server_->flightRecorder().snapshot();
    ASSERT_GE(records.size(), 16u);
    telemetry::TailReport report =
        telemetry::attributeTail(records, 80.0);
    EXPECT_EQ(report.records, 16u);
    EXPECT_EQ(report.dominant, "read");
    ASSERT_FALSE(report.contributors.empty());
    EXPECT_EQ(report.contributors[0].phase, "read");
    EXPECT_GT(report.contributors[0].share, 0.5);

    // The same verdict over HTTP: /debug/tail on an endpoint wired
    // to this server's recorder and registry.
    telemetry::Tracer tracer;
    HttpEndpoint endpoint(server_->metrics(), tracer);
    endpoint.setFlightRecorder(&server_->flightRecorder());
    std::string type, body;
    ASSERT_EQ(endpoint.handle("/debug/tail?pct=80", type, body),
              200);
    EXPECT_EQ(type, "application/json");
    EXPECT_NE(body.find("\"fleet\""), std::string::npos);
    EXPECT_NE(body.find("\"models\""), std::string::npos);
    EXPECT_NE(body.find("\"dominant\": \"read\""),
              std::string::npos);

    // And over the wire protocol: the tail Metrics verb.
    auto text = client.metricsExposition("tail:80");
    ASSERT_TRUE(text.isOk()) << text.status().toString();
    EXPECT_NE(text.value().find("tail attribution"),
              std::string::npos);
    EXPECT_NE(text.value().find("dominant contributor: read"),
              std::string::npos);
}

TEST_F(TailE2eTest, EveryPopulatedBucketResolvesViaExemplar)
{
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 4;
    config.batchOptions.maxDelay = 200e-6;
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    drive(client, 20, 1);
    drive(client, 5, 4);

    size_t histograms = 0;
    size_t populated = 0;
    for (const telemetry::MetricSample &sample :
         server_->metrics().snapshot()) {
        if (sample.name != "djinn_request_seconds")
            continue;
        ++histograms;
        const telemetry::HistogramSnapshot &h = sample.histogram;
        ASSERT_EQ(h.exemplars.size(), h.buckets.size());
        for (size_t i = 0; i < h.buckets.size(); ++i) {
            if (h.buckets[i] == 0)
                continue;
            ++populated;
            ASSERT_TRUE(h.exemplars[i].valid)
                << "populated bucket " << i << " lacks exemplar";
            telemetry::FlightRecord record;
            ASSERT_TRUE(server_->flightRecorder().find(
                h.exemplars[i].ref, record))
                << "exemplar ref " << h.exemplars[i].ref
                << " does not resolve to a flight record";
            EXPECT_EQ(record.traceId, h.exemplars[i].traceId);
            EXPECT_DOUBLE_EQ(record.totalSeconds,
                             h.exemplars[i].value);
        }
    }
    EXPECT_GE(histograms, 1u);
    EXPECT_GE(populated, 1u);
}

TEST_F(TailE2eTest, BatchingRecordsAdmitDepthAndBatchContext)
{
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 8;
    config.batchOptions.maxDelay = 2e-3;
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    drive(client, 10, 2);

    bool saw_ok = false;
    for (const telemetry::FlightRecord &record :
         server_->flightRecorder().snapshot()) {
        if (record.outcome != telemetry::FlightOutcome::Ok)
            continue;
        saw_ok = true;
        EXPECT_GE(record.admitQueueDepth, 0);
        EXPECT_GE(record.batchQueries, 1);
        EXPECT_GE(record.batchRows, 2);
        EXPECT_LT(record.batchPosition, record.batchQueries);
        EXPECT_EQ(std::string(record.modelName()), "tiny");
        EXPECT_GT(record.totalSeconds, 0.0);
    }
    EXPECT_TRUE(saw_ok);
}

TEST_F(TailE2eTest, DebugFlightLookupByRecordAndTraceId)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    drive(client, 3, 1);

    std::vector<telemetry::FlightRecord> records =
        server_->flightRecorder().snapshot();
    ASSERT_FALSE(records.empty());
    const telemetry::FlightRecord &sample = records.back();

    telemetry::Tracer tracer;
    HttpEndpoint endpoint(server_->metrics(), tracer);
    endpoint.setFlightRecorder(&server_->flightRecorder());
    std::string type, body;

    std::string by_ref =
        "/debug/flight?record=" + std::to_string(sample.seq);
    ASSERT_EQ(endpoint.handle(by_ref, type, body), 200);
    EXPECT_EQ(type, "application/json");
    EXPECT_NE(body.find("\"total_seconds\""), std::string::npos);
    EXPECT_NE(body.find("\"model\": \"tiny\""), std::string::npos);

    EXPECT_EQ(endpoint.handle("/debug/flight?record=999999",
                              type, body),
              404);
    EXPECT_EQ(endpoint.handle("/debug/flight?record=junk",
                              type, body),
              400);
    EXPECT_EQ(endpoint.handle("/debug/flight", type, body), 400);
}

} // namespace
} // namespace core
} // namespace djinn
