#include "core/model_registry.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/serialize.hh"

namespace djinn {
namespace core {
namespace {

nn::NetworkPtr
tinyNet(const std::string &name)
{
    auto net = nn::parseNetDefOrDie(
        "name " + name + "\ninput 1 4 4\nlayer fc fc out 3\n");
    nn::initializeWeights(*net, 7);
    return net;
}

TEST(ModelRegistry, AddAndFind)
{
    ModelRegistry registry;
    ASSERT_TRUE(registry.add(tinyNet("a")).isOk());
    EXPECT_EQ(registry.size(), 1u);
    auto found = registry.find("a");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "a");
    EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(ModelRegistry, RejectsDuplicates)
{
    ModelRegistry registry;
    ASSERT_TRUE(registry.add(tinyNet("a")).isOk());
    Status s = registry.add(tinyNet("a"));
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
}

TEST(ModelRegistry, RejectsNull)
{
    ModelRegistry registry;
    EXPECT_FALSE(registry.add(nullptr).isOk());
}

TEST(ModelRegistry, RejectsUnfinalized)
{
    auto net = std::make_shared<nn::Network>("raw",
                                             nn::Shape(1, 4));
    ModelRegistry registry;
    EXPECT_FALSE(registry.add(net).isOk());
}

TEST(ModelRegistry, ModelNamesSorted)
{
    ModelRegistry registry;
    ASSERT_TRUE(registry.add(tinyNet("zeta")).isOk());
    ASSERT_TRUE(registry.add(tinyNet("alpha")).isOk());
    auto names = registry.modelNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(ModelRegistry, AddZooModel)
{
    ModelRegistry registry;
    ASSERT_TRUE(registry.addZooModel(nn::zoo::Model::Mnist).isOk());
    auto net = registry.find("mnist");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->inputShape(), nn::Shape(1, 1, 28, 28));
}

TEST(ModelRegistry, TotalWeightBytesSums)
{
    ModelRegistry registry;
    auto a = tinyNet("a");
    auto b = tinyNet("b");
    uint64_t expected = a->weightBytes() + b->weightBytes();
    ASSERT_TRUE(registry.add(std::move(a)).isOk());
    ASSERT_TRUE(registry.add(std::move(b)).isOk());
    EXPECT_EQ(registry.totalWeightBytes(), expected);
}

TEST(ModelRegistry, LoadFromFiles)
{
    std::string dir = ::testing::TempDir();
    std::string netdef_path = dir + "/reg_net.def";
    std::string weights_path = dir + "/reg_net.djw";

    auto src = tinyNet("filed");
    {
        std::ofstream os(netdef_path);
        os << nn::formatNetDef(*src);
    }
    ASSERT_TRUE(nn::saveWeights(*src, weights_path).isOk());

    ModelRegistry registry;
    ASSERT_TRUE(
        registry.loadFromFiles(netdef_path, weights_path).isOk());
    auto loaded = registry.find("filed");
    ASSERT_NE(loaded, nullptr);

    // Same weights -> same outputs.
    nn::Tensor in(nn::Shape(1, 1, 4, 4), 0.5f);
    nn::Tensor a = src->forward(in);
    nn::Tensor b = loaded->forward(in);
    for (int64_t i = 0; i < a.elems(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);

    std::remove(netdef_path.c_str());
    std::remove(weights_path.c_str());
}

TEST(ModelRegistry, ShippedNetdefFilesLoadAndMatchZoo)
{
    // The files in models/ are what djinnd --netdef consumes; they
    // must stay structurally identical to the built-in zoo.
    ModelRegistry registry;
    for (nn::zoo::Model model : nn::zoo::allModels()) {
        std::string name = nn::zoo::modelName(model);
        std::string path = std::string(DJINN_SOURCE_DIR) +
                           "/models/" + name + ".def";
        Status s = registry.loadFromFiles(path, "");
        ASSERT_TRUE(s.isOk())
            << path << ": " << s.toString()
            << " (regenerate with tools/export_models)";
        auto loaded = registry.find(name);
        ASSERT_NE(loaded, nullptr);
        auto zoo_net = nn::parseNetDefOrDie(nn::zoo::netDef(model));
        EXPECT_EQ(loaded->layerCount(), zoo_net->layerCount())
            << name;
        EXPECT_EQ(loaded->paramCount(), zoo_net->paramCount())
            << name;
        EXPECT_EQ(loaded->outputShape(), zoo_net->outputShape())
            << name;
    }
}

TEST(ModelRegistry, InstancesShareWeightTensors)
{
    // Tenant instances (DESIGN.md §16) alias the base model's
    // Network: no duplicate resident weight bytes, and the byte
    // accounting dedups shared tensors.
    ModelRegistry registry;
    auto base = tinyNet("base");
    uint64_t weight_bytes = base->weightBytes();
    ASSERT_TRUE(registry.add(std::move(base)).isOk());

    ASSERT_TRUE(registry.addInstance("tenant-a", "base").isOk());
    ASSERT_TRUE(registry.addInstance("tenant-b", "base").isOk());
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry.find("tenant-a").get(),
              registry.find("base").get());
    EXPECT_EQ(registry.instanceCount("base"), 3u);
    EXPECT_EQ(registry.instanceCount("tenant-a"), 3u);
    EXPECT_EQ(registry.totalWeightBytes(), weight_bytes);
}

TEST(ModelRegistry, AddInstanceRejectsMissingBaseAndDuplicates)
{
    ModelRegistry registry;
    ASSERT_TRUE(registry.add(tinyNet("base")).isOk());
    EXPECT_EQ(registry.addInstance("t", "missing").code(),
              StatusCode::NotFound);
    ASSERT_TRUE(registry.addInstance("t", "base").isOk());
    EXPECT_EQ(registry.addInstance("t", "base").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(registry.addInstance("base", "base").code(),
              StatusCode::InvalidArgument);
}

TEST(ModelRegistry, UnloadReleasesWeightsAtLastInstance)
{
    // The refcount lifecycle: unloading one tenant keeps the
    // shared weights resident for the others; unloading the last
    // holder frees them.
    ModelRegistry registry;
    ASSERT_TRUE(registry.add(tinyNet("base")).isOk());
    ASSERT_TRUE(registry.addInstance("tenant", "base").isOk());
    std::weak_ptr<const nn::Network> weights =
        registry.find("base");
    ASSERT_FALSE(weights.expired());

    ASSERT_TRUE(registry.unload("tenant").isOk());
    EXPECT_EQ(registry.find("tenant"), nullptr);
    EXPECT_EQ(registry.instanceCount("base"), 1u);
    EXPECT_FALSE(weights.expired());

    ASSERT_TRUE(registry.unload("base").isOk());
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_TRUE(weights.expired());
    EXPECT_EQ(registry.unload("base").code(),
              StatusCode::NotFound);
    EXPECT_EQ(registry.instanceCount("base"), 0u);
}

TEST(ModelRegistry, LoadFromMissingFileFails)
{
    ModelRegistry registry;
    Status s = registry.loadFromFiles("/nonexistent/x.def", "");
    EXPECT_EQ(s.code(), StatusCode::IoError);
}

TEST(ModelRegistry, LoadWithoutWeightsKeepsZeros)
{
    std::string path = ::testing::TempDir() + "/reg_zero.def";
    {
        std::ofstream os(path);
        os << "name zeroed\ninput 1 2 2\nlayer fc fc out 2\n";
    }
    ModelRegistry registry;
    ASSERT_TRUE(registry.loadFromFiles(path, "").isOk());
    auto net = registry.find("zeroed");
    ASSERT_NE(net, nullptr);
    nn::Tensor in(nn::Shape(1, 1, 2, 2), 1.0f);
    nn::Tensor out = net->forward(in);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    std::remove(path.c_str());
}

} // namespace
} // namespace core
} // namespace djinn
