/**
 * @file
 * End-to-end DjiNN service tests: a real TCP server on loopback,
 * exercised through the client library.
 */

#include "core/djinn_server.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/djinn_client.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "telemetry/exposition.hh"

namespace djinn {
namespace core {
namespace {

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 2 2\nlayer fc fc out 3\n"
            "layer prob softmax\n");
        nn::initializeWeights(*net, 5);
        ASSERT_TRUE(registry_.add(std::move(net)).isOk());
    }

    void
    startServer(ServerConfig config = ServerConfig{})
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    Status
    connect(DjinnClient &client)
    {
        return client.connect("127.0.0.1", server_->port());
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

TEST_F(ServerTest, StartsOnEphemeralPort)
{
    startServer();
    EXPECT_GT(server_->port(), 0);
    EXPECT_TRUE(server_->running());
    server_->stop();
    EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, PingPong)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    EXPECT_TRUE(client.ping().isOk());
}

TEST_F(ServerTest, ListModels)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto models = client.listModels();
    ASSERT_TRUE(models.isOk());
    ASSERT_EQ(models.value().size(), 1u);
    EXPECT_EQ(models.value()[0], "tiny");
}

TEST_F(ServerTest, InferenceReturnsDistribution)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_EQ(result.value().size(), 3u);
    double sum = 0;
    for (float v : result.value())
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(server_->requestsServed(), 1u);
}

TEST_F(ServerTest, InferenceMatchesLocalForward)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    std::vector<float> input{0.5f, -1.0f, 2.0f, 0.0f};
    auto remote = client.infer("tiny", 1, input);
    ASSERT_TRUE(remote.isOk());

    auto net = registry_.find("tiny");
    nn::Tensor in(nn::Shape(1, 1, 2, 2));
    std::copy(input.begin(), input.end(), in.data());
    nn::Tensor local = net->forward(in);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(remote.value()[i], local[i], 1e-6);
}

TEST_F(ServerTest, MultiRowInference)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    std::vector<float> input(8, 0.25f);
    auto result = client.infer("tiny", 2, input);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().size(), 6u);
}

TEST_F(ServerTest, UnknownModelReported)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto result = client.infer("resnet", 1, {1, 2, 3, 4});
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::NotFound);
}

TEST_F(ServerTest, WrongPayloadSizeReported)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto result = client.infer("tiny", 1, {1, 2});
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

TEST_F(ServerTest, RowLimitEnforced)
{
    ServerConfig config;
    config.maxRowsPerRequest = 2;
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    std::vector<float> input(12, 0.0f);
    auto result = client.infer("tiny", 3, input);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

TEST_F(ServerTest, SequentialRequestsOnOneConnection)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    for (int i = 0; i < 10; ++i) {
        auto result = client.infer("tiny", 1, {1, 2, 3, 4});
        ASSERT_TRUE(result.isOk());
    }
    EXPECT_EQ(server_->requestsServed(), 10u);
    EXPECT_EQ(server_->connectionsAccepted(), 1u);
}

TEST_F(ServerTest, ConcurrentClients)
{
    startServer();
    constexpr int clients = 8;
    constexpr int per_client = 10;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
        workers.emplace_back([this, &failures]() {
            DjinnClient client;
            if (!connect(client).isOk()) {
                ++failures;
                return;
            }
            for (int i = 0; i < per_client; ++i) {
                auto result = client.infer("tiny", 1, {1, 2, 3, 4});
                if (!result.isOk())
                    ++failures;
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server_->requestsServed(),
              static_cast<uint64_t>(clients * per_client));
    EXPECT_EQ(server_->connectionsAccepted(),
              static_cast<uint64_t>(clients));
}

TEST_F(ServerTest, BatchingModeServesCorrectResults)
{
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 4;
    config.batchOptions.maxDelay = 2e-3;
    startServer(config);

    auto net = registry_.find("tiny");
    constexpr int clients = 6;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
        workers.emplace_back([this, c, net, &failures]() {
            DjinnClient client;
            if (!connect(client).isOk()) {
                ++failures;
                return;
            }
            std::vector<float> input{static_cast<float>(c), 1, 2,
                                     3};
            auto result = client.infer("tiny", 1, input);
            if (!result.isOk()) {
                ++failures;
                return;
            }
            nn::Tensor in(nn::Shape(1, 1, 2, 2));
            std::copy(input.begin(), input.end(), in.data());
            nn::Tensor expected = net->forward(in);
            for (int64_t i = 0; i < 3; ++i) {
                if (std::abs(result.value()[i] - expected[i]) >
                    1e-5) {
                    ++failures;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, DescribeModelReportsGeometry)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto info = client.describeModel("tiny");
    ASSERT_TRUE(info.isOk()) << info.status().toString();
    EXPECT_EQ(info.value().channels, 1);
    EXPECT_EQ(info.value().height, 2);
    EXPECT_EQ(info.value().width, 2);
    EXPECT_EQ(info.value().inputElems(), 4);
    EXPECT_EQ(info.value().outputs, 3);
}

TEST_F(ServerTest, DescribeUnknownModelFails)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto info = client.describeModel("resnet");
    ASSERT_FALSE(info.isOk());
    EXPECT_EQ(info.status().code(), StatusCode::NotFound);
}

TEST_F(ServerTest, StatsTrackServedRequests)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(client.infer("tiny", 2, std::vector<float>(
            8, 0.5f)).isOk());

    auto stats = client.serverStats();
    ASSERT_TRUE(stats.isOk()) << stats.status().toString();
    ASSERT_EQ(stats.value().size(), 1u);
    const auto &s = stats.value()[0];
    EXPECT_EQ(s.model, "tiny");
    EXPECT_EQ(s.requests, 5u);
    EXPECT_EQ(s.rows, 10u);
    EXPECT_GE(s.meanServiceMs, 0.0);

    // Server-side snapshot agrees.
    auto local = server_->stats();
    ASSERT_EQ(local.size(), 1u);
    EXPECT_EQ(local[0].requests, 5u);
}

TEST_F(ServerTest, StatsEmptyBeforeTraffic)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto stats = client.serverStats();
    ASSERT_TRUE(stats.isOk());
    EXPECT_TRUE(stats.value().empty());
}

TEST_F(ServerTest, StatsExcludeFailedRequests)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    (void)client.infer("tiny", 1, {1.0f}); // wrong size, rejected
    (void)client.infer("missing", 1, {1, 2, 3, 4});
    auto stats = client.serverStats();
    ASSERT_TRUE(stats.isOk());
    EXPECT_TRUE(stats.value().empty());
}

TEST_F(ServerTest, StopUnblocksAndRejects)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    server_->stop();
    // Later requests on the (now closed) connection fail cleanly.
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    EXPECT_FALSE(result.isOk());
}

TEST_F(ServerTest, StopCompletesWithIdleConnectedClients)
{
    // Regression: stop() used to join worker threads that were
    // parked in read() on idle connections - a hang. It must shut
    // those sockets down and return promptly.
    startServer();
    DjinnClient a, b;
    ASSERT_TRUE(connect(a).isOk());
    ASSERT_TRUE(connect(b).isOk());
    ASSERT_TRUE(a.ping().isOk()); // ensure workers are parked
    ASSERT_TRUE(b.ping().isOk());

    auto start = std::chrono::steady_clock::now();
    server_->stop();
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(seconds, 2.0);
}

TEST_F(ServerTest, DoubleStartRejected)
{
    startServer();
    EXPECT_FALSE(server_->start().isOk());
}

TEST_F(ServerTest, StopIsIdempotent)
{
    startServer();
    server_->stop();
    server_->stop();
    SUCCEED();
}

TEST_F(ServerTest, ClientConnectToClosedPortFails)
{
    startServer();
    uint16_t port = server_->port();
    server_->stop();
    server_.reset();
    DjinnClient client;
    EXPECT_FALSE(client.connect("127.0.0.1", port).isOk());
}

TEST_F(ServerTest, ClientRejectsBadAddress)
{
    DjinnClient client;
    EXPECT_FALSE(client.connect("not-an-ip", 1234).isOk());
}

TEST_F(ServerTest, ClientInferWithoutConnectFails)
{
    DjinnClient client;
    auto result = client.infer("tiny", 1, {1, 2, 3, 4});
    EXPECT_EQ(result.status().code(), StatusCode::Unavailable);
}

TEST_F(ServerTest, MetricsExpositionRoundTrip)
{
    // The full telemetry story over the wire: a batching server
    // handles traffic, the client fetches the Prometheus exposition
    // via the Metrics verb, parses it, and the numbers agree with
    // the server-local stats() view.
    ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 4;
    config.batchOptions.maxDelay = 200e-6;
    startServer(config);
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(client.infer("tiny", 2, std::vector<float>(
            8, 0.5f)).isOk());

    auto text = client.metricsExposition();
    ASSERT_TRUE(text.isOk()) << text.status().toString();
    auto parsed = telemetry::parseExposition(text.value());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &samples = parsed.value();

    auto requests = telemetry::findSample(
        samples, "djinn_requests_total", {{"model", "tiny"}});
    ASSERT_TRUE(requests.isOk());
    EXPECT_DOUBLE_EQ(requests.value(), 6.0);

    auto rows = telemetry::findSample(
        samples, "djinn_rows_total", {{"model", "tiny"}});
    ASSERT_TRUE(rows.isOk());
    EXPECT_DOUBLE_EQ(rows.value(), 12.0);

    // Batching phases made it into the exposition with quantiles.
    auto wait_count = telemetry::findSample(
        samples, "djinn_phase_seconds_count",
        {{"model", "tiny"}, {"phase", "queue_wait"}});
    ASSERT_TRUE(wait_count.isOk());
    EXPECT_DOUBLE_EQ(wait_count.value(), 6.0);
    auto forward_p95 = telemetry::findSample(
        samples, "djinn_phase_seconds",
        {{"model", "tiny"}, {"phase", "forward"},
         {"quantile", "0.95"}});
    ASSERT_TRUE(forward_p95.isOk());
    EXPECT_GE(forward_p95.value(), 0.0);

    // stats() is a view over the same registry.
    auto local = server_->stats();
    ASSERT_EQ(local.size(), 1u);
    EXPECT_EQ(local[0].model, "tiny");
    EXPECT_EQ(local[0].requests, 6u);
    EXPECT_EQ(local[0].rows, 12u);
    EXPECT_GE(local[0].p50ServiceMs, 0.0);
    EXPECT_GE(local[0].p95ServiceMs, local[0].p50ServiceMs);
    EXPECT_GE(local[0].p99ServiceMs, local[0].p95ServiceMs);
    auto service_count = telemetry::findSample(
        samples, "djinn_phase_seconds_count",
        {{"model", "tiny"}, {"phase", "service"}});
    ASSERT_TRUE(service_count.isOk());
    EXPECT_DOUBLE_EQ(service_count.value(), 6.0);
}

TEST_F(ServerTest, MetricsJsonFormat)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    ASSERT_TRUE(client.infer("tiny", 1, std::vector<float>(
        4, 0.5f)).isOk());
    auto json = client.metricsExposition("json");
    ASSERT_TRUE(json.isOk()) << json.status().toString();
    EXPECT_NE(json.value().find("\"djinn_requests_total\""),
              std::string::npos);
    EXPECT_NE(json.value().find("\"metrics\""), std::string::npos);
}

TEST_F(ServerTest, MetricsBadFormatRejected)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    auto result = client.metricsExposition("xml");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

TEST_F(ServerTest, MetricsCountErrorsByReason)
{
    startServer();
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());
    (void)client.infer("missing", 1, {1, 2, 3, 4});
    (void)client.infer("tiny", 1, {1.0f}); // wrong payload size
    auto text = client.metricsExposition();
    ASSERT_TRUE(text.isOk());
    auto parsed = telemetry::parseExposition(text.value());
    ASSERT_TRUE(parsed.isOk());
    auto unknown = telemetry::findSample(
        parsed.value(), "djinn_request_errors_total",
        {{"reason", "unknown_model"}});
    ASSERT_TRUE(unknown.isOk());
    EXPECT_DOUBLE_EQ(unknown.value(), 1.0);
    auto bad = telemetry::findSample(
        parsed.value(), "djinn_request_errors_total",
        {{"reason", "bad_request"}});
    ASSERT_TRUE(bad.isOk());
    EXPECT_DOUBLE_EQ(bad.value(), 1.0);
}

TEST_F(ServerTest, StopDuringConnectionChurn)
{
    // Regression: connections accepted between shutdown(listenFd_)
    // and the acceptor noticing !running_ used to leak their worker
    // threads past stop(). Hammer the acceptor from several threads
    // while stopping; stop() must still return promptly with every
    // connection drained.
    startServer();
    std::atomic<bool> done{false};
    std::vector<std::thread> churners;
    for (int t = 0; t < 4; ++t) {
        churners.emplace_back([this, &done]() {
            while (!done.load()) {
                DjinnClient client;
                if (connect(client).isOk())
                    (void)client.ping();
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Regression: workers_ used to keep one entry per connection
    // ever accepted (the acceptor never reaped finished threads),
    // growing without bound under churn. The registry must stay
    // proportional to the live connections (4 churners, each one
    // connection at a time), far below the accept count.
    uint64_t accepted = server_->connectionsAccepted();
    size_t workers = server_->workerCount();
    EXPECT_GE(accepted, 16u) << "churn produced too few "
                                "connections for the bound "
                                "to be meaningful";
    EXPECT_LE(workers, 16u)
        << "worker registry grew with accept count (" << accepted
        << " accepted)";

    auto start = std::chrono::steady_clock::now();
    server_->stop();
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    done.store(true);
    for (auto &c : churners)
        c.join();
    EXPECT_LT(seconds, 2.0);
    EXPECT_FALSE(server_->running());
}

} // namespace
} // namespace core
} // namespace djinn
