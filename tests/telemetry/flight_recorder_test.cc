/**
 * @file
 * Flight-recorder tests: single-writer semantics, lookup by seq and
 * trace id, the tail-biased reservoir property, the JSON rendering,
 * and a multi-writer stress that gives TSan a real workout over the
 * seqlock ring (scripts/check_build.sh runs it under
 * -fsanitize=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"

using namespace djinn;
using namespace djinn::telemetry;

namespace {

FlightRecord
makeRecord(uint64_t traceId, double totalSeconds)
{
    FlightRecord record;
    record.traceId = traceId;
    record.totalSeconds = totalSeconds;
    record.forwardSeconds = totalSeconds * 0.5;
    record.queueWaitSeconds = totalSeconds * 0.5;
    record.setModel("mnist");
    return record;
}

} // namespace

TEST(FlightRecorder, RecordsAndFindsBySeq)
{
    FlightRecorder recorder(16, 0);
    uint64_t a = recorder.record(makeRecord(101, 0.010));
    uint64_t b = recorder.record(makeRecord(102, 0.020));
    EXPECT_NE(a, b);
    EXPECT_EQ(recorder.recordCount(), 2u);

    FlightRecord out;
    ASSERT_TRUE(recorder.find(a, out));
    EXPECT_EQ(out.traceId, 101u);
    EXPECT_DOUBLE_EQ(out.totalSeconds, 0.010);
    EXPECT_EQ(out.modelName(), "mnist");
    ASSERT_TRUE(recorder.find(b, out));
    EXPECT_EQ(out.traceId, 102u);
    EXPECT_FALSE(recorder.find(999, out));
}

TEST(FlightRecorder, FindByTraceIdPrefersNewest)
{
    FlightRecorder recorder(16, 0);
    recorder.record(makeRecord(7, 0.001));
    uint64_t newest = recorder.record(makeRecord(7, 0.002));

    FlightRecord out;
    ASSERT_TRUE(recorder.findByTraceId(7, out));
    EXPECT_EQ(out.seq, newest);
    EXPECT_DOUBLE_EQ(out.totalSeconds, 0.002);
    EXPECT_FALSE(recorder.findByTraceId(0, out));
    EXPECT_FALSE(recorder.findByTraceId(12345, out));
}

TEST(FlightRecorder, RingWrapsKeepingNewest)
{
    FlightRecorder recorder(4, 0);
    for (uint64_t i = 0; i < 10; ++i)
        recorder.record(makeRecord(i + 1, 0.001 * double(i + 1)));

    std::vector<FlightRecord> records = recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // Oldest-first; the ring holds the last four records.
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].seq, 6 + i);
}

TEST(FlightRecorder, ReservoirKeepsSlowestAcrossWraps)
{
    // Tiny ring, modest reservoir: after many wraps the snapshot
    // must still contain the slowest requests ever recorded, even
    // though they left the ring long ago.
    FlightRecorder recorder(8, 16);
    Rng rng(42);

    std::vector<double> totals;
    for (int i = 0; i < 4096; ++i) {
        double total = rng.uniform(0.001, 0.010);
        if (i % 257 == 0)
            total = rng.uniform(0.5, 1.0); // injected stragglers
        totals.push_back(total);
        recorder.record(makeRecord(uint64_t(i) + 1, total));
    }

    // The 16 slowest of all 4096, by value.
    std::vector<double> sorted = totals;
    std::sort(sorted.begin(), sorted.end());
    double cutoff = sorted[sorted.size() - 16];

    std::vector<FlightRecord> records = recorder.snapshot();
    size_t tail_kept = 0;
    for (const FlightRecord &record : records)
        if (record.totalSeconds >= cutoff)
            ++tail_kept;
    // Every top-16 record must have been retained (the reservoir
    // is exact top-K, not sampled).
    EXPECT_GE(tail_kept, 16u);
}

TEST(FlightRecorder, CountsRecordsInRegistry)
{
    MetricRegistry metrics;
    FlightRecorder recorder(8, 4, &metrics);
    recorder.record(makeRecord(1, 0.001));
    recorder.record(makeRecord(2, 0.002));
    EXPECT_EQ(metrics.counter("djinn_tail_records_total").value(),
              2u);
}

TEST(FlightRecorder, JsonRenderingCarriesEveryPhase)
{
    FlightRecord record = makeRecord(0xabcd, 0.040);
    record.seq = 17;
    record.readSeconds = 0.004;
    record.decodeSeconds = 0.001;
    record.encodeSeconds = 0.002;
    record.retries = 3;
    record.batchQueries = 8;
    record.batchPosition = 5;
    record.admitQueueDepth = 12;
    record.outcome = FlightOutcome::Ok;

    std::string json = renderFlightRecordJson(record);
    EXPECT_NE(json.find("\"seq\": 17"), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\": \"000000000000abcd\""),
              std::string::npos);
    EXPECT_NE(json.find("\"model\": \"mnist\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"read_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_seconds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"forward_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"encode_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"batch_queries\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"admit_queue_depth\": 12"),
              std::string::npos);
    EXPECT_NE(json.find("\"retries\": 3"), std::string::npos);
}

TEST(FlightRecorder, ShedOutcomesRoundTrip)
{
    EXPECT_STREQ(flightOutcomeName(FlightOutcome::Ok), "ok");
    EXPECT_STREQ(flightOutcomeName(FlightOutcome::ShedQueueFull),
                 "shed_queue_full");
    EXPECT_STREQ(flightOutcomeName(FlightOutcome::ShedDeadline),
                 "shed_deadline");
    EXPECT_STREQ(flightOutcomeName(FlightOutcome::Error), "error");
}

TEST(FlightRecorder, MultiWriterStressStaysConsistent)
{
    // Many writers lapping a deliberately tiny ring while readers
    // snapshot concurrently. Correctness bar: no torn records — a
    // record read back must be internally consistent (its traceId
    // encodes its totalSeconds) — and every writer's seqs are
    // unique. Run under TSan by scripts/check_build.sh.
    constexpr int kWriters = 8;
    constexpr int kPerWriter = 2000;
    FlightRecorder recorder(64, 32);

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&]() {
        while (!stop.load()) {
            for (const FlightRecord &record : recorder.snapshot()) {
                // traceId = writer * kPerWriter + i + 1, and
                // totalSeconds = traceId * 1e-6: torn words break
                // the relation.
                double expect =
                    static_cast<double>(record.traceId) * 1e-6;
                if (record.totalSeconds != expect)
                    torn.fetch_add(1);
            }
        }
    });

    std::vector<std::thread> writers;
    std::vector<std::vector<uint64_t>> seqs(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w]() {
            for (int i = 0; i < kPerWriter; ++i) {
                uint64_t trace_id =
                    uint64_t(w) * kPerWriter + uint64_t(i) + 1;
                FlightRecord record = makeRecord(
                    trace_id,
                    static_cast<double>(trace_id) * 1e-6);
                seqs[w].push_back(recorder.record(record));
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(recorder.recordCount(),
              uint64_t(kWriters) * kPerWriter);

    std::set<uint64_t> all;
    for (const auto &per_writer : seqs)
        all.insert(per_writer.begin(), per_writer.end());
    EXPECT_EQ(all.size(), size_t(kWriters) * kPerWriter);

    // Snapshot after the dust settles: consistent and deduped.
    std::vector<FlightRecord> records = recorder.snapshot();
    std::set<uint64_t> seen;
    for (const FlightRecord &record : records) {
        EXPECT_TRUE(seen.insert(record.seq).second);
        EXPECT_DOUBLE_EQ(
            record.totalSeconds,
            static_cast<double>(record.traceId) * 1e-6);
    }
}
