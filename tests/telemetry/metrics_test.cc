/**
 * @file
 * Unit tests for the metric registry, the exposition formats (text
 * render + parse round-trip, JSON), and request trace spans.
 */

#include "telemetry/metrics.hh"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "telemetry/exposition.hh"
#include "telemetry/trace.hh"

namespace djinn {
namespace telemetry {
namespace {

TEST(MetricRegistryTest, CounterBasics)
{
    MetricRegistry registry;
    Counter &requests = registry.counter("djinn_requests_total",
                                         {{"model", "mnist"}});
    EXPECT_EQ(requests.value(), 0u);
    requests.inc();
    requests.inc(4);
    EXPECT_EQ(requests.value(), 5u);
    // Same (name, labels) resolves to the same object.
    EXPECT_EQ(&registry.counter("djinn_requests_total",
                                {{"model", "mnist"}}),
              &requests);
    // A different label set is a distinct instrument.
    Counter &other = registry.counter("djinn_requests_total",
                                      {{"model", "alexnet"}});
    EXPECT_NE(&other, &requests);
    EXPECT_EQ(other.value(), 0u);
    EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistryTest, GaugeBasics)
{
    MetricRegistry registry;
    Gauge &depth = registry.gauge("djinn_batch_queue_depth");
    depth.set(7.0);
    EXPECT_DOUBLE_EQ(depth.value(), 7.0);
    depth.add(-3.0);
    EXPECT_DOUBLE_EQ(depth.value(), 4.0);
}

TEST(MetricRegistryTest, HistogramOptionsApplyOnCreationOnly)
{
    MetricRegistry registry;
    HistogramOptions options;
    options.firstBound = 1.0;
    options.growth = 2.0;
    options.bucketCount = 4;
    LogHistogram &hist =
        registry.histogram("djinn_batch_rows", {}, options);
    EXPECT_EQ(hist.options().bucketCount, 4);
    // A second lookup with different options returns the original.
    HistogramOptions other;
    other.bucketCount = 32;
    EXPECT_EQ(&registry.histogram("djinn_batch_rows", {}, other),
              &hist);
    EXPECT_EQ(hist.options().bucketCount, 4);
}

TEST(MetricRegistryTest, KindCollisionIsFatal)
{
    MetricRegistry registry;
    registry.counter("djinn_requests_total");
    EXPECT_THROW(registry.gauge("djinn_requests_total"), FatalError);
    EXPECT_THROW(registry.histogram("djinn_requests_total"),
                 FatalError);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndComplete)
{
    MetricRegistry registry;
    registry.counter("zeta_total").inc(3);
    registry.gauge("alpha_depth").set(2.5);
    registry.histogram("mid_seconds").record(0.25);

    auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "alpha_depth");
    EXPECT_EQ(samples[0].kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(samples[0].value, 2.5);
    EXPECT_EQ(samples[1].name, "mid_seconds");
    EXPECT_EQ(samples[1].kind, MetricKind::Histogram);
    EXPECT_EQ(samples[1].histogram.count, 1u);
    EXPECT_EQ(samples[2].name, "zeta_total");
    EXPECT_EQ(samples[2].kind, MetricKind::Counter);
    EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
}

TEST(MetricRegistryTest, ConcurrentLookupAndUpdate)
{
    MetricRegistry registry;
    constexpr int threads = 8;
    constexpr int per_thread = 5000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&registry]() {
            for (int i = 0; i < per_thread; ++i) {
                registry.counter("shared_total").inc();
                registry
                    .histogram("shared_seconds",
                               {{"model", "tiny"}})
                    .record(1e-4);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(registry.counter("shared_total").value(),
              static_cast<uint64_t>(threads) * per_thread);
    EXPECT_EQ(registry.histogram("shared_seconds",
                                 {{"model", "tiny"}})
                  .count(),
              static_cast<uint64_t>(threads) * per_thread);
}

TEST(MetricIdTest, RenderWithAndWithoutLabels)
{
    EXPECT_EQ(renderMetricId("djinn_requests_total", {}),
              "djinn_requests_total");
    EXPECT_EQ(renderMetricId("djinn_phase_seconds",
                             {{"model", "mnist"},
                              {"phase", "forward"}}),
              "djinn_phase_seconds{model=\"mnist\","
              "phase=\"forward\"}");
}

TEST(ExpositionTest, PrometheusRoundTrip)
{
    MetricRegistry registry;
    registry.counter("djinn_requests_total", {{"model", "mnist"}})
        .inc(12);
    registry.gauge("djinn_inflight_requests").set(2.0);
    LogHistogram &hist = registry.histogram(
        "djinn_phase_seconds",
        {{"model", "mnist"}, {"phase", "forward"}});
    for (int i = 0; i < 100; ++i)
        hist.record(2e-3);

    std::string text = renderPrometheus(registry.snapshot());
    auto parsed = parseExposition(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &samples = parsed.value();

    auto requests = findSample(samples, "djinn_requests_total",
                               {{"model", "mnist"}});
    ASSERT_TRUE(requests.isOk());
    EXPECT_DOUBLE_EQ(requests.value(), 12.0);

    auto inflight = findSample(samples, "djinn_inflight_requests");
    ASSERT_TRUE(inflight.isOk());
    EXPECT_DOUBLE_EQ(inflight.value(), 2.0);

    auto count = findSample(samples, "djinn_phase_seconds_count",
                            {{"model", "mnist"},
                             {"phase", "forward"}});
    ASSERT_TRUE(count.isOk());
    EXPECT_DOUBLE_EQ(count.value(), 100.0);

    auto p50 = findSample(samples, "djinn_phase_seconds",
                          {{"model", "mnist"},
                           {"phase", "forward"},
                           {"quantile", "0.5"}});
    ASSERT_TRUE(p50.isOk());
    EXPECT_NEAR(p50.value(), 2e-3, 2e-3);

    auto sum = findSample(samples, "djinn_phase_seconds_sum",
                          {{"model", "mnist"},
                           {"phase", "forward"}});
    ASSERT_TRUE(sum.isOk());
    EXPECT_NEAR(sum.value(), 0.2, 1e-6);

    // Absent samples report NotFound, not garbage.
    EXPECT_FALSE(
        findSample(samples, "djinn_requests_total",
                   {{"model", "nope"}})
            .isOk());
}

TEST(ExpositionTest, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(parseExposition("name_without_value\n").isOk());
    EXPECT_FALSE(
        parseExposition("bad{unterminated=\"x 1\n").isOk());
    EXPECT_FALSE(parseExposition("name not_a_number\n").isOk());
}

TEST(ExpositionTest, ParserSkipsCommentsAndBlankLines)
{
    auto parsed = parseExposition(
        "# TYPE djinn_requests_total counter\n"
        "\n"
        "djinn_requests_total 3\n");
    ASSERT_TRUE(parsed.isOk());
    ASSERT_EQ(parsed.value().size(), 1u);
    EXPECT_DOUBLE_EQ(parsed.value()[0].value, 3.0);
}

TEST(ExpositionTest, JsonContainsSummaryFields)
{
    MetricRegistry registry;
    registry.counter("djinn_requests_total").inc(2);
    LogHistogram &hist = registry.histogram("djinn_phase_seconds");
    hist.record(1e-3);
    hist.record(3e-3);

    std::string json = renderJson(registry.snapshot());
    EXPECT_NE(json.find("\"djinn_requests_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"min\""), std::string::npos);
    EXPECT_NE(json.find("\"max\""), std::string::npos);
}

TEST(RequestTraceTest, PhasesRecordIntoModelHistograms)
{
    MetricRegistry registry;
    {
        RequestTrace trace(registry, "mnist");
        trace.record(Phase::Decode, 1e-4);
        trace.record(Phase::Forward, 5e-3);
        trace.record(Phase::Service, 6e-3);
    }
    auto &forward = registry.histogram(
        phaseMetricName,
        {{"model", "mnist"}, {"phase", "forward"}});
    EXPECT_EQ(forward.count(), 1u);
    EXPECT_DOUBLE_EQ(forward.max(), 5e-3);
    auto &decode = registry.histogram(
        phaseMetricName,
        {{"model", "mnist"}, {"phase", "decode"}});
    EXPECT_EQ(decode.count(), 1u);
}

TEST(RequestTraceTest, InflightGaugeTracksTraceLifetime)
{
    MetricRegistry registry;
    Gauge &inflight = registry.gauge(inflightMetricName);
    {
        RequestTrace a(registry);
        EXPECT_DOUBLE_EQ(inflight.value(), 1.0);
        {
            RequestTrace b(registry, "mnist");
            EXPECT_DOUBLE_EQ(inflight.value(), 2.0);
        }
        EXPECT_DOUBLE_EQ(inflight.value(), 1.0);
    }
    EXPECT_DOUBLE_EQ(inflight.value(), 0.0);
}

TEST(RequestTraceTest, SpanRecordsElapsedTimeOnce)
{
    MetricRegistry registry;
    RequestTrace trace(registry, "mnist");
    {
        auto span = trace.span(Phase::Encode);
        span.stop();
        // The destructor must not double-record after stop().
    }
    auto &encode = registry.histogram(
        phaseMetricName,
        {{"model", "mnist"}, {"phase", "encode"}});
    EXPECT_EQ(encode.count(), 1u);
    EXPECT_GE(encode.min(), 0.0);
}

TEST(RequestTraceTest, ModelSetAfterDecodeLabelsLaterPhases)
{
    MetricRegistry registry;
    RequestTrace trace(registry);
    trace.setModel("alexnet");
    trace.record(Phase::QueueWait, 2e-4);
    auto &wait = registry.histogram(
        phaseMetricName,
        {{"model", "alexnet"}, {"phase", "queue_wait"}});
    EXPECT_EQ(wait.count(), 1u);
}

TEST(PhaseNameTest, StableLabels)
{
    EXPECT_STREQ(phaseName(Phase::Decode), "decode");
    EXPECT_STREQ(phaseName(Phase::QueueWait), "queue_wait");
    EXPECT_STREQ(phaseName(Phase::Forward), "forward");
    EXPECT_STREQ(phaseName(Phase::Encode), "encode");
    EXPECT_STREQ(phaseName(Phase::Service), "service");
}

TEST(ExpositionTest, OpenMetricsRendersCumulativeBucketsAndEof)
{
    MetricRegistry registry;
    HistogramOptions options;
    options.firstBound = 1e-3;
    options.growth = 2.0;
    options.bucketCount = 4;
    LogHistogram &hist = registry.histogram(
        "djinn_request_seconds", {{"model", "mnist"}}, options);
    hist.record(0.5e-3);  // bucket 0 (le 1e-3)
    hist.record(1.5e-3);  // bucket 1 (le 2e-3)
    hist.record(1.5e-3);

    std::string text = renderOpenMetrics(registry.snapshot());
    EXPECT_NE(
        text.find("# TYPE djinn_request_seconds histogram"),
        std::string::npos);
    // Cumulative counts per le bound.
    EXPECT_NE(text.find("le=\"0.001\"", 0), std::string::npos);
    EXPECT_NE(text.find("le=\"0.002\"", 0), std::string::npos);
    // Trailing empty finite buckets collapse into mandatory +Inf.
    EXPECT_EQ(text.find("le=\"0.004\""), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
    auto parsed = parseExposition(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    auto inf = findSample(parsed.value(),
                          "djinn_request_seconds_bucket",
                          {{"le", "+Inf"}, {"model", "mnist"}});
    ASSERT_TRUE(inf.isOk());
    EXPECT_DOUBLE_EQ(inf.value(), 3.0);
    auto first = findSample(parsed.value(),
                            "djinn_request_seconds_bucket",
                            {{"le", "0.001"}, {"model", "mnist"}});
    ASSERT_TRUE(first.isOk());
    EXPECT_DOUBLE_EQ(first.value(), 1.0);
    EXPECT_NE(text.find("djinn_request_seconds_count"),
              std::string::npos);
    EXPECT_NE(text.find("djinn_request_seconds_sum"),
              std::string::npos);
    // The spec-mandated terminator, exactly at the end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(ExpositionTest, OpenMetricsCarriesExemplars)
{
    MetricRegistry registry;
    HistogramOptions options;
    options.firstBound = 1e-3;
    options.growth = 2.0;
    options.bucketCount = 4;
    options.exemplars = true;
    LogHistogram &hist = registry.histogram(
        "djinn_request_seconds", {{"model", "mnist"}}, options);
    hist.record(1.5e-3, /*traceId=*/0xabcd, /*ref=*/17);
    hist.record(0.5e-3, /*traceId=*/0, /*ref=*/4);

    std::string text = renderOpenMetrics(registry.snapshot());
    // Traced request: trace_id label plus flight-record ref.
    EXPECT_NE(
        text.find(" # {trace_id=\"000000000000abcd\","
                  "record=\"17\"} 0.0015"),
        std::string::npos);
    // Untraced request: trace_id omitted, ref still present.
    EXPECT_NE(text.find(" # {record=\"4\"} 0.0005"),
              std::string::npos);

    // The parser must tolerate exemplar suffixes.
    auto parsed = parseExposition(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    auto count = findSample(parsed.value(),
                            "djinn_request_seconds_count",
                            {{"model", "mnist"}});
    ASSERT_TRUE(count.isOk());
    EXPECT_DOUBLE_EQ(count.value(), 2.0);
}

TEST(ExpositionTest, PrometheusRenderingStaysFreeOfOpenMetrics)
{
    // The plain Prometheus rendering must not change when exemplar
    // collection is enabled: same bytes, no exemplar markers, no
    // EOF terminator, no _bucket series.
    MetricRegistry plain;
    MetricRegistry enabled;
    HistogramOptions with_exemplars;
    with_exemplars.exemplars = true;
    for (int i = 0; i < 50; ++i) {
        plain.histogram("djinn_request_seconds").record(i * 1e-4);
        enabled
            .histogram("djinn_request_seconds", {}, with_exemplars)
            .record(i * 1e-4, uint64_t(i + 1), uint64_t(i));
    }
    std::string a = renderPrometheus(plain.snapshot());
    std::string b = renderPrometheus(enabled.snapshot());
    EXPECT_EQ(a, b);
    EXPECT_EQ(b.find(" # "), std::string::npos);
    EXPECT_EQ(b.find("# EOF"), std::string::npos);
    EXPECT_EQ(b.find("_bucket"), std::string::npos);
}

TEST(ExpositionTest, OpenMetricsContentTypeConstant)
{
    EXPECT_EQ(std::string(openMetricsContentType)
                  .find("application/openmetrics-text"),
              0u);
    EXPECT_NE(std::string(openMetricsContentType).find("version="),
              std::string::npos);
}

} // namespace
} // namespace telemetry
} // namespace djinn
