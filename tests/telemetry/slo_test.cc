/**
 * @file
 * SLO tracker tests: good/bad classification against per-model
 * targets, burn-rate arithmetic (bad fraction over the rolling
 * window divided by the error budget), window expiry via an
 * injected clock, and the registry families the tracker maintains.
 */

#include "telemetry/slo.hh"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {
namespace {

/** Counter/gauge value for (name, model), or -1 when absent. */
double
sampleValue(const MetricRegistry &registry, const char *name,
            const std::string &model)
{
    for (const MetricSample &s : registry.snapshot()) {
        if (s.name == name && s.labels.count("model") &&
            s.labels.at("model") == model) {
            return s.value;
        }
    }
    return -1.0;
}

TEST(SloTrackerTest, ClassifiesAgainstDefaultTarget)
{
    MetricRegistry registry;
    SloOptions options;
    options.defaultTargetSeconds = 0.050;
    double now = 0.0;
    SloTracker slo(registry, options, [&]() { return now; });

    slo.record("alexnet", 0.010); // within target
    slo.record("alexnet", 0.050); // exactly at target counts good
    slo.record("alexnet", 0.200); // blown

    EXPECT_EQ(sampleValue(registry, sloGoodMetricName, "alexnet"),
              2.0);
    EXPECT_EQ(sampleValue(registry, sloBadMetricName, "alexnet"),
              1.0);
    EXPECT_EQ(
        sampleValue(registry, sloTargetMetricName, "alexnet"),
        0.050);
}

TEST(SloTrackerTest, PerModelTargetOverride)
{
    MetricRegistry registry;
    double now = 0.0;
    SloTracker slo(registry, {}, [&]() { return now; });

    EXPECT_DOUBLE_EQ(slo.target("asr"), 0.050);
    slo.setTarget("asr", 0.500);
    EXPECT_DOUBLE_EQ(slo.target("asr"), 0.500);
    EXPECT_EQ(sampleValue(registry, sloTargetMetricName, "asr"),
              0.500);

    slo.record("asr", 0.300); // bad under default, good under 500ms
    EXPECT_EQ(sampleValue(registry, sloGoodMetricName, "asr"), 1.0);
    EXPECT_EQ(sampleValue(registry, sloBadMetricName, "asr"), 0.0);
}

TEST(SloTrackerTest, BurnRateIsBadFractionOverErrorBudget)
{
    MetricRegistry registry;
    SloOptions options;
    options.objective = 0.99; // error budget 0.01
    double now = 0.0;
    SloTracker slo(registry, options, [&]() { return now; });

    // 1 bad of 10 -> bad fraction 0.1 -> burn rate 0.1/0.01 = 10.
    for (int i = 0; i < 9; ++i)
        slo.record("m", 0.001);
    slo.record("m", 9.0);
    EXPECT_NEAR(slo.burnRate("m"), 10.0, 1e-9);

    slo.updateBurnRates();
    EXPECT_NEAR(sampleValue(registry, sloBurnRateMetricName, "m"),
                10.0, 1e-9);
}

TEST(SloTrackerTest, AllGoodBurnsNothing)
{
    MetricRegistry registry;
    double now = 0.0;
    SloTracker slo(registry, {}, [&]() { return now; });
    for (int i = 0; i < 5; ++i)
        slo.record("m", 0.001);
    EXPECT_DOUBLE_EQ(slo.burnRate("m"), 0.0);
    EXPECT_DOUBLE_EQ(slo.burnRate("never-served"), 0.0);
}

TEST(SloTrackerTest, WindowExpiryForgetsOldFailures)
{
    MetricRegistry registry;
    SloOptions options;
    options.windowSeconds = 10.0;
    double now = 0.0;
    SloTracker slo(registry, options, [&]() { return now; });

    slo.record("m", 9.0); // bad at t=0
    EXPECT_GT(slo.burnRate("m"), 0.0);

    // Still inside the window: the failure keeps burning.
    now = 5.0;
    EXPECT_GT(slo.burnRate("m"), 0.0);

    // Window slides past it: rate drops to zero even though the
    // monotonic bad counter keeps its value.
    now = 11.0;
    slo.updateBurnRates();
    EXPECT_DOUBLE_EQ(slo.burnRate("m"), 0.0);
    EXPECT_DOUBLE_EQ(
        sampleValue(registry, sloBurnRateMetricName, "m"), 0.0);
    EXPECT_EQ(sampleValue(registry, sloBadMetricName, "m"), 1.0);
}

TEST(SloTrackerTest, IdleModelResetsBurnBeforeWindowExpiry)
{
    // The satellite regression test: the burn rate is a fraction
    // of in-window traffic, so a model that stops serving after a
    // bad burst would otherwise pin burn = 1/(1 - objective) for
    // the full window. Idle models must read 0 once the idle
    // horizon passes, long before the window forgets the burst.
    MetricRegistry registry;
    SloOptions options;
    options.windowSeconds = 60.0;
    options.idleResetSeconds = 15.0;
    double now = 0.0;
    SloTracker slo(registry, options, [&]() { return now; });

    slo.record("m", 9.0); // bad burst at t=0, then silence
    EXPECT_GT(slo.burnRate("m"), 0.0);

    // Recently active: the burst still burns.
    now = 5.0;
    EXPECT_GT(slo.burnRate("m"), 0.0);

    // Idle past the reset horizon but well inside the 60 s window:
    // pre-fix this still read 100 (1 bad / 1 total / 0.01 budget).
    now = 30.0;
    slo.updateBurnRates();
    EXPECT_DOUBLE_EQ(slo.burnRate("m"), 0.0);
    EXPECT_DOUBLE_EQ(
        sampleValue(registry, sloBurnRateMetricName, "m"), 0.0);

    // Traffic resumes: live accounting picks right back up.
    slo.record("m", 9.0);
    EXPECT_GT(slo.burnRate("m"), 0.0);
}

TEST(SloTrackerTest, MixedTrafficAcrossSecondsAggregates)
{
    MetricRegistry registry;
    SloOptions options;
    options.objective = 0.90; // budget 0.1
    options.windowSeconds = 60.0;
    double now = 0.0;
    SloTracker slo(registry, options, [&]() { return now; });

    // Spread traffic over several one-second buckets.
    for (int second = 0; second < 4; ++second) {
        now = second;
        for (int i = 0; i < 4; ++i)
            slo.record("m", 0.001);
        slo.record("m", 9.0);
    }
    // 4 bad of 20 -> fraction 0.2 -> burn rate 2.
    now = 4.0;
    EXPECT_DOUBLE_EQ(slo.burnRate("m"), 2.0);
}

TEST(SloTrackerTest, ModelsTrackIndependently)
{
    MetricRegistry registry;
    double now = 0.0;
    SloTracker slo(registry, {}, [&]() { return now; });
    slo.record("good-model", 0.001);
    slo.record("bad-model", 9.0);
    EXPECT_DOUBLE_EQ(slo.burnRate("good-model"), 0.0);
    EXPECT_GT(slo.burnRate("bad-model"), 0.0);
}

} // namespace
} // namespace telemetry
} // namespace djinn
