/**
 * @file
 * Unit tests for the log-bucketed telemetry histogram: bucket
 * boundary placement, percentile extraction on degenerate and
 * heavy-tailed distributions, and concurrent recording.
 */

#include "telemetry/histogram.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace djinn {
namespace telemetry {
namespace {

TEST(LogHistogramTest, BucketBoundariesArePowersOfGrowth)
{
    HistogramOptions options;
    options.firstBound = 1.0;
    options.growth = 2.0;
    options.bucketCount = 8;
    LogHistogram hist(options);

    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(2), 4.0);
    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(7), 128.0);
    EXPECT_TRUE(std::isinf(hist.bucketUpperBound(8)));
}

TEST(LogHistogramTest, BucketIndexRespectsInclusiveUpperBounds)
{
    HistogramOptions options;
    options.firstBound = 1.0;
    options.growth = 2.0;
    options.bucketCount = 8;
    LogHistogram hist(options);

    // Bucket i holds bound(i-1) < v <= bound(i).
    EXPECT_EQ(hist.bucketIndex(0.0), 0);
    EXPECT_EQ(hist.bucketIndex(-3.0), 0);
    EXPECT_EQ(hist.bucketIndex(0.5), 0);
    EXPECT_EQ(hist.bucketIndex(1.0), 0);
    EXPECT_EQ(hist.bucketIndex(1.0001), 1);
    EXPECT_EQ(hist.bucketIndex(2.0), 1);
    EXPECT_EQ(hist.bucketIndex(2.0001), 2);
    EXPECT_EQ(hist.bucketIndex(4.0), 2);
    EXPECT_EQ(hist.bucketIndex(128.0), 7);
    // Anything past the last finite bound lands in overflow.
    EXPECT_EQ(hist.bucketIndex(129.0), 8);
    EXPECT_EQ(hist.bucketIndex(1e300), 8);
}

TEST(LogHistogramTest, BucketIndexStableAcrossDecades)
{
    // The log-based index must agree with the bound invariant for
    // every bucket of the default latency layout.
    LogHistogram hist;
    for (int i = 0; i < hist.options().bucketCount; ++i) {
        double bound = hist.bucketUpperBound(i);
        EXPECT_EQ(hist.bucketIndex(bound), i) << "at bound " << i;
        EXPECT_EQ(hist.bucketIndex(bound * 1.0000001), i + 1)
            << "just past bound " << i;
    }
}

TEST(LogHistogramTest, RejectsBadLayouts)
{
    HistogramOptions options;
    options.bucketCount = 0;
    EXPECT_THROW(LogHistogram{options}, FatalError);
    options = HistogramOptions{};
    options.growth = 1.0;
    EXPECT_THROW(LogHistogram{options}, FatalError);
    options = HistogramOptions{};
    options.firstBound = 0.0;
    EXPECT_THROW(LogHistogram{options}, FatalError);
}

TEST(LogHistogramTest, EmptyHistogramIsAllZero)
{
    LogHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.99), 0.0);
}

TEST(LogHistogramTest, SingleSampleQuantilesAreExact)
{
    LogHistogram hist;
    hist.record(3.7e-3);
    EXPECT_EQ(hist.count(), 1u);
    // Min/max clamping makes every quantile exact with one sample.
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.quantile(0.99), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.min(), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.max(), 3.7e-3);
    EXPECT_DOUBLE_EQ(hist.mean(), 3.7e-3);
}

TEST(LogHistogramTest, HeavyTailPercentiles)
{
    // 990 fast samples at ~1ms, 10 stragglers at ~1s: p50 must stay
    // near the body, p99 must reach into the tail, max is exact.
    LogHistogram hist;
    for (int i = 0; i < 990; ++i)
        hist.record(1e-3);
    for (int i = 0; i < 10; ++i)
        hist.record(1.0);
    EXPECT_EQ(hist.count(), 1000u);

    double p50 = hist.quantile(0.5);
    EXPECT_GE(p50, 0.5e-3);
    EXPECT_LE(p50, 2e-3); // within the 2x bucket of the body

    double p99 = hist.quantile(0.99);
    EXPECT_LE(p99, 2e-3); // rank 990 is still a fast sample

    double p995 = hist.quantile(0.995);
    EXPECT_GE(p995, 0.5); // rank 995 is a straggler

    EXPECT_DOUBLE_EQ(hist.max(), 1.0);
    EXPECT_DOUBLE_EQ(hist.min(), 1e-3);
    EXPECT_NEAR(hist.sum(), 990 * 1e-3 + 10.0, 1e-9);
}

TEST(LogHistogramTest, QuantilesAreMonotonic)
{
    LogHistogram hist;
    for (int i = 1; i <= 1000; ++i)
        hist.record(i * 1e-5);
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        double v = hist.quantile(q);
        EXPECT_GE(v, prev) << "at q=" << q;
        prev = v;
    }
}

TEST(LogHistogramTest, OverflowSamplesReportObservedMax)
{
    HistogramOptions options;
    options.firstBound = 1.0;
    options.growth = 2.0;
    options.bucketCount = 4; // finite range caps at 16
    LogHistogram hist(options);
    hist.record(1000.0);
    hist.record(2000.0);
    // The overflow bucket interpolates over [observed min, observed
    // max], never the meaningless finite cap.
    double p99 = hist.quantile(0.99);
    EXPECT_GE(p99, 1000.0);
    EXPECT_LE(p99, 2000.0);
    EXPECT_DOUBLE_EQ(hist.max(), 2000.0);
}

TEST(LogHistogramTest, ConcurrentRecordingFromEightThreads)
{
    constexpr int threads = 8;
    constexpr int per_thread = 20000;
    LogHistogram hist;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&hist, t]() {
            for (int i = 0; i < per_thread; ++i) {
                // Spread samples across several buckets per thread.
                hist.record(1e-5 * (1 + (i + t) % 16));
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(hist.count(),
              static_cast<uint64_t>(threads) * per_thread);
    // Every recorded sample must be present in some bucket.
    auto snap = hist.snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t c : snap.buckets)
        bucket_total += c;
    EXPECT_EQ(bucket_total, hist.count());
    EXPECT_DOUBLE_EQ(hist.min(), 1e-5);
    EXPECT_DOUBLE_EQ(hist.max(), 16e-5);
    // The atomic-CAS sum must equal the exact arithmetic total.
    double expected_sum = 0.0;
    for (int t = 0; t < threads; ++t) {
        for (int i = 0; i < per_thread; ++i)
            expected_sum += 1e-5 * (1 + (i + t) % 16);
    }
    EXPECT_NEAR(hist.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(LogHistogramTest, SnapshotMatchesLiveQueries)
{
    LogHistogram hist;
    for (int i = 1; i <= 100; ++i)
        hist.record(i * 1e-4);
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, hist.count());
    EXPECT_DOUBLE_EQ(snap.sum, hist.sum());
    EXPECT_DOUBLE_EQ(snap.min, hist.min());
    EXPECT_DOUBLE_EQ(snap.max, hist.max());
    EXPECT_DOUBLE_EQ(snap.quantile(0.95), hist.quantile(0.95));
}

TEST(HistogramExemplarTest, DisabledByDefault)
{
    LogHistogram hist;
    hist.record(1e-3, /*traceId=*/42, /*ref=*/7);
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, 1u);
    // No exemplar storage unless opted in: snapshots stay lean and
    // the plain Prometheus rendering stays byte-stable.
    EXPECT_TRUE(snap.exemplars.empty());
}

TEST(HistogramExemplarTest, RecordAttachesExemplarToBucket)
{
    HistogramOptions options;
    options.firstBound = 1e-3;
    options.growth = 2.0;
    options.bucketCount = 4;
    options.exemplars = true;
    LogHistogram hist(options);

    hist.record(1.5e-3, /*traceId=*/0xabc, /*ref=*/17);
    auto snap = hist.snapshot();
    ASSERT_EQ(snap.exemplars.size(), snap.buckets.size());

    int bucket = hist.bucketIndex(1.5e-3);
    ASSERT_GE(bucket, 0);
    const Exemplar &ex = snap.exemplars[size_t(bucket)];
    EXPECT_TRUE(ex.valid);
    EXPECT_EQ(ex.traceId, 0xabcu);
    EXPECT_EQ(ex.ref, 17u);
    EXPECT_DOUBLE_EQ(ex.value, 1.5e-3);

    // Untouched buckets carry no exemplar.
    for (size_t i = 0; i < snap.exemplars.size(); ++i)
        if (i != size_t(bucket))
            EXPECT_FALSE(snap.exemplars[i].valid);
}

TEST(HistogramExemplarTest, MostRecentObservationWins)
{
    HistogramOptions options;
    options.exemplars = true;
    LogHistogram hist(options);

    hist.record(2e-3, 1, 100);
    hist.record(2e-3, 2, 200); // same bucket, newer request
    auto snap = hist.snapshot();
    int bucket = hist.bucketIndex(2e-3);
    const Exemplar &ex = snap.exemplars[size_t(bucket)];
    EXPECT_TRUE(ex.valid);
    EXPECT_EQ(ex.traceId, 2u);
    EXPECT_EQ(ex.ref, 200u);
}

TEST(HistogramExemplarTest, TwoArgRecordLeavesExemplarIntact)
{
    HistogramOptions options;
    options.exemplars = true;
    LogHistogram hist(options);

    hist.record(2e-3, 9, 90);
    hist.record(2e-3); // untraced observation, no exemplar refresh
    auto snap = hist.snapshot();
    int bucket = hist.bucketIndex(2e-3);
    EXPECT_EQ(snap.buckets[size_t(bucket)], 2u);
    EXPECT_TRUE(snap.exemplars[size_t(bucket)].valid);
    EXPECT_EQ(snap.exemplars[size_t(bucket)].traceId, 9u);
}

TEST(HistogramExemplarTest, ConcurrentWritersNeverTearSlots)
{
    // Hammer one histogram from many threads with exemplar-bearing
    // observations; a snapshotting reader must only ever see
    // (traceId, ref, value) triples written together. Runs under
    // TSan via scripts/check_build.sh.
    HistogramOptions options;
    options.exemplars = true;
    LogHistogram hist(options);

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&]() {
        while (!stop.load()) {
            auto snap = hist.snapshot();
            for (const Exemplar &ex : snap.exemplars) {
                if (!ex.valid)
                    continue;
                // Writers keep ref == traceId * 10 and value
                // derived from traceId; any mismatch is a torn
                // read slipping past the seqlock.
                if (ex.ref != ex.traceId * 10)
                    torn.fetch_add(1);
            }
        }
    });

    constexpr int kWriters = 4;
    constexpr int kPerWriter = 50000;
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w]() {
            for (int i = 0; i < kPerWriter; ++i) {
                uint64_t trace_id =
                    uint64_t(w) * kPerWriter + uint64_t(i) + 1;
                double value =
                    1e-6 * double(1 + ((w * 7 + i) % 1000));
                hist.record(value, trace_id, trace_id * 10);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(hist.count(), uint64_t(kWriters) * kPerWriter);
}

} // namespace
} // namespace telemetry
} // namespace djinn
