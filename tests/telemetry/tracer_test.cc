/**
 * @file
 * Tests for the trace ring, the Chrome trace-event exporter, the
 * request-summary CSV, and the background sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/tracer.hh"

using namespace djinn;
using telemetry::TraceEvent;
using telemetry::Tracer;

namespace {

/**
 * Minimal recursive-descent JSON syntax checker: accepts exactly
 * the value grammar (objects, arrays, strings with escapes,
 * numbers, true/false/null). Good enough to prove the exporter
 * emits well-formed JSON without a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                char c = text_[pos_];
                if (c == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", c)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(text_[pos_]) <
                       0x20) {
                return false; // raw control character
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

TraceEvent
makeSpan(const std::string &name, const std::string &track,
         uint64_t trace_id, uint64_t span_id, uint64_t parent,
         int64_t start_us, int64_t dur_us)
{
    TraceEvent e;
    e.name = name;
    e.category = "test";
    e.track = track;
    e.traceId = trace_id;
    e.spanId = span_id;
    e.parentSpanId = parent;
    e.startUs = start_us;
    e.durationUs = dur_us;
    return e;
}

TEST(TraceContextTest, MintedContextsAreDistinctAndSampled)
{
    auto a = telemetry::makeTraceContext();
    auto b = telemetry::makeTraceContext();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(a.sampled());
    EXPECT_NE(a.traceId, b.traceId);
    EXPECT_NE(a.spanId, b.spanId);
    EXPECT_NE(a.traceId, a.spanId);

    auto unsampled = telemetry::makeTraceContext(false);
    EXPECT_TRUE(unsampled.valid());
    EXPECT_FALSE(unsampled.sampled());
}

TEST(TraceContextTest, HexRendering)
{
    EXPECT_EQ(telemetry::traceIdToHex(0), "0000000000000000");
    EXPECT_EQ(telemetry::traceIdToHex(0xdeadbeefull),
              "00000000deadbeef");
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops)
{
    Tracer tracer(4);
    for (int i = 0; i < 7; ++i)
        tracer.record(makeSpan("e" + std::to_string(i), "t", 1,
                               static_cast<uint64_t>(i + 1), 0,
                               i * 10, 5));
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 3u);
    auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest three were overwritten; e3..e6 remain, in order.
    EXPECT_EQ(events.front().name, "e3");
    EXPECT_EQ(events.back().name, "e6");

    auto last_two = tracer.events(2);
    ASSERT_EQ(last_two.size(), 2u);
    EXPECT_EQ(last_two[0].name, "e5");
    EXPECT_EQ(last_two[1].name, "e6");
}

TEST(TracerTest, ClearEmptiesEverything)
{
    Tracer tracer(8);
    tracer.record(makeSpan("a", "t", 1, 2, 0, 0, 1));
    tracer.recordRequest({1, "m", 1, 4, 0.5});
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_TRUE(tracer.recentRequests().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ChromeTraceTest, OutputIsValidJson)
{
    Tracer tracer;
    tracer.record(makeSpan("decode \"x\"\n", "worker-1", 0xabc, 2,
                           1, 100, 50));
    tracer.recordCounter("queue_depth", 3.5);
    std::string json = telemetry::renderChromeTrace(tracer.events());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST(ChromeTraceTest, SpansNestAndTimestampsMonotonePerTrack)
{
    Tracer tracer;
    // Parent span encloses two children on the same track; a second
    // track interleaves.
    tracer.record(makeSpan("child1", "worker", 7, 11, 10, 110, 20));
    tracer.record(makeSpan("parent", "worker", 7, 10, 0, 100, 100));
    tracer.record(makeSpan("child2", "worker", 7, 12, 10, 140, 30));
    tracer.record(makeSpan("other", "batch", 7, 13, 10, 105, 10));

    auto events = tracer.events();
    std::string json = telemetry::renderChromeTrace(events);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;

    // The exporter sorts by start time, so per-track (and overall)
    // "X" event timestamps are monotone — required for correct
    // nesting of complete events in the viewer.
    std::vector<TraceEvent> sorted = events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startUs < b.startUs;
                     });
    EXPECT_EQ(sorted.front().name, "parent");
    int64_t prev = -1;
    for (const auto &e : sorted) {
        EXPECT_GE(e.startUs, prev);
        prev = e.startUs;
    }

    // Children fall entirely inside the parent interval, so the
    // viewer nests them under it on the "worker" track.
    const TraceEvent *parent = nullptr;
    for (const auto &e : events) {
        if (e.name == "parent")
            parent = &e;
    }
    ASSERT_NE(parent, nullptr);
    for (const auto &e : events) {
        if (e.parentSpanId != parent->spanId || e.track != "worker")
            continue;
        EXPECT_GE(e.startUs, parent->startUs);
        EXPECT_LE(e.startUs + e.durationUs,
                  parent->startUs + parent->durationUs);
    }

    // Parent/child ids surface in args so traces can be filtered.
    EXPECT_NE(json.find("\"parent_span_id\": "
                        "\"000000000000000a\""),
              std::string::npos);
}

TEST(ChromeTraceTest, TracksBecomeNamedThreads)
{
    Tracer tracer;
    tracer.record(makeSpan("a", "client", 1, 2, 0, 0, 1));
    tracer.record(makeSpan("b", "worker-5", 1, 3, 0, 1, 1));
    std::string json = telemetry::renderChromeTrace(tracer.events());
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"client\""), std::string::npos);
    EXPECT_NE(json.find("\"worker-5\""), std::string::npos);
}

TEST(RequestsCsvTest, HeaderAndRows)
{
    Tracer tracer;
    tracer.recordRequest({0x10, "alexnet", 2, 16, 12.5});
    tracer.recordRequest({0, "mnist", 1, 1, 0.75});
    std::string csv = telemetry::renderRequestsCsv(
        tracer.recentRequests());
    EXPECT_NE(csv.find("trace_id,model,rows,batch_rows,service_ms"),
              std::string::npos);
    EXPECT_NE(csv.find("0000000000000010,alexnet,2,16,12.500"),
              std::string::npos);
    EXPECT_NE(csv.find("0000000000000000,mnist,1,1,0.750"),
              std::string::npos);
}

TEST(SamplerTest, SampleOnceRecordsGaugesAndRss)
{
    telemetry::MetricRegistry metrics;
    metrics.gauge("queue_depth", {{"model", "tiny"}}).set(4.0);
    metrics.counter("ignored_total").inc(); // counters not sampled

    Tracer tracer;
    bool hook_ran = false;
    telemetry::BackgroundSampler sampler(
        tracer, metrics, 1.0,
        [&hook_ran](Tracer &t) {
            hook_ran = true;
            t.recordCounter("custom", 1.0);
        });
    sampler.sampleOnce();

    EXPECT_TRUE(hook_ran);
    bool saw_gauge = false, saw_rss = false, saw_custom = false,
         saw_counter = false;
    for (const auto &e : tracer.events()) {
        EXPECT_TRUE(e.counter);
        if (e.name.find("queue_depth") != std::string::npos)
            saw_gauge = true;
        if (e.name == "process_rss_bytes") {
            saw_rss = true;
            EXPECT_GT(e.value, 0.0);
        }
        if (e.name == "custom")
            saw_custom = true;
        if (e.name.find("ignored_total") != std::string::npos)
            saw_counter = true;
    }
    EXPECT_TRUE(saw_gauge);
    EXPECT_TRUE(saw_rss);
    EXPECT_TRUE(saw_custom);
    EXPECT_FALSE(saw_counter);
}

TEST(SamplerTest, StartStopIsClean)
{
    telemetry::MetricRegistry metrics;
    Tracer tracer;
    telemetry::BackgroundSampler sampler(tracer, metrics, 1e-3);
    sampler.start();
    sampler.start(); // no-op
    while (tracer.size() == 0)
        std::this_thread::yield();
    sampler.stop();
    sampler.stop(); // no-op
    EXPECT_GT(tracer.size(), 0u);
}

} // namespace
