/**
 * @file
 * Tests for the health watchdog: each rule (staleness, SLO burn
 * rate, shed ceiling, queue growth, stall) driven deterministically
 * through a manually-fed TimeSeriesStore with an injected clock,
 * plus the drain clamp — a graceful drain must read `degraded`,
 * never `unhealthy`, even when the stall watchdog would otherwise
 * fire (the false-positive regression test).
 */

#include "telemetry/health.hh"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/slo.hh"
#include "telemetry/timeseries.hh"

namespace djinn {
namespace telemetry {
namespace {

/** Registry + store + monitor with a controllable clock. */
struct HealthFixture {
    MetricRegistry registry;
    TimeSeriesStore store;
    double now = 0.0;
    HealthMonitor monitor;

    explicit HealthFixture(const HealthOptions &options = {})
        : store(registry),
          monitor(store, registry, options,
                  [this] { return now; })
    {
    }

    void
    sampleAt(double t)
    {
        now = t;
        store.sample(t);
    }
};

TEST(Health, OkWhenQuiet)
{
    HealthFixture f;
    Counter &requests = f.registry.counter("djinn_requests_total",
                                           {{"model", "m"}});
    for (int t = 0; t <= 10; ++t) {
        requests.inc(5);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Ok);
    EXPECT_TRUE(verdict.reasons.empty());
}

TEST(Health, StaleSamplerDegrades)
{
    HealthFixture f;
    f.registry.counter("djinn_requests_total").inc();
    f.sampleAt(0.0);
    f.now = 100.0; // heartbeat stopped 100 s ago
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    ASSERT_EQ(verdict.reasons.size(), 1u);
    EXPECT_EQ(verdict.reasons[0].rule, "stale");

    // No samples at all is also stale.
    HealthFixture empty;
    verdict = empty.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    ASSERT_EQ(verdict.reasons.size(), 1u);
    EXPECT_EQ(verdict.reasons[0].detail, "no samples recorded");
}

TEST(Health, BurnRateThresholds)
{
    HealthFixture f;
    Gauge &burn = f.registry.gauge(sloBurnRateMetricName,
                                   {{"model", "m"}});
    Counter &requests = f.registry.counter("djinn_requests_total",
                                           {{"model", "m"}});
    // Keep the sampler fresh while the burn gauge sits at 3x: over
    // budget (degraded) but under the 10x unhealthy ceiling. The
    // model must be serving traffic for the rule to consider it.
    for (int t = 0; t <= 20; ++t) {
        burn.set(3.0);
        requests.inc(5);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    ASSERT_EQ(verdict.reasons.size(), 1u);
    EXPECT_EQ(verdict.reasons[0].rule, "burn_rate");
    EXPECT_NE(verdict.reasons[0].detail.find("m: "),
              std::string::npos);

    for (int t = 21; t <= 40; ++t) {
        burn.set(25.0);
        requests.inc(5);
        f.sampleAt(static_cast<double>(t));
    }
    verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Unhealthy);
}

TEST(Health, IdleModelBurnGaugeNeverDegrades)
{
    // The satellite regression test: a burn gauge stuck high for a
    // model with ZERO request traffic in the window (a stale burst,
    // or a gauge that was never idle-reset) must not trip the
    // burn-rate rule — idle models cannot be burning budget.
    // Pre-fix the rule alerted on the gauge alone and this read
    // Unhealthy.
    HealthFixture f;
    Gauge &burn = f.registry.gauge(sloBurnRateMetricName,
                                   {{"model", "idle"}});
    f.registry.counter("djinn_requests_total",
                       {{"model", "idle"}});
    for (int t = 0; t <= 20; ++t) {
        burn.set(25.0);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Ok) << verdict.toString();
    EXPECT_TRUE(verdict.reasons.empty());
}

TEST(Health, ShedRateCeiling)
{
    HealthFixture f;
    Counter &served = f.registry.counter("djinn_requests_total",
                                         {{"model", "m"}});
    Counter &shed = f.registry.counter(
        "djinn_shed_total",
        {{"model", "m"}, {"reason", "queue_full"}});
    // 10% of offered load shed: above the 5% degraded ceiling,
    // below the 50% unhealthy one.
    for (int t = 0; t <= 30; ++t) {
        served.inc(9);
        shed.inc(1);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    ASSERT_EQ(verdict.reasons.size(), 1u);
    EXPECT_EQ(verdict.reasons[0].rule, "shed_rate");

    // Majority shed is an outage.
    HealthFixture g;
    Counter &served2 = g.registry.counter("djinn_requests_total",
                                          {{"model", "m"}});
    Counter &shed2 = g.registry.counter(
        "djinn_shed_total",
        {{"model", "m"}, {"reason", "queue_full"}});
    for (int t = 0; t <= 30; ++t) {
        served2.inc(1);
        shed2.inc(9);
        g.sampleAt(static_cast<double>(t));
    }
    verdict = g.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Unhealthy);
}

TEST(Health, QueueGrowthNeedsDepthAndSlope)
{
    // Deep AND growing: flagged.
    HealthFixture f;
    Gauge &depth =
        f.registry.gauge("djinn_batch_queue_depth_total");
    for (int t = 0; t <= 30; ++t) {
        depth.set(4.0 + 2.0 * t);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    ASSERT_EQ(verdict.reasons.size(), 1u);
    EXPECT_EQ(verdict.reasons[0].rule, "queue_growth");

    // Shallow but growing: a transient, not a page.
    HealthFixture g;
    Gauge &shallow =
        g.registry.gauge("djinn_batch_queue_depth_total");
    for (int t = 0; t <= 30; ++t) {
        shallow.set(0.05 * t);
        g.sampleAt(static_cast<double>(t));
    }
    EXPECT_EQ(g.monitor.evaluateNow().level, HealthLevel::Ok);

    // Deep but stable with progress: also fine.
    HealthFixture h;
    Gauge &stable =
        h.registry.gauge("djinn_batch_queue_depth_total");
    Counter &progress =
        h.registry.counter("djinn_batches_total");
    for (int t = 0; t <= 30; ++t) {
        stable.set(20.0);
        progress.inc(3);
        h.sampleAt(static_cast<double>(t));
    }
    EXPECT_EQ(h.monitor.evaluateNow().level, HealthLevel::Ok);
}

TEST(Health, StallWatchdogPages)
{
    HealthFixture f;
    Gauge &depth =
        f.registry.gauge("djinn_batch_queue_depth_total");
    Counter &batches = f.registry.counter("djinn_batches_total");
    Counter &requests =
        f.registry.counter("djinn_requests_total");
    // Healthy era, then the progress counters freeze while work
    // stays queued — a wedged batcher.
    for (int t = 0; t <= 10; ++t) {
        depth.set(2.0);
        batches.inc();
        requests.inc(4);
        f.sampleAt(static_cast<double>(t));
    }
    for (int t = 11; t <= 40; ++t) {
        depth.set(6.0);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Unhealthy);
    bool sawStall = false;
    for (const auto &reason : verdict.reasons)
        sawStall = sawStall || reason.rule == "stall";
    EXPECT_TRUE(sawStall) << verdict.toString();
}

TEST(Health, GracefulDrainIsNeverUnhealthy)
{
    // The satellite regression test: the exact stall shape above,
    // but flagged as a drain — the watchdog must stand down and the
    // verdict must clamp to degraded.
    HealthFixture f;
    Gauge &depth =
        f.registry.gauge("djinn_batch_queue_depth_total");
    Counter &batches = f.registry.counter("djinn_batches_total");
    for (int t = 0; t <= 10; ++t) {
        depth.set(2.0);
        batches.inc();
        f.sampleAt(static_cast<double>(t));
    }
    f.monitor.setDraining(true);
    for (int t = 11; t <= 40; ++t) {
        depth.set(6.0);
        f.sampleAt(static_cast<double>(t));
    }
    HealthVerdict verdict = f.monitor.evaluateNow();
    EXPECT_EQ(verdict.level, HealthLevel::Degraded);
    bool sawDraining = false;
    for (const auto &reason : verdict.reasons) {
        EXPECT_NE(reason.rule, "stall") << verdict.toString();
        sawDraining = sawDraining || reason.rule == "draining";
    }
    EXPECT_TRUE(sawDraining);

    // Draining with a perfectly healthy store is still degraded:
    // the server is refusing new work on purpose.
    HealthFixture g;
    g.registry.counter("djinn_requests_total").inc();
    for (int t = 0; t <= 5; ++t)
        g.sampleAt(static_cast<double>(t));
    g.monitor.setDraining(true);
    EXPECT_EQ(g.monitor.evaluateNow().level,
              HealthLevel::Degraded);
    g.monitor.setDraining(false);
    EXPECT_EQ(g.monitor.evaluateNow().level, HealthLevel::Ok);
}

TEST(Health, TickExportsGaugesAndRetainsVerdict)
{
    HealthFixture f;
    Gauge &burn = f.registry.gauge(sloBurnRateMetricName,
                                   {{"model", "m"}});
    Counter &requests = f.registry.counter("djinn_requests_total",
                                           {{"model", "m"}});
    for (int t = 0; t <= 20; ++t) {
        burn.set(3.0);
        requests.inc(5);
        f.sampleAt(static_cast<double>(t));
    }
    f.monitor.tick();
    EXPECT_EQ(f.monitor.lastVerdict().level,
              HealthLevel::Degraded);

    double health = -1.0, reasonBurn = -1.0, reasonStall = -1.0;
    for (const auto &sample : f.registry.snapshot()) {
        if (sample.name == "djinn_health")
            health = sample.value;
        if (sample.name == "djinn_health_reason") {
            auto rule = sample.labels.find("rule");
            ASSERT_NE(rule, sample.labels.end());
            if (rule->second == "burn_rate")
                reasonBurn = sample.value;
            if (rule->second == "stall")
                reasonStall = sample.value;
        }
    }
    EXPECT_EQ(health, 1.0);
    EXPECT_EQ(reasonBurn, 1.0);
    EXPECT_EQ(reasonStall, 0.0); // pre-registered, quiescent
}

TEST(Health, DeterministicEvaluation)
{
    // Same feed, two monitors: bit-identical renderings.
    auto run = [] {
        HealthFixture f;
        Counter &served = f.registry.counter(
            "djinn_requests_total", {{"model", "m"}});
        Counter &shed = f.registry.counter(
            "djinn_shed_total",
            {{"model", "m"}, {"reason", "queue_full"}});
        std::string out;
        for (int t = 0; t <= 30; ++t) {
            served.inc(7);
            shed.inc(1);
            f.sampleAt(static_cast<double>(t) * 0.25);
            out += f.monitor.evaluateNow().toString();
            out += "\n";
        }
        return out;
    };
    EXPECT_EQ(run(), run());
}

TEST(Health, RenderHealthJsonShape)
{
    HealthVerdict verdict;
    verdict.level = HealthLevel::Degraded;
    verdict.evaluatedAt = 12.5;
    verdict.reasons.push_back(
        {"shed_rate", HealthLevel::Degraded, "shedding 0.1"});
    std::string json = renderHealthJson(verdict, 42.0);
    EXPECT_NE(json.find("\"status\": \"degraded\""),
              std::string::npos);
    EXPECT_NE(json.find("\"uptime_seconds\": 42.000"),
              std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"shed_rate\""),
              std::string::npos);

    // Negative uptime omits the field.
    std::string bare = renderHealthJson(verdict);
    EXPECT_EQ(bare.find("uptime_seconds"), std::string::npos);
}

} // namespace
} // namespace telemetry
} // namespace djinn
