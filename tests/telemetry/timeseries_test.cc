/**
 * @file
 * Tests for the fixed-memory time-series store: windowed
 * aggregates, ring retention, lazy metric adoption, JSON rendering,
 * and — the store's core contract — an allocation-free sample path
 * once every metric has been synced, proven with a counting global
 * operator new.
 */

#include "telemetry/timeseries.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "telemetry/histogram.hh"
#include "telemetry/metrics.hh"

// ---------------------------------------------------------------
// Counting allocator hooks. Only counts while armed, so gtest's own
// bookkeeping does not pollute the assertion.

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

} // namespace

void *
operator new(size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}

namespace djinn {
namespace telemetry {
namespace {

TEST(TimeSeries, WindowedRateAndAvg)
{
    MetricRegistry registry;
    Counter &requests =
        registry.counter("djinn_requests_total", {{"model", "a"}});
    Gauge &depth = registry.gauge("djinn_batch_queue_depth_total");

    TimeSeriesStore store(registry);
    // 10 requests/s for 10 seconds; depth ramps 0..9.
    for (int t = 0; t <= 10; ++t) {
        if (t > 0)
            requests.inc(10);
        depth.set(static_cast<double>(t));
        store.sample(static_cast<double>(t));
    }

    TimeSeriesStore::Window window;
    window.name = "djinn_requests_total";
    window.seconds = 10.0;
    auto rate =
        store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(rate.valid);
    EXPECT_NEAR(rate.value, 10.0, 1e-9);

    window.name = "djinn_batch_queue_depth_total";
    auto avg = store.windowStat(window, TimeSeriesStore::Op::Avg);
    ASSERT_TRUE(avg.valid);
    EXPECT_NEAR(avg.value, 5.0, 1e-9);

    auto slope =
        store.windowStat(window, TimeSeriesStore::Op::Slope);
    ASSERT_TRUE(slope.valid);
    EXPECT_NEAR(slope.value, 1.0, 1e-9);

    auto maxStat =
        store.windowStat(window, TimeSeriesStore::Op::Max);
    ASSERT_TRUE(maxStat.valid);
    EXPECT_NEAR(maxStat.value, 10.0, 1e-9);

    // Rate over a gauge is meaningless and must come back invalid.
    auto gaugeRate =
        store.windowStat(window, TimeSeriesStore::Op::Rate);
    EXPECT_FALSE(gaugeRate.valid);
}

TEST(TimeSeries, WindowAnchorsAtRequestedNow)
{
    MetricRegistry registry;
    Counter &c = registry.counter("c_total");
    TimeSeriesStore store(registry);
    for (int t = 0; t <= 20; ++t) {
        c.inc(t < 10 ? 1 : 5); // rate changes at t=10
        store.sample(static_cast<double>(t));
    }
    TimeSeriesStore::Window window;
    window.name = "c_total";
    window.seconds = 5.0;
    window.now = 8.0; // early window: rate 1/s
    auto early =
        store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(early.valid);
    EXPECT_NEAR(early.value, 1.0, 1e-9);
    window.now = 20.0; // late window: rate 5/s
    auto late = store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(late.valid);
    EXPECT_NEAR(late.value, 5.0, 1e-9);
}

TEST(TimeSeries, RingWrapKeepsNewestHistory)
{
    MetricRegistry registry;
    Gauge &g = registry.gauge("g");
    TimeSeriesOptions options;
    options.capacity = 8;
    TimeSeriesStore store(registry, options);
    for (int t = 0; t < 20; ++t) {
        g.set(static_cast<double>(t));
        store.sample(static_cast<double>(t));
    }
    EXPECT_EQ(store.sampleCount(), 8u);
    double newest = 0.0;
    ASSERT_TRUE(store.newestTime(&newest));
    EXPECT_NEAR(newest, 19.0, 1e-9);

    // Only slots 12..19 remain; a window over everything sees them.
    TimeSeriesStore::Window window;
    window.name = "g";
    window.seconds = 100.0;
    auto minStat =
        store.windowStat(window, TimeSeriesStore::Op::Min);
    ASSERT_TRUE(minStat.valid);
    EXPECT_NEAR(minStat.value, 12.0, 1e-9);
}

TEST(TimeSeries, HistogramWindowQuantile)
{
    MetricRegistry registry;
    LogHistogram &hist = registry.histogram("lat_seconds");
    TimeSeriesStore store(registry);

    // Empty baseline, then a 1 ms era, then a 100 ms era.
    store.sample(0.0);
    for (int i = 0; i < 100; ++i)
        hist.record(1e-3);
    store.sample(1.0);
    for (int i = 0; i < 100; ++i)
        hist.record(0.1);
    store.sample(2.0);

    // Window covering only the second era sees ~100 ms, not the
    // cumulative mixture.
    TimeSeriesStore::Window window;
    window.name = "lat_seconds";
    window.seconds = 1.0;
    window.now = 2.0;
    auto p50 = store.windowStat(
        window, TimeSeriesStore::Op::Quantile, 0.5);
    ASSERT_TRUE(p50.valid);
    EXPECT_GT(p50.value, 0.03);
    EXPECT_LT(p50.value, 0.3);

    // Full window mixes both eras; p25 lands in the 1 ms era.
    window.seconds = 10.0;
    auto p25 = store.windowStat(
        window, TimeSeriesStore::Op::Quantile, 0.25);
    ASSERT_TRUE(p25.valid);
    EXPECT_LT(p25.value, 0.01);
}

TEST(TimeSeries, AdoptsLateRegisteredMetrics)
{
    MetricRegistry registry;
    Counter &a = registry.counter("a_total");
    TimeSeriesStore store(registry);
    a.inc();
    store.sample(0.0);
    EXPECT_EQ(store.trackCount(), 1u);

    Counter &b = registry.counter("b_total");
    b.inc(7);
    store.sample(1.0);
    b.inc(7);
    store.sample(2.0);
    EXPECT_EQ(store.trackCount(), 2u);

    TimeSeriesStore::Window window;
    window.name = "b_total";
    window.seconds = 10.0;
    auto rate =
        store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(rate.valid);
    EXPECT_NEAR(rate.value, 7.0, 1e-9);
}

TEST(TimeSeries, LabelSubsetMatching)
{
    MetricRegistry registry;
    registry.counter("r_total", {{"model", "a"}, {"gpu", "0"}})
        .inc(10);
    registry.counter("r_total", {{"model", "b"}, {"gpu", "0"}})
        .inc(20);
    TimeSeriesStore store(registry);
    store.sample(0.0);
    registry.counter("r_total", {{"model", "a"}, {"gpu", "0"}})
        .inc(10);
    registry.counter("r_total", {{"model", "b"}, {"gpu", "0"}})
        .inc(20);
    store.sample(1.0);

    EXPECT_EQ(store.trackIds("r_total").size(), 2u);
    EXPECT_EQ(
        store.trackIds("r_total", {{"model", "a"}}).size(), 1u);

    TimeSeriesStore::Window window;
    window.name = "r_total";
    window.seconds = 10.0;
    window.labels = {{"model", "b"}};
    auto rate =
        store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(rate.valid);
    EXPECT_NEAR(rate.value, 20.0, 1e-9);

    // Without the label filter both tracks sum.
    window.labels = {};
    rate = store.windowStat(window, TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(rate.valid);
    EXPECT_NEAR(rate.value, 30.0, 1e-9);
}

TEST(TimeSeries, SamplePathAllocationFree)
{
    MetricRegistry registry;
    Counter &requests =
        registry.counter("djinn_requests_total", {{"model", "m"}});
    Gauge &depth = registry.gauge("djinn_batch_queue_depth_total");
    LogHistogram &hist = registry.histogram("lat_seconds");

    TimeSeriesStore store(registry);
    // One warm-up sample adopts every metric and sizes the rings.
    store.sample(0.0);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int t = 1; t <= 100; ++t) {
        requests.inc();
        depth.set(static_cast<double>(t));
        hist.record(1e-3);
        store.sample(static_cast<double>(t));
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "sample() allocated on the hot path";
}

TEST(TimeSeries, SeriesAndJsonRendering)
{
    MetricRegistry registry;
    Counter &c =
        registry.counter("djinn_requests_total", {{"model", "m"}});
    TimeSeriesStore store(registry);
    for (int t = 0; t <= 5; ++t) {
        if (t > 0)
            c.inc(3);
        store.sample(static_cast<double>(t));
    }

    TimeSeriesStore::Window window;
    window.name = "djinn_requests_total";
    window.seconds = 10.0;
    auto series = store.series(window);
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].name, "djinn_requests_total");
    // Counters render per-step rates: the first slot has no
    // predecessor, so 5 points from 6 slots.
    ASSERT_EQ(series[0].points.size(), 5u);
    EXPECT_NEAR(series[0].points.back().value, 3.0, 1e-9);

    // Step decimation halves the point count.
    auto coarse = store.series(window, 2.0);
    ASSERT_EQ(coarse.size(), 1u);
    EXPECT_LT(coarse[0].points.size(),
              series[0].points.size());

    std::string json = renderTimeSeriesJson(store, window);
    EXPECT_NE(json.find("\"metric\": \"djinn_requests_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"model\": \"m\""), std::string::npos);
    EXPECT_NE(json.find("\"points\": ["), std::string::npos);
}

TEST(TimeSeries, MaxTracksCapSkipsExcess)
{
    MetricRegistry registry;
    TimeSeriesOptions options;
    options.maxTracks = 3;
    for (int i = 0; i < 5; ++i)
        registry.counter("m" + std::to_string(i) + "_total");
    TimeSeriesStore store(registry, options);
    store.sample(0.0);
    EXPECT_EQ(store.trackCount(), 3u);
    EXPECT_EQ(store.skippedTracks(), 2u);
}

TEST(TimeSeries, EmptyStoreAnswersInvalid)
{
    MetricRegistry registry;
    TimeSeriesStore store(registry);
    double t = 0.0;
    EXPECT_FALSE(store.newestTime(&t));
    TimeSeriesStore::Window window;
    window.name = "nothing";
    EXPECT_FALSE(
        store.windowStat(window, TimeSeriesStore::Op::Avg).valid);
    EXPECT_TRUE(store.series(window).empty());
}

} // namespace
} // namespace telemetry
} // namespace djinn
