/**
 * @file
 * Sampling-profiler tests: the lock-free stack ring's push/drain
 * protocol and drop accounting, the collapsed-stack exporter's
 * exact output against a synthetic symbolizer (the golden test the
 * flamegraph.pl contract hangs on), and a live start/stop smoke
 * test that is skipped cleanly where profiling timers or signals
 * are restricted.
 */

#include "telemetry/profiler.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace djinn {
namespace telemetry {
namespace {

StackSample
makeSample(std::initializer_list<uintptr_t> pcs,
           const char *thread)
{
    StackSample s;
    s.depth = 0;
    for (uintptr_t pc : pcs)
        s.pcs[s.depth++] = reinterpret_cast<void *>(pc);
    std::snprintf(s.thread, sizeof(s.thread), "%s", thread);
    return s;
}

TEST(StackRingTest, PushDrainRoundTrip)
{
    StackRing ring(8);
    ring.push(makeSample({0x10, 0x20}, "worker-1"));
    ring.push(makeSample({0x30}, "worker-2"));

    auto samples = ring.drain();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].depth, 2);
    EXPECT_EQ(samples[0].pcs[0], reinterpret_cast<void *>(0x10));
    EXPECT_STREQ(samples[0].thread, "worker-1");
    EXPECT_EQ(samples[1].depth, 1);
    EXPECT_STREQ(samples[1].thread, "worker-2");
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.pushed(), 2u);
}

TEST(StackRingTest, DrainReturnsOnlyNewSamples)
{
    StackRing ring(8);
    ring.push(makeSample({0x1}, "a"));
    EXPECT_EQ(ring.drain().size(), 1u);
    EXPECT_TRUE(ring.drain().empty());
    ring.push(makeSample({0x2}, "b"));
    auto again = ring.drain();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].pcs[0], reinterpret_cast<void *>(0x2));
}

TEST(StackRingTest, OverflowDropsOldestAndCountsThem)
{
    StackRing ring(8); // rounds to 8 slots
    for (uintptr_t i = 1; i <= 20; ++i)
        ring.push(makeSample({i}, "t"));

    auto samples = ring.drain();
    // Only the newest <= capacity survive; the rest count dropped.
    ASSERT_EQ(samples.size(), 8u);
    EXPECT_EQ(samples.front().pcs[0],
              reinterpret_cast<void *>(uintptr_t{13}));
    EXPECT_EQ(samples.back().pcs[0],
              reinterpret_cast<void *>(uintptr_t{20}));
    EXPECT_EQ(ring.dropped(), 12u);
    EXPECT_EQ(ring.pushed(), 20u);
}

TEST(StackRingTest, ConcurrentPushersNeverCorruptSamples)
{
    StackRing ring(64);
    std::atomic<bool> stop{false};
    std::thread pushers[3];
    for (int t = 0; t < 3; ++t) {
        pushers[t] = std::thread([&ring, &stop, t]() {
            while (!stop.load()) {
                ring.push(makeSample(
                    {static_cast<uintptr_t>(t + 1),
                     static_cast<uintptr_t>(t + 1)},
                    "pusher"));
            }
        });
    }
    size_t drained = 0;
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(100);
    while (std::chrono::steady_clock::now() < until) {
        for (const StackSample &s : ring.drain()) {
            // Every drained sample is internally consistent: both
            // frames carry the pusher's id, never a torn mix.
            ASSERT_EQ(s.depth, 2);
            ASSERT_EQ(s.pcs[0], s.pcs[1]);
            ++drained;
        }
    }
    stop.store(true);
    for (auto &p : pushers)
        p.join();
    EXPECT_GT(drained, 0u);
}

TEST(RenderCollapsedTest, GoldenOutputAgainstFakeSymbolizer)
{
    // pcs are deepest-first (as backtrace() captures); the exporter
    // must reverse to root-first, sanitize frame names, aggregate
    // identical stacks, and sort by descending count.
    std::vector<StackSample> samples;
    samples.push_back(makeSample({0x1, 0x2}, "worker-1"));
    samples.push_back(makeSample({0x1, 0x2}, "worker-1"));
    samples.push_back(makeSample({0x3}, ""));

    std::map<uintptr_t, std::string> names{
        {0x1, "leaf fn"},   // space must sanitize to '_'
        {0x2, "root;main"}, // ';' must sanitize to '_'
        {0x3, ""},          // empty must render as '?'
    };
    Symbolizer fake = [&](void *pc) {
        return names.at(reinterpret_cast<uintptr_t>(pc));
    };

    EXPECT_EQ(renderCollapsed(samples, fake),
              "worker-1;root_main;leaf_fn 2\n"
              "unnamed;? 1\n");
}

TEST(RenderCollapsedTest, SortsByCountThenLexicographic)
{
    std::vector<StackSample> samples;
    samples.push_back(makeSample({0x1}, "t"));
    samples.push_back(makeSample({0x2}, "t"));
    samples.push_back(makeSample({0x2}, "t"));
    samples.push_back(makeSample({0x3}, "t"));
    Symbolizer fake = [](void *pc) {
        switch (reinterpret_cast<uintptr_t>(pc)) {
          case 0x1: return std::string("bbb");
          case 0x2: return std::string("hot");
          default: return std::string("aaa");
        }
    };
    EXPECT_EQ(renderCollapsed(samples, fake),
              "t;hot 2\nt;aaa 1\nt;bbb 1\n");
}

TEST(RenderCollapsedTest, EmptyInputRendersEmpty)
{
    EXPECT_EQ(renderCollapsed({}), "");
    // Depth-0 samples (a handler that captured nothing) are
    // skipped, not rendered as bare thread lines.
    std::vector<StackSample> empties(3);
    EXPECT_EQ(renderCollapsed(empties), "");
}

TEST(ProfilerTest, CollectRejectsBadWindows)
{
    auto &p = Profiler::instance();
    EXPECT_FALSE(p.collect(0.0).isOk());
    EXPECT_FALSE(p.collect(-1.0).isOk());
    EXPECT_FALSE(p.collect(61.0).isOk());
}

TEST(ProfilerTest, StartStopSmoke)
{
    auto &p = Profiler::instance();
    Status started = p.start(500);
    if (!started.isOk())
        GTEST_SKIP() << "profiling signals restricted: "
                     << started.toString();
    EXPECT_TRUE(p.running());
    EXPECT_EQ(p.hz(), 500);
    EXPECT_FALSE(p.start(100).isOk()); // double start refused

    // Burn CPU so the ITIMER_PROF timer (which counts consumed CPU
    // time, not wall time) has something to bill against.
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(500);
    volatile uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until)
        sink += sink * 31 + 7;

    uint64_t pushed = p.ring().pushed();
    p.stop();
    EXPECT_FALSE(p.running());
    EXPECT_EQ(p.hz(), 0);
    EXPECT_GT(pushed, 0u);

    auto samples = p.ring().drain();
    EXPECT_FALSE(samples.empty());
    for (const StackSample &s : samples)
        EXPECT_GT(s.depth, 0);
}

TEST(ProfilerTest, CollectSelfStartsWhenStopped)
{
    auto &p = Profiler::instance();
    if (p.running())
        p.stop();

    std::atomic<bool> stop{false};
    std::thread burner([&stop]() {
        volatile uint64_t sink = 0;
        while (!stop.load())
            sink += sink * 31 + 7;
    });
    auto collapsed = p.collect(0.4);
    stop.store(true);
    burner.join();

    if (!collapsed.isOk()) {
        GTEST_SKIP() << "profiling signals restricted: "
                     << collapsed.status().toString();
    }
    EXPECT_FALSE(p.running()); // temporary window stopped itself
    // Every line is collapsed-stack formatted: frames, space,
    // positive count.
    ASSERT_FALSE(collapsed.value().empty());
    std::istringstream lines(collapsed.value());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    }
}

} // namespace
} // namespace telemetry
} // namespace djinn
