/**
 * @file
 * Cycle-accounting tests. The battery runs in any environment: on
 * hosts with a usable PMU it exercises real counter groups, and the
 * forced-fallback cases (a bogus perf event type, or the syscall
 * skipped entirely) prove the clock-only degradation produces a
 * complete phase breakdown — the guarantee containers and
 * perf_event_paranoid >= 3 machines rely on.
 */

#include "telemetry/perf_counters.hh"

#include <gtest/gtest.h>

#include <chrono>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace djinn {
namespace telemetry {
namespace {

/** Spin the CPU for at least @p micros of wall time. */
void
burnCpu(int micros)
{
    using Clock = std::chrono::steady_clock;
    auto until = Clock::now() + std::chrono::microseconds(micros);
    volatile uint64_t sink = 0;
    while (Clock::now() < until)
        sink += sink * 31 + 7;
}

TEST(CounterSetTest, BogusEventTypeFallsBackToClockOnly)
{
    // An unknown event type makes perf_event_open fail with EINVAL,
    // the same degradation path a seccomp-restricted container
    // takes with EACCES.
    CounterSet::Config config;
    config.leaderType = 0xdeadbeefu;
    CounterSet set(config);
    EXPECT_FALSE(set.hardware());

    auto begin = set.snapshot();
    burnCpu(2000);
    auto end = set.snapshot();
    CounterDelta d = CounterSet::delta(begin, end);

    EXPECT_FALSE(d.hardware);
    EXPECT_EQ(d.cycles, 0u);
    EXPECT_EQ(d.instructions, 0u);
    EXPECT_EQ(d.ipc(), 0.0);
    EXPECT_GT(d.wallNs, 0u);
    EXPECT_GT(d.taskClockNs, 0u); // the spin consumed thread CPU
    EXPECT_EQ(d.work(), d.wallNs);
}

TEST(CounterSetTest, DisabledConfigSkipsTheSyscall)
{
    CounterSet::Config config;
    config.disabled = true;
    CounterSet set(config);
    EXPECT_FALSE(set.hardware());

    auto begin = set.snapshot();
    burnCpu(500);
    CounterDelta d = CounterSet::delta(begin, set.snapshot());
    EXPECT_FALSE(d.hardware);
    EXPECT_GT(d.wallNs, 0u);
}

TEST(CounterDeltaTest, AddAccumulatesEveryField)
{
    CounterDelta a;
    a.cycles = 100;
    a.instructions = 200;
    a.cacheRefs = 10;
    a.cacheMisses = 5;
    a.taskClockNs = 1000;
    a.wallNs = 2000;
    a.hardware = true;

    CounterDelta b = a;
    b.cycles = 50;
    a.add(b);
    EXPECT_EQ(a.cycles, 150u);
    EXPECT_EQ(a.instructions, 400u);
    EXPECT_EQ(a.cacheRefs, 20u);
    EXPECT_EQ(a.cacheMisses, 10u);
    EXPECT_EQ(a.taskClockNs, 2000u);
    EXPECT_EQ(a.wallNs, 4000u);
    EXPECT_TRUE(a.hardware);
}

TEST(CounterDeltaTest, IpcIsInstructionsPerCycle)
{
    CounterDelta d;
    d.cycles = 1000;
    d.instructions = 2500;
    d.hardware = true;
    EXPECT_DOUBLE_EQ(d.ipc(), 2.5);

    CounterDelta zero;
    EXPECT_EQ(zero.ipc(), 0.0);
}

TEST(ThreadCounterSetTest, DeltaTracksBusyWork)
{
    CounterSet &set = threadCounterSet();
    auto begin = set.snapshot();
    burnCpu(2000);
    CounterDelta d = CounterSet::delta(begin, set.snapshot());

    // Whichever mode the environment allows, work() is positive and
    // the fallback clocks always move.
    EXPECT_GT(d.wallNs, 0u);
    EXPECT_GT(d.work(), 0u);
    if (set.hardware()) {
        EXPECT_TRUE(d.hardware);
        EXPECT_GT(d.cycles, 0u);
        EXPECT_GT(d.instructions, 0u);
        EXPECT_GT(d.ipc(), 0.0);
    }
}

TEST(CounterScopeTest, StopIsIdempotent)
{
    CounterScope scope;
    burnCpu(500);
    const CounterDelta &first = scope.stop();
    uint64_t wall = first.wallNs;
    burnCpu(500);
    EXPECT_EQ(scope.stop().wallNs, wall);
}

TEST(CounterScopeTest, NestingMatchesTraceSpanNesting)
{
    // Scopes nest like trace spans: the inner scope's delta must be
    // a subset of the enclosing scope's delta on every axis the
    // current mode measures.
    CounterScope outer;
    burnCpu(1000);
    CounterDelta inner_delta;
    {
        CounterScope inner;
        burnCpu(1000);
        inner_delta = inner.stop();
    }
    burnCpu(1000);
    const CounterDelta &outer_delta = outer.stop();

    EXPECT_GT(inner_delta.wallNs, 0u);
    EXPECT_LT(inner_delta.wallNs, outer_delta.wallNs);
    EXPECT_LE(inner_delta.taskClockNs, outer_delta.taskClockNs);
    EXPECT_LE(inner_delta.work(), outer_delta.work());
    if (outer_delta.hardware) {
        EXPECT_LE(inner_delta.cycles, outer_delta.cycles);
        EXPECT_LE(inner_delta.instructions,
                  outer_delta.instructions);
    }
}

TEST(PerfAvailabilityTest, ProbeIsCachedAndStable)
{
    bool first = perfCountersAvailable();
    EXPECT_EQ(perfCountersAvailable(), first);
    // The probe and the calling thread's set agree: both open the
    // same group under the same process restrictions.
    EXPECT_EQ(threadCounterSet().hardware(), first);
}

TEST(RequestTraceWorkTest, ClockOnlyDeltasYieldCompleteBreakdown)
{
    // The fallback guarantee: with counters unavailable, feeding
    // clock-only deltas through the phase accounting still yields a
    // complete four-phase breakdown whose shares sum to the request
    // span — just denominated in nanoseconds.
    MetricRegistry registry;
    RequestTrace trace(registry, "tiny");

    const Phase phases[] = {Phase::Decode, Phase::QueueWait,
                            Phase::Forward, Phase::Encode};
    const uint64_t ns[] = {1000, 2000, 30000, 4000};
    uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
        CounterDelta d;
        d.wallNs = ns[i];
        d.taskClockNs = ns[i];
        d.hardware = false;
        trace.recordWork(phases[i], d);
        total += ns[i];
    }
    CounterDelta request;
    request.wallNs = total;
    request.hardware = false;
    trace.recordRequestWork(request);

    double phase_sum = 0.0;
    int phase_families = 0;
    double request_sum = 0.0;
    for (const MetricSample &s : registry.snapshot()) {
        if (s.name == phaseCyclesMetricName) {
            ++phase_families;
            EXPECT_EQ(s.labels.at("model"), "tiny");
            EXPECT_EQ(s.histogram.count, 1u);
            phase_sum += s.histogram.sum;
        } else if (s.name == requestCyclesMetricName) {
            request_sum = s.histogram.sum;
        } else {
            // Clock-only deltas must not fabricate hardware-unit
            // families: no instructions, IPC, or cache-miss series.
            EXPECT_NE(s.name, phaseInstructionsMetricName);
            EXPECT_NE(s.name, phaseIpcMetricName);
            EXPECT_NE(s.name, phaseCacheMissMetricName);
            EXPECT_NE(s.name, requestIpcMetricName);
        }
    }
    EXPECT_EQ(phase_families, 4);
    EXPECT_DOUBLE_EQ(phase_sum, static_cast<double>(total));
    EXPECT_DOUBLE_EQ(request_sum, static_cast<double>(total));
}

TEST(RequestTraceWorkTest, HardwareDeltasExportIpcAndMisses)
{
    MetricRegistry registry;
    RequestTrace trace(registry, "tiny");
    CounterDelta d;
    d.cycles = 4000;
    d.instructions = 8000;
    d.cacheMisses = 17;
    d.wallNs = 999; // must be ignored: work() prefers cycles
    d.hardware = true;
    trace.recordWork(Phase::Forward, d);

    bool saw_cycles = false, saw_ipc = false, saw_misses = false;
    for (const MetricSample &s : registry.snapshot()) {
        if (s.name == phaseCyclesMetricName) {
            saw_cycles = true;
            EXPECT_DOUBLE_EQ(s.histogram.sum, 4000.0);
        } else if (s.name == phaseIpcMetricName) {
            saw_ipc = true;
            EXPECT_DOUBLE_EQ(s.histogram.sum, 2.0);
        } else if (s.name == phaseCacheMissMetricName) {
            saw_misses = true;
            EXPECT_DOUBLE_EQ(s.histogram.sum, 17.0);
        }
    }
    EXPECT_TRUE(saw_cycles);
    EXPECT_TRUE(saw_ipc);
    EXPECT_TRUE(saw_misses);
}

} // namespace
} // namespace telemetry
} // namespace djinn
