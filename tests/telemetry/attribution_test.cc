/**
 * @file
 * Tail-attribution engine tests: cohort selection, per-phase
 * excess accounting, dominant-contributor identification, model
 * filtering, the renderings, and the metric publication.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/attribution.hh"
#include "telemetry/metrics.hh"

using namespace djinn;
using namespace djinn::telemetry;

namespace {

/** A fast request: all phases cheap. */
FlightRecord
fastRecord(const std::string &model, double forward)
{
    FlightRecord record;
    record.setModel(model);
    record.decodeSeconds = 0.0001;
    record.queueWaitSeconds = 0.0002;
    record.forwardSeconds = forward;
    record.encodeSeconds = 0.0001;
    record.totalSeconds = record.decodeSeconds +
                          record.queueWaitSeconds +
                          record.forwardSeconds +
                          record.encodeSeconds;
    return record;
}

/** A slow request whose extra time is queue wait. */
FlightRecord
queuedRecord(const std::string &model, double queueWait)
{
    FlightRecord record = fastRecord(model, 0.002);
    record.queueWaitSeconds = queueWait;
    record.totalSeconds = record.decodeSeconds + queueWait +
                          record.forwardSeconds +
                          record.encodeSeconds;
    return record;
}

} // namespace

TEST(Attribution, EmptyRecordsYieldEmptyReport)
{
    TailReport report = attributeTail({}, 99.0);
    EXPECT_EQ(report.records, 0u);
    EXPECT_TRUE(report.dominant.empty());
    EXPECT_NE(renderTailReport(report).find("no completed"),
              std::string::npos);
}

TEST(Attribution, QueueWaitDominatesWhenTailIsQueued)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 95; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    for (int i = 0; i < 5; ++i)
        records.push_back(queuedRecord("mnist", 0.100));

    // ceil(0.96 * 100) = rank 96: the threshold order statistic
    // lands on the first queued record, so the tail cohort is
    // exactly the five queued requests.
    TailReport report = attributeTail(records, 96.0);
    EXPECT_EQ(report.records, 100u);
    EXPECT_EQ(report.dominant, "queue_wait");
    ASSERT_FALSE(report.contributors.empty());
    EXPECT_EQ(report.contributors[0].phase, "queue_wait");
    EXPECT_GT(report.contributors[0].share, 0.9);
    EXPECT_GT(report.thresholdSeconds, 0.05);
    EXPECT_GT(report.tailMeanSeconds, report.baselineMeanSeconds);
}

TEST(Attribution, ShedRecordsAreExcluded)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    FlightRecord shed = queuedRecord("mnist", 10.0);
    shed.outcome = FlightOutcome::ShedDeadline;
    records.push_back(shed);

    TailReport report = attributeTail(records, 99.0);
    EXPECT_EQ(report.records, 10u);
    EXPECT_LT(report.thresholdSeconds, 0.01);
}

TEST(Attribution, ModelFilterAndPerModelReports)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    for (int i = 0; i < 20; ++i)
        records.push_back(queuedRecord("vgg", 0.050));

    TailReport mnist = attributeTail(records, 99.0, "mnist");
    EXPECT_EQ(mnist.records, 20u);
    TailReport vgg = attributeTail(records, 99.0, "vgg");
    EXPECT_EQ(vgg.records, 20u);
    EXPECT_GT(vgg.thresholdSeconds, mnist.thresholdSeconds);

    std::vector<TailReport> reports =
        attributeTailByModel(records, 99.0);
    ASSERT_EQ(reports.size(), 2u);
    // Sorted by model name.
    EXPECT_EQ(reports[0].model, "mnist");
    EXPECT_EQ(reports[1].model, "vgg");
}

TEST(Attribution, RetryInflationIsItsOwnContributor)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 50; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    for (int i = 0; i < 2; ++i) {
        FlightRecord record = fastRecord("mnist", 0.002);
        record.retryWaitSeconds = 0.200;
        record.retries = 3;
        record.totalSeconds += record.retryWaitSeconds;
        records.push_back(record);
    }

    TailReport report = attributeTail(records, 96.0);
    EXPECT_EQ(report.dominant, "retry_wait");
    EXPECT_GT(report.tailMeanRetries, report.baselineMeanRetries);
}

TEST(Attribution, RenderingsCarryTheVerdict)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 30; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    for (int i = 0; i < 2; ++i)
        records.push_back(queuedRecord("mnist", 0.080));
    TailReport report = attributeTail(records, 93.0);

    std::string text = renderTailReport(report);
    EXPECT_NE(text.find("tail attribution: model=all pct=93"),
              std::string::npos);
    EXPECT_NE(text.find("dominant contributor: queue_wait"),
              std::string::npos);

    std::string json = renderTailReportJson(report);
    EXPECT_NE(json.find("\"dominant\": \"queue_wait\""),
              std::string::npos);
    EXPECT_NE(json.find("\"contributors\": ["), std::string::npos);
    EXPECT_NE(json.find("\"threshold_seconds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cohorts\""), std::string::npos);
}

TEST(Attribution, PublishesGaugesWithExtraLabels)
{
    std::vector<FlightRecord> records;
    for (int i = 0; i < 30; ++i)
        records.push_back(fastRecord("mnist", 0.002));
    records.push_back(queuedRecord("mnist", 0.080));
    TailReport report = attributeTail(records, 95.0);

    MetricRegistry registry;
    recordTailReport(registry, report, {{"policy", "jsq"}});

    LabelMap threshold_labels{{"model", "all"}, {"policy", "jsq"}};
    EXPECT_DOUBLE_EQ(
        registry.gauge("djinn_tail_threshold_seconds",
                       threshold_labels)
            .value(),
        report.thresholdSeconds);

    LabelMap dominant_labels{{"model", "all"},
                             {"policy", "jsq"},
                             {"contributor", "queue_wait"}};
    EXPECT_DOUBLE_EQ(
        registry.gauge("djinn_tail_dominant", dominant_labels)
            .value(),
        1.0);
    LabelMap other_labels{{"model", "all"},
                          {"policy", "jsq"},
                          {"contributor", "forward"}};
    EXPECT_DOUBLE_EQ(
        registry.gauge("djinn_tail_dominant", other_labels).value(),
        0.0);
}
