#include "tonic/text.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace tonic {
namespace {

TEST(Tokenize, WordsAndPunctuation)
{
    auto tokens = tokenize("The server answers, quickly.");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0], "the");
    EXPECT_EQ(tokens[1], "server");
    EXPECT_EQ(tokens[2], "answers");
    EXPECT_EQ(tokens[3], ",");
    EXPECT_EQ(tokens[4], "quickly");
    EXPECT_EQ(tokens[5], ".");
}

TEST(Tokenize, LowerCases)
{
    auto tokens = tokenize("Paris LONDON");
    EXPECT_EQ(tokens[0], "paris");
    EXPECT_EQ(tokens[1], "london");
}

TEST(Tokenize, ApostrophesAndHyphensKeptInWord)
{
    auto tokens = tokenize("don't over-think");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0], "don't");
    EXPECT_EQ(tokens[1], "over-think");
}

TEST(Tokenize, EmptyInput)
{
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("   ").empty());
}

TEST(Embed, DeterministicPerToken)
{
    auto a = embedToken("server", 50);
    auto b = embedToken("server", 50);
    EXPECT_EQ(a, b);
}

TEST(Embed, CaseInsensitive)
{
    EXPECT_EQ(embedToken("Server", 50), embedToken("server", 50));
}

TEST(Embed, DifferentTokensDiffer)
{
    EXPECT_NE(embedToken("server", 50), embedToken("client", 50));
}

TEST(Embed, UnitVarianceApproximately)
{
    auto v = embedToken("warehouse", 500);
    double sq = 0.0;
    for (float x : v)
        sq += x * x;
    EXPECT_NEAR(sq / 500.0, 1.0, 0.25);
}

TEST(WindowFeatures, GeometryMatchesSennaInput)
{
    TextConfig config;
    auto tokens = tokenize(synthesizeSentence(28, 1));
    nn::Tensor features = windowFeatures(tokens, config);
    EXPECT_EQ(features.shape().n(),
              static_cast<int64_t>(tokens.size()));
    // 5-token window x 50 dims = the SENNA nets' 250 inputs.
    EXPECT_EQ(features.shape().sampleElems(), 250);
}

TEST(WindowFeatures, CenterSlotHoldsTokenEmbedding)
{
    TextConfig config;
    std::vector<std::string> tokens{"alpha", "beta", "gamma"};
    nn::Tensor features = windowFeatures(tokens, config);
    auto beta = embedToken("beta", config.embeddingDim);
    const float *row = features.sample(1);
    for (int64_t i = 0; i < config.embeddingDim; ++i) {
        EXPECT_FLOAT_EQ(
            row[config.windowContext * config.embeddingDim + i],
            beta[i]);
    }
}

TEST(WindowFeatures, NeighborSlotsShiftProperly)
{
    TextConfig config;
    std::vector<std::string> tokens{"alpha", "beta", "gamma"};
    nn::Tensor features = windowFeatures(tokens, config);
    auto alpha = embedToken("alpha", config.embeddingDim);
    // In row 1 (beta), the slot one left of center holds alpha.
    const float *row = features.sample(1);
    int64_t slot = config.windowContext - 1;
    for (int64_t i = 0; i < config.embeddingDim; ++i)
        EXPECT_FLOAT_EQ(row[slot * config.embeddingDim + i],
                        alpha[i]);
}

TEST(WindowFeatures, EdgesUsePadding)
{
    TextConfig config;
    std::vector<std::string> tokens{"only"};
    nn::Tensor features = windowFeatures(tokens, config);
    auto pad = embedToken("<pad>", config.embeddingDim);
    const float *row = features.sample(0);
    // Slot 0 (two left of center) must be padding.
    for (int64_t i = 0; i < config.embeddingDim; ++i)
        EXPECT_FLOAT_EQ(row[i], pad[i]);
}

TEST(WindowFeatures, TagsChangeFeatures)
{
    TextConfig config;
    std::vector<std::string> tokens{"a", "b", "c"};
    std::vector<int> tags0{0, 0, 0};
    std::vector<int> tags1{0, 5, 0};
    nn::Tensor f0 = windowFeaturesWithTags(tokens, tags0, config);
    nn::Tensor f1 = windowFeaturesWithTags(tokens, tags1, config);
    bool differs = false;
    for (int64_t i = 0; i < f0.elems(); ++i) {
        if (f0[i] != f1[i])
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(WindowFeatures, ZeroTagsEqualsPlainFeatures)
{
    TextConfig config;
    std::vector<std::string> tokens{"a", "b"};
    std::vector<int> zeros{0, 0};
    nn::Tensor plain = windowFeatures(tokens, config);
    nn::Tensor tagged = windowFeaturesWithTags(tokens, zeros,
                                               config);
    for (int64_t i = 0; i < plain.elems(); ++i)
        EXPECT_FLOAT_EQ(plain[i], tagged[i]);
}

TEST(WindowFeatures, EmptyTokensFatal)
{
    TextConfig config;
    std::vector<std::string> none;
    EXPECT_THROW(windowFeatures(none, config), FatalError);
}

TEST(WindowFeatures, TagCountMismatchFatal)
{
    TextConfig config;
    std::vector<std::string> tokens{"a", "b"};
    std::vector<int> tags{1};
    EXPECT_THROW(windowFeaturesWithTags(tokens, tags, config),
                 FatalError);
}

TEST(SynthesizeSentence, WordCountRespected)
{
    auto tokens = tokenize(synthesizeSentence(28, 3));
    // 28 words plus the final period token.
    EXPECT_EQ(tokens.size(), 29u);
}

TEST(SynthesizeSentence, DeterministicPerSeed)
{
    EXPECT_EQ(synthesizeSentence(10, 5), synthesizeSentence(10, 5));
    EXPECT_NE(synthesizeSentence(10, 5), synthesizeSentence(10, 6));
}

TEST(SynthesizeSentence, NonPositiveFatal)
{
    EXPECT_THROW(synthesizeSentence(0, 1), FatalError);
}

} // namespace
} // namespace tonic
} // namespace djinn
