#include "tonic/viterbi.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace tonic {
namespace {

nn::Tensor
scores(std::initializer_list<std::initializer_list<float>> rows)
{
    int64_t steps = static_cast<int64_t>(rows.size());
    int64_t states =
        static_cast<int64_t>(rows.begin()->size());
    nn::Tensor t(nn::Shape(steps, states));
    int64_t s = 0;
    for (const auto &row : rows) {
        int64_t j = 0;
        for (float v : row)
            t.at(s, j++, 0, 0) = v;
        ++s;
    }
    return t;
}

TEST(Viterbi, FlatTransitionsPickArgmaxPerStep)
{
    auto sc = scores({{1, 5, 0}, {7, 1, 0}, {0, 1, 9}});
    std::vector<float> flat(9, 0.0f);
    auto path = viterbiDecode(sc, flat);
    EXPECT_EQ(path, (std::vector<int>{1, 0, 2}));
}

TEST(Viterbi, SelfLoopBonusSmoothsPath)
{
    // Without bias: path flips 0,1,0. With a strong self-loop
    // bonus, staying in state 0 wins overall.
    auto sc = scores({{5, 0}, {4, 5}, {5, 0}});
    auto flat = selfLoopTransitions(2, 0.0f);
    EXPECT_EQ(viterbiDecode(sc, flat),
              (std::vector<int>{0, 1, 0}));
    auto sticky = selfLoopTransitions(2, 3.0f);
    EXPECT_EQ(viterbiDecode(sc, sticky),
              (std::vector<int>{0, 0, 0}));
}

TEST(Viterbi, TransitionsCanForbidMoves)
{
    // Forbid 0 -> 1 entirely; the best path must route via state 2.
    auto sc = scores({{10, 0, 0}, {0, 10, 5}});
    std::vector<float> trans(9, 0.0f);
    trans[0 * 3 + 1] = -1e9f;
    auto path = viterbiDecode(sc, trans);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0);
    EXPECT_EQ(path[1], 2);
}

TEST(Viterbi, SingleStepIsArgmax)
{
    auto sc = scores({{0.1f, 0.7f, 0.2f}});
    std::vector<float> flat(9, 0.0f);
    EXPECT_EQ(viterbiDecode(sc, flat), (std::vector<int>{1}));
}

TEST(Viterbi, GlobalOptimumBeatsGreedy)
{
    // Greedy picks state 1 at step 0, but the transition out of 1
    // is costly; the optimal path sacrifices step 0.
    auto sc = scores({{4, 5}, {0, 10}});
    std::vector<float> trans(4, 0.0f);
    trans[1 * 2 + 1] = -20.0f; // staying in 1 is bad
    trans[0 * 2 + 1] = 0.0f;
    auto path = viterbiDecode(sc, trans);
    EXPECT_EQ(path, (std::vector<int>{0, 1}));
}

TEST(Viterbi, WrongTransitionSizeFatal)
{
    auto sc = scores({{1, 2}});
    std::vector<float> wrong(3, 0.0f);
    EXPECT_THROW(viterbiDecode(sc, wrong), FatalError);
}

TEST(SelfLoopTransitions, DiagonalOnly)
{
    auto t = selfLoopTransitions(3, 2.5f);
    ASSERT_EQ(t.size(), 9u);
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 3; ++j) {
            EXPECT_FLOAT_EQ(t[i * 3 + j], i == j ? 2.5f : 0.0f);
        }
    }
}

TEST(CollapseRuns, RemovesConsecutiveDuplicates)
{
    EXPECT_EQ(collapseRuns({1, 1, 2, 2, 2, 1, 3, 3}),
              (std::vector<int>{1, 2, 1, 3}));
}

TEST(CollapseRuns, EmptyAndSingle)
{
    EXPECT_TRUE(collapseRuns({}).empty());
    EXPECT_EQ(collapseRuns({5}), (std::vector<int>{5}));
    EXPECT_EQ(collapseRuns({5, 5, 5}), (std::vector<int>{5}));
}

} // namespace
} // namespace tonic
} // namespace djinn
