/**
 * @file
 * End-to-end Tonic application tests: a live DjiNN server on
 * loopback serving the full model set, driven by each of the seven
 * applications. The DIG/NLP tests run at full query shape; the
 * heavier image/ASR tests use reduced inputs to stay fast.
 */

#include "tonic/apps.hh"

#include <gtest/gtest.h>

#include "core/djinn_server.hh"
#include "tonic/audio.hh"
#include "tonic/labels.hh"
#include "tonic/text.hh"

namespace djinn {
namespace tonic {
namespace {

/** One registry + server + client shared by the whole suite. */
class AppsTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        registry_ = new core::ModelRegistry();
        registerTonicModels(*registry_, 42);
        core::ServerConfig config;
        server_ = new core::DjinnServer(*registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    static void
    TearDownTestSuite()
    {
        delete server_;
        delete registry_;
        server_ = nullptr;
        registry_ = nullptr;
    }

    void
    SetUp() override
    {
        ASSERT_TRUE(
            client_.connect("127.0.0.1", server_->port()).isOk());
    }

    core::DjinnClient client_;
    static core::ModelRegistry *registry_;
    static core::DjinnServer *server_;
};

core::ModelRegistry *AppsTest::registry_ = nullptr;
core::DjinnServer *AppsTest::server_ = nullptr;

TEST_F(AppsTest, RegistryHoldsAllSevenModelsWorth)
{
    // Five distinct networks back the seven applications.
    EXPECT_EQ(registry_->size(), 7u);
    EXPECT_NE(registry_->find("alexnet"), nullptr);
    EXPECT_NE(registry_->find("senna_ner"), nullptr);
    // Weights resident once, shared by all workers: roughly the
    // sum of Table 1's parameter counts (~213M params).
    EXPECT_GT(registry_->totalWeightBytes(), 700e6);
    EXPECT_LT(registry_->totalWeightBytes(), 1100e6);
}

TEST_F(AppsTest, DigRecognizesBatchOf100)
{
    DigApp app(client_);
    Rng rng(7);
    std::vector<Image> digits;
    for (int i = 0; i < 100; ++i)
        digits.push_back(synthesizeDigit(i % 10, rng));
    auto result = app.recognize(digits);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const AppOutput &out = result.value();
    EXPECT_EQ(out.labels.size(), 100u);
    EXPECT_EQ(out.text.size(), 100u);
    for (int label : out.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LE(label, 9);
    }
    EXPECT_GT(out.times.service, 0.0);
}

TEST_F(AppsTest, DigRejectsWrongGeometry)
{
    DigApp app(client_);
    Rng rng(7);
    std::vector<Image> bad{synthesizePhoto(32, 32, 1, rng)};
    EXPECT_FALSE(app.recognize(bad).isOk());
    EXPECT_FALSE(app.recognize({}).isOk());
}

TEST_F(AppsTest, PosTagsEveryToken)
{
    PosApp app(client_);
    auto result = app.tag("the quick brown fox jumps over the "
                          "lazy dog");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const AppOutput &out = result.value();
    EXPECT_EQ(out.labels.size(), 9u);
    for (int tag : out.labels) {
        EXPECT_GE(tag, 0);
        EXPECT_LT(tag, static_cast<int>(posTagNames().size()));
    }
    // Output format "word/TAG word/TAG ...".
    EXPECT_NE(out.text.find("fox/"), std::string::npos);
}

TEST_F(AppsTest, PosDeterministicAcrossCalls)
{
    PosApp app(client_);
    auto a = app.tag("servers process queries");
    auto b = app.tag("servers process queries");
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(a.value().labels, b.value().labels);
}

TEST_F(AppsTest, PosRejectsEmptySentence)
{
    PosApp app(client_);
    EXPECT_FALSE(app.tag("").isOk());
    EXPECT_FALSE(app.tag("   ").isOk());
}

TEST_F(AppsTest, ChkIssuesInternalPosRequestFirst)
{
    uint64_t before = server_->requestsServed();
    ChkApp app(client_);
    auto result = app.chunk("engineers design large systems");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    // Two service requests: one POS, one CHK (paper Section 3.2.3).
    EXPECT_EQ(server_->requestsServed() - before, 2u);
    for (int tag : result.value().labels) {
        EXPECT_GE(tag, 0);
        EXPECT_LT(tag, static_cast<int>(chunkTagNames().size()));
    }
}

TEST_F(AppsTest, ChkDependsOnPosTags)
{
    // CHK features fold POS tags in, so its DNN request payload
    // differs from a plain POS request payload for the same text.
    ChkApp app(client_);
    auto result = app.chunk("the dog runs");
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().labels.size(), 3u);
}

TEST_F(AppsTest, NerLabelsEveryToken)
{
    NerApp app(client_);
    auto result = app.recognize("john visited paris on monday");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().labels.size(), 5u);
    for (int tag : result.value().labels) {
        EXPECT_GE(tag, 0);
        EXPECT_LT(tag, static_cast<int>(nerTagNames().size()));
    }
}

TEST_F(AppsTest, ImcClassifiesSyntheticPhoto)
{
    ImcApp app(client_);
    Rng rng(11);
    Image photo = synthesizePhoto(320, 240, 3, rng);
    auto result = app.classify(photo);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const AppOutput &out = result.value();
    ASSERT_EQ(out.labels.size(), 1u);
    EXPECT_GE(out.labels[0], 0);
    EXPECT_LT(out.labels[0], 1000);
    EXPECT_NE(out.text.find("synset_"), std::string::npos);
    EXPECT_GT(out.times.service, 0.0);
}

TEST_F(AppsTest, FaceIdentifiesSyntheticPhoto)
{
    FaceApp app(client_);
    Rng rng(13);
    Image photo = synthesizePhoto(200, 200, 3, rng);
    auto result = app.identify(photo);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_EQ(result.value().labels.size(), 1u);
    EXPECT_GE(result.value().labels[0], 0);
    EXPECT_LT(result.value().labels[0], 83);
    EXPECT_NE(result.value().text.find("celebrity_"),
              std::string::npos);
}

TEST_F(AppsTest, AsrTranscribesShortUtterance)
{
    AsrApp app(client_);
    Rng rng(17);
    // Half a second keeps the pure-C++ 30M-param forward pass fast
    // enough for a unit test; the full 5.5 s query shape is
    // exercised by the benchmarks.
    auto samples = synthesizeUtterance(0.5, rng);
    auto result = app.transcribe(samples);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const AppOutput &out = result.value();
    EXPECT_FALSE(out.labels.empty());
    EXPECT_FALSE(out.text.empty());
    for (int phone : out.labels) {
        EXPECT_GE(phone, 0);
        EXPECT_LT(phone, static_cast<int>(phoneNames().size()));
    }
    EXPECT_GT(out.times.preprocess, 0.0);
    EXPECT_GT(out.times.postprocess, 0.0);
}

TEST_F(AppsTest, PhaseTimesSumToTotal)
{
    PosApp app(client_);
    auto result = app.tag("quick check");
    ASSERT_TRUE(result.isOk());
    const PhaseTimes &t = result.value().times;
    EXPECT_NEAR(t.total(),
                t.preprocess + t.service + t.postprocess, 1e-12);
}

TEST(Labels, TagSetSizesMatchNetworks)
{
    EXPECT_EQ(posTagNames().size(), 45u);
    EXPECT_EQ(chunkTagNames().size(), 23u);
    EXPECT_EQ(nerTagNames().size(), 9u);
    EXPECT_EQ(phoneNames().size(), 40u);
}

TEST(Labels, SyntheticNames)
{
    EXPECT_EQ(imagenetClassName(7), "synset_0007");
    EXPECT_EQ(celebrityName(82), "celebrity_82");
    EXPECT_THROW(imagenetClassName(-1), FatalError);
}

} // namespace
} // namespace tonic
} // namespace djinn
