#include "tonic/audio.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace tonic {
namespace {

TEST(Synthesize, UtteranceLengthMatchesDuration)
{
    Rng rng(1);
    auto samples = synthesizeUtterance(1.5, rng);
    EXPECT_EQ(samples.size(), 24000u);
}

TEST(Synthesize, UtteranceDeterministicPerSeed)
{
    Rng a(4), b(4);
    auto sa = synthesizeUtterance(0.2, a);
    auto sb = synthesizeUtterance(0.2, b);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_FLOAT_EQ(sa[i], sb[i]);
}

TEST(Synthesize, UtteranceBounded)
{
    Rng rng(2);
    auto samples = synthesizeUtterance(1.0, rng);
    for (float s : samples)
        ASSERT_LT(std::fabs(s), 2.0f);
}

TEST(Synthesize, NonPositiveDurationFatal)
{
    Rng rng(1);
    EXPECT_THROW(synthesizeUtterance(0.0, rng), FatalError);
}

TEST(FrameCount, StandardWindows)
{
    FeatureConfig config;
    // 1 second at 16 kHz, 25 ms frames, 10 ms shift: 98 frames.
    EXPECT_EQ(frameCount(16000, config), 98);
    // Shorter than a frame: none.
    EXPECT_EQ(frameCount(100, config), 0);
    // Exactly one frame.
    EXPECT_EQ(frameCount(400, config), 1);
}

TEST(Filterbank, OutputGeometry)
{
    FeatureConfig config;
    Rng rng(3);
    auto samples = synthesizeUtterance(0.5, rng);
    nn::Tensor features = filterbankFeatures(samples, config);
    EXPECT_EQ(features.shape().n(),
              frameCount(static_cast<int64_t>(samples.size()),
                         config));
    EXPECT_EQ(features.shape().c(), config.melBins);
}

TEST(Filterbank, FeaturesFiniteAndVarying)
{
    FeatureConfig config;
    Rng rng(5);
    auto samples = synthesizeUtterance(0.3, rng);
    nn::Tensor features = filterbankFeatures(samples, config);
    double lo = 1e30, hi = -1e30;
    for (int64_t i = 0; i < features.elems(); ++i) {
        ASSERT_TRUE(std::isfinite(features[i]));
        lo = std::min(lo, static_cast<double>(features[i]));
        hi = std::max(hi, static_cast<double>(features[i]));
    }
    EXPECT_GT(hi - lo, 1.0);
}

TEST(Filterbank, SilenceGivesLowEnergy)
{
    FeatureConfig config;
    std::vector<float> silence(8000, 0.0f);
    Rng rng(5);
    auto speech = synthesizeUtterance(0.5, rng);
    nn::Tensor fs = filterbankFeatures(silence, config);
    nn::Tensor fv = filterbankFeatures(speech, config);
    EXPECT_LT(fs.sum() / fs.elems(), fv.sum() / fv.elems());
}

TEST(Filterbank, ToneActivatesMatchingBand)
{
    FeatureConfig config;
    // A pure 1 kHz tone: the most energetic mel bin for the tone
    // should sit below the most energetic bin of a 4 kHz tone.
    auto tone = [&](double freq) {
        std::vector<float> s(8000);
        for (size_t i = 0; i < s.size(); ++i) {
            s[i] = static_cast<float>(
                0.5 * std::sin(2 * M_PI * freq * i / 16000.0));
        }
        nn::Tensor f = filterbankFeatures(s, config);
        // Use the middle frame.
        int64_t frame = f.shape().n() / 2;
        int64_t best = 0;
        for (int64_t m = 1; m < config.melBins; ++m) {
            if (f.at(frame, m, 0, 0) > f.at(frame, best, 0, 0))
                best = m;
        }
        return best;
    };
    EXPECT_LT(tone(500.0), tone(4000.0));
}

TEST(Filterbank, TooShortUtteranceFatal)
{
    FeatureConfig config;
    std::vector<float> tiny(10, 0.0f);
    EXPECT_THROW(filterbankFeatures(tiny, config), FatalError);
}

TEST(Splice, WidthAndCenterCopy)
{
    nn::Tensor features(nn::Shape(10, 8));
    for (int64_t f = 0; f < 10; ++f) {
        for (int64_t d = 0; d < 8; ++d)
            features.at(f, d, 0, 0) = static_cast<float>(f * 100 +
                                                         d);
    }
    nn::Tensor spliced = spliceFrames(features, 2);
    EXPECT_EQ(spliced.shape(), nn::Shape(10, 40));
    // Center slot (offset 2) of frame 5 holds frame 5.
    for (int64_t d = 0; d < 8; ++d)
        EXPECT_FLOAT_EQ(spliced.sample(5)[2 * 8 + d],
                        features.at(5, d, 0, 0));
    // Left-most slot of frame 5 holds frame 3.
    for (int64_t d = 0; d < 8; ++d)
        EXPECT_FLOAT_EQ(spliced.sample(5)[d],
                        features.at(3, d, 0, 0));
}

TEST(Splice, EdgesClampToFirstAndLastFrames)
{
    nn::Tensor features(nn::Shape(4, 2));
    for (int64_t f = 0; f < 4; ++f) {
        features.at(f, 0, 0, 0) = static_cast<float>(f);
        features.at(f, 1, 0, 0) = static_cast<float>(f);
    }
    nn::Tensor spliced = spliceFrames(features, 3);
    // Frame 0's left context slots all clamp to frame 0.
    for (int64_t slot = 0; slot < 3; ++slot)
        EXPECT_FLOAT_EQ(spliced.sample(0)[slot * 2], 0.0f);
    // Frame 3's right context slots all clamp to frame 3.
    for (int64_t slot = 4; slot < 7; ++slot)
        EXPECT_FLOAT_EQ(spliced.sample(3)[slot * 2], 3.0f);
}

TEST(Splice, KaldiGeometryYields440Features)
{
    FeatureConfig config;
    Rng rng(6);
    auto samples = synthesizeUtterance(0.5, rng);
    nn::Tensor features = filterbankFeatures(samples, config);
    nn::Tensor spliced = spliceFrames(features,
                                      config.spliceContext);
    // 11-frame splice of 40 mel bins = the Kaldi net's 440 inputs.
    EXPECT_EQ(spliced.shape().sampleElems(), 440);
}

TEST(Splice, PaperQueryShape548Frames)
{
    // Table 3: one ASR query carries 548 feature vectors, which is
    // about 5.5 seconds of audio at a 10 ms shift.
    FeatureConfig config;
    int64_t samples_needed = static_cast<int64_t>(
        (547 * config.frameShift + config.frameLength) *
        config.sampleRate);
    EXPECT_EQ(frameCount(samples_needed, config), 548);
}

} // namespace
} // namespace tonic
} // namespace djinn
