#include "wsc/capacity.hh"

#include <gtest/gtest.h>

#include "serve/simulation.hh"
#include "wsc/network_config.hh"

namespace djinn {
namespace wsc {
namespace {

using serve::App;

TEST(CpuCapacity, ComponentsConsistent)
{
    for (App app : serve::allApps()) {
        CpuCapacity cap = cpuCapacity(app);
        EXPECT_GT(cap.dnnTime, 0.0) << serve::appName(app);
        EXPECT_GE(cap.prePostTime, 0.0);
        EXPECT_NEAR(cap.coreQps,
                    1.0 / (cap.dnnTime + cap.prePostTime), 1e-9);
    }
}

TEST(CpuCapacity, MatchesCpuQueryTime)
{
    gpu::CpuSpec spec;
    CpuCapacity cap = cpuCapacity(App::IMC, spec);
    EXPECT_DOUBLE_EQ(cap.dnnTime,
                     serve::cpuQueryTime(App::IMC, spec));
}

TEST(CpuCapacity, AsrHeaviestPrePost)
{
    double asr = cpuCapacity(App::ASR).prePostTime;
    for (App app : serve::allApps()) {
        if (app != App::ASR) {
            EXPECT_GT(asr, cpuCapacity(app).prePostTime);
        }
    }
}

TEST(GpuServerQps, ScalesWithGpus)
{
    auto link = pcie3With10GbE().hostLink;
    double one = gpuServerQps(App::IMC, link, 1);
    double four = gpuServerQps(App::IMC, link, 4);
    EXPECT_GT(four, 3.0 * one);
}

TEST(GpuServerQps, CachedCallsAgree)
{
    auto link = pcie3With10GbE().hostLink;
    EXPECT_DOUBLE_EQ(gpuServerQps(App::POS, link, 2),
                     gpuServerQps(App::POS, link, 2));
}

TEST(GpuServerQps, NlpBandwidthBoundUnderNarrowLink)
{
    auto narrow = gpu::ethernet10G(4); // 4 GB/s
    auto wide = gpu::unlimitedLink();
    double capped = gpuServerQps(App::POS, narrow, 4);
    double free_qps = gpuServerQps(App::POS, wide, 4);
    EXPECT_LT(capped, 0.5 * free_qps);
}

TEST(GpuPeakQps, AtLeastConstrainedThroughput)
{
    auto link = pcie3With10GbE().hostLink;
    for (App app : {App::POS, App::IMC}) {
        EXPECT_GE(gpuPeakQps(app) * 1.05,
                  gpuServerQps(app, link, 1))
            << serve::appName(app);
    }
}

} // namespace
} // namespace wsc
} // namespace djinn
