#include "wsc/network_config.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace wsc {
namespace {

TEST(NetworkConfig, BaselineMatchesPaperFootnote)
{
    NetworkConfig config = pcie3With10GbE();
    // 16 x 10GbE at 80% yields 16 GB/s ingest (footnote 1).
    EXPECT_DOUBLE_EQ(config.disaggIngest.effectiveBandwidth(),
                     16e9);
    EXPECT_EQ(config.nicCount, 16);
    EXPECT_DOUBLE_EQ(config.nicUnitCost, 750.0);
    EXPECT_DOUBLE_EQ(config.serverPremium, 0.0);
}

TEST(NetworkConfig, Pcie4Uses9Teamed40GbE)
{
    NetworkConfig config = pcie4With40GbE();
    EXPECT_EQ(config.nicCount, 9);
    // 9 x 40GbE at 80% = 36 GB/s, enough to saturate PCIe v4
    // (31.75 GB/s peak, Section 6.4).
    EXPECT_GT(config.disaggIngest.effectiveBandwidth(),
              0.8 * 31.75e9);
}

TEST(NetworkConfig, QpiUses8Teamed400GbE)
{
    NetworkConfig config = qpiWith400GbE();
    EXPECT_EQ(config.nicCount, 8);
    EXPECT_DOUBLE_EQ(config.hostLink.peakBandwidth, 307.2e9);
}

TEST(NetworkConfig, BandwidthStrictlyIncreasesAcrossGenerations)
{
    auto configs = allNetworkConfigs();
    ASSERT_EQ(configs.size(), 3u);
    for (size_t i = 1; i < configs.size(); ++i) {
        EXPECT_GT(configs[i].hostLink.effectiveBandwidth(),
                  configs[i - 1].hostLink.effectiveBandwidth());
        EXPECT_GT(configs[i].disaggIngest.effectiveBandwidth(),
                  configs[i - 1].disaggIngest.effectiveBandwidth());
    }
}

TEST(NetworkConfig, CostsIncreaseAcrossGenerations)
{
    auto configs = allNetworkConfigs();
    for (size_t i = 1; i < configs.size(); ++i) {
        EXPECT_GT(configs[i].nicUnitCost * configs[i].nicCount,
                  configs[i - 1].nicUnitCost *
                      configs[i - 1].nicCount);
        EXPECT_GE(configs[i].serverPremium,
                  configs[i - 1].serverPremium);
    }
}

} // namespace
} // namespace wsc
} // namespace djinn
