#include "wsc/bandwidth.hh"

#include <gtest/gtest.h>

#include "gpu/link.hh"

namespace djinn {
namespace wsc {
namespace {

using serve::App;

TEST(Bandwidth, LinearInGpuCount)
{
    double one = bandwidthRequirement(App::POS, 1);
    double eight = bandwidthRequirement(App::POS, 8);
    EXPECT_NEAR(eight, 8.0 * one, one * 0.01);
}

TEST(Bandwidth, Fig13NlpExceedsPcieV3ByEightGpus)
{
    // The paper's central bandwidth finding: NLP at 8 GPUs needs
    // more than a PCIe v3 x16 pipe can carry.
    double pcie = gpu::pcieV3().peakBandwidth;
    for (App app : {App::POS, App::CHK, App::NER}) {
        EXPECT_GT(bandwidthRequirement(app, 8), pcie)
            << serve::appName(app);
    }
}

TEST(Bandwidth, Fig13ComputeHeavyStaysModest)
{
    // "The theoretical throughput can be achieved by a network with
    // a bandwidth of at least 4GB/s" for IMC/DIG/FACE/ASR; allow
    // a generous ceiling well under the NLP demands.
    for (App app : {App::IMC, App::FACE, App::ASR}) {
        EXPECT_LT(bandwidthRequirement(app, 8), 8e9)
            << serve::appName(app);
    }
}

TEST(Bandwidth, NlpFarExceeds10GbE)
{
    double tengbe = gpu::ethernet10G().peakBandwidth;
    EXPECT_GT(bandwidthRequirement(App::POS, 1), tengbe);
}

TEST(Bandwidth, IngressAtMostTotalRequirement)
{
    for (App app : serve::allApps()) {
        EXPECT_LE(ingressRequirement(app, 4),
                  bandwidthRequirement(app, 4) + 1e-6)
            << serve::appName(app);
    }
}

TEST(Bandwidth, AsrEgressDominatesItsIngress)
{
    // ASR returns 548 probability vectors, larger than its input.
    EXPECT_GT(bandwidthRequirement(App::ASR, 1),
              ingressRequirement(App::ASR, 1));
}

} // namespace
} // namespace wsc
} // namespace djinn
