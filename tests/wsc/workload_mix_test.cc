#include "wsc/workload_mix.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace wsc {
namespace {

TEST(WorkloadMix, Table5Composition)
{
    EXPECT_EQ(mixApps(Mix::Mixed).size(), 7u);
    EXPECT_EQ(mixApps(Mix::Image).size(), 3u);
    EXPECT_EQ(mixApps(Mix::Nlp).size(), 3u);
}

TEST(WorkloadMix, ImageMixContents)
{
    const auto &apps = mixApps(Mix::Image);
    EXPECT_EQ(apps[0], serve::App::IMC);
    EXPECT_EQ(apps[1], serve::App::DIG);
    EXPECT_EQ(apps[2], serve::App::FACE);
}

TEST(WorkloadMix, NlpMixContents)
{
    const auto &apps = mixApps(Mix::Nlp);
    EXPECT_EQ(apps[0], serve::App::POS);
    EXPECT_EQ(apps[1], serve::App::CHK);
    EXPECT_EQ(apps[2], serve::App::NER);
}

TEST(WorkloadMix, Names)
{
    EXPECT_STREQ(mixName(Mix::Mixed), "MIXED");
    EXPECT_STREQ(mixName(Mix::Image), "IMAGE");
    EXPECT_STREQ(mixName(Mix::Nlp), "NLP");
}

TEST(WorkloadMix, AllMixesOrder)
{
    const auto &mixes = allMixes();
    ASSERT_EQ(mixes.size(), 3u);
    EXPECT_EQ(mixes[0], Mix::Mixed);
    EXPECT_EQ(mixes[2], Mix::Nlp);
}

} // namespace
} // namespace wsc
} // namespace djinn
