#include "wsc/tco_params.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace wsc {
namespace {

TEST(TcoParams, Table4Defaults)
{
    TcoParams p;
    EXPECT_DOUBLE_EQ(p.gpuServerCost, 6864.0);
    EXPECT_DOUBLE_EQ(p.gpuCost, 3314.0);
    EXPECT_DOUBLE_EQ(p.wimpyServerCost, 1716.0);
    EXPECT_DOUBLE_EQ(p.nicCost, 750.0);
    EXPECT_DOUBLE_EQ(p.wscCapexPerWatt, 10.0);
    EXPECT_DOUBLE_EQ(p.opexPerWattMonth, 0.04);
    EXPECT_DOUBLE_EQ(p.pue, 1.1);
    EXPECT_DOUBLE_EQ(p.electricityPerKwh, 0.067);
    EXPECT_DOUBLE_EQ(p.interestRate, 0.08);
    EXPECT_DOUBLE_EQ(p.lifetimeMonths, 36.0);
    EXPECT_DOUBLE_EQ(p.maintenanceRate, 0.05);
}

TEST(FinancedCost, ZeroPrincipalFree)
{
    TcoParams p;
    EXPECT_DOUBLE_EQ(financedCost(0.0, p), 0.0);
}

TEST(FinancedCost, InterestAddsRoughly13Percent)
{
    // 8% annual over 36 months adds ~12.8% total interest.
    TcoParams p;
    double paid = financedCost(10000.0, p);
    EXPECT_GT(paid, 11000.0);
    EXPECT_LT(paid, 11700.0);
}

TEST(FinancedCost, ZeroInterestPaysPrincipal)
{
    TcoParams p;
    p.interestRate = 0.0;
    EXPECT_DOUBLE_EQ(financedCost(5000.0, p), 5000.0);
}

TEST(FinancedCost, LinearInPrincipal)
{
    TcoParams p;
    EXPECT_NEAR(financedCost(2000.0, p),
                2.0 * financedCost(1000.0, p), 1e-6);
}

TEST(ComputeTco, EmptyFleetCostsNothing)
{
    TcoParams p;
    FleetInventory fleet;
    EXPECT_DOUBLE_EQ(computeTco(fleet, p).total(), 0.0);
}

TEST(ComputeTco, SingleCpuServerBreakdown)
{
    TcoParams p;
    FleetInventory fleet;
    fleet.beefyServers = 1.0;
    TcoBreakdown tco = computeTco(fleet, p);
    // Server capex financed.
    EXPECT_NEAR(tco.servers, financedCost(6864.0, p), 1e-6);
    EXPECT_DOUBLE_EQ(tco.gpus, 0.0);
    EXPECT_DOUBLE_EQ(tco.network, 0.0);
    // Facility: $10/W x 300 W x 1.1 PUE, financed.
    EXPECT_NEAR(tco.facility, financedCost(3300.0, p), 1e-6);
    // Power: 330 W over 36 months of 730 h at $0.067/kWh.
    EXPECT_NEAR(tco.power, 0.330 * 36 * 730 * 0.067, 1e-6);
    EXPECT_GT(tco.operations, 0.0);
}

TEST(ComputeTco, GpusAddTheirOwnCostAndPower)
{
    TcoParams p;
    FleetInventory bare;
    bare.beefyServers = 1.0;
    FleetInventory loaded = bare;
    loaded.gpus = 12.0;
    TcoBreakdown a = computeTco(bare, p);
    TcoBreakdown b = computeTco(loaded, p);
    EXPECT_NEAR(b.gpus, financedCost(12 * 3314.0, p), 1e-6);
    // 12 x 240 W of GPUs dominate the power delta.
    EXPECT_GT(b.power, 5.0 * a.power);
    EXPECT_GT(b.facility, 5.0 * a.facility);
}

TEST(ComputeTco, NicsBilledAsNetwork)
{
    TcoParams p;
    FleetInventory fleet;
    fleet.nicUnits = 16.0;
    TcoBreakdown tco = computeTco(fleet, p);
    EXPECT_NEAR(tco.network, financedCost(16 * 750.0, p), 1e-6);
}

TEST(ComputeTco, InterconnectPremiumInServerBucket)
{
    TcoParams p;
    FleetInventory fleet;
    fleet.beefyServers = 1.0;
    FleetInventory premium = fleet;
    premium.interconnectPremium = 2500.0;
    EXPECT_NEAR(computeTco(premium, p).servers -
                    computeTco(fleet, p).servers,
                financedCost(2500.0, p), 1e-6);
}

TEST(ComputeTco, TotalSumsComponents)
{
    TcoParams p;
    FleetInventory fleet;
    fleet.beefyServers = 3;
    fleet.wimpyServers = 2;
    fleet.gpus = 8;
    fleet.nicUnits = 20;
    TcoBreakdown tco = computeTco(fleet, p);
    EXPECT_NEAR(tco.total(),
                tco.servers + tco.gpus + tco.network +
                    tco.facility + tco.power + tco.operations,
                1e-9);
}

TEST(ComputeTco, WimpyServersCheaperThanBeefy)
{
    TcoParams p;
    FleetInventory beefy, wimpy;
    beefy.beefyServers = 1;
    wimpy.wimpyServers = 1;
    EXPECT_LT(computeTco(wimpy, p).total(),
              computeTco(beefy, p).total());
}

} // namespace
} // namespace wsc
} // namespace djinn
