#include "wsc/tail_capacity.hh"

#include <gtest/gtest.h>

#include "wsc/capacity.hh"
#include "wsc/network_config.hh"

namespace djinn {
namespace wsc {
namespace {

/** Small, fast probe configuration for tests. */
TailCapacityConfig
testConfig()
{
    TailCapacityConfig config;
    config.probeNodes = 2;
    config.simSeconds = 1.0;
    config.searchIterations = 5;
    return config;
}

TEST(TailCapacity, SloScalesWithTheMultiplier)
{
    DesignConfig design;
    TailCapacityConfig config = testConfig();
    double slo5 = tailSloSeconds(serve::App::IMC,
                                 design.network.hostLink, config);
    EXPECT_GT(slo5, 0.0);
    config.sloMultiplier = 10.0;
    double slo10 = tailSloSeconds(serve::App::IMC,
                                  design.network.hostLink, config);
    EXPECT_NEAR(slo10, 2.0 * slo5, 1e-9);
}

TEST(TailCapacity, TailAwareCapacityIsPositiveAndBelowMean)
{
    DesignConfig design;
    TailCapacityConfig config = testConfig();
    const int gpus = 2;
    for (serve::App app : {serve::App::IMC, serve::App::ASR}) {
        double mean =
            gpuServerQps(app, design.network.hostLink, gpus);
        double tail = tailAwareServerQps(
            app, design.network.hostLink, gpus, config);
        EXPECT_GT(tail, 0.0) << serve::appName(app);
        EXPECT_LE(tail, mean) << serve::appName(app);
        // Bursty arrivals must cost real headroom, not a rounding
        // error: the probe's 4x bursts make saturation infeasible.
        EXPECT_LT(tail, 0.99 * mean) << serve::appName(app);
    }
}

TEST(TailCapacity, DeterministicAcrossEqualConfigs)
{
    DesignConfig design;
    const int gpus = 2;
    // Two distinct config objects with equal knobs: the probe is
    // seeded and the cache keys on values, so results are
    // bit-equal.
    double a = tailAwareServerQps(serve::App::IMC,
                                  design.network.hostLink, gpus,
                                  testConfig());
    double b = tailAwareServerQps(serve::App::IMC,
                                  design.network.hostLink, gpus,
                                  testConfig());
    EXPECT_EQ(a, b);
}

TEST(TailCapacity, SmoothArrivalsLeaveMoreCapacityThanBursty)
{
    DesignConfig design;
    const int gpus = 2;
    TailCapacityConfig bursty = testConfig();
    TailCapacityConfig smooth = testConfig();
    smooth.process = cluster::ArrivalProcess::Poisson;
    double with_bursts = tailAwareServerQps(
        serve::App::IMC, design.network.hostLink, gpus, bursty);
    double without = tailAwareServerQps(
        serve::App::IMC, design.network.hostLink, gpus, smooth);
    EXPECT_GT(without, with_bursts);
}

TEST(TailCapacity, PlugsIntoProvisioningAsAnOracle)
{
    TailCapacityConfig config = testConfig();
    DesignConfig closed;
    DesignConfig tail;
    tail.serverQpsFn = tailAwareQpsFn(config);
    auto mean_fleet = provision(Design::DisaggregatedGpu,
                                Mix::Mixed, 0.7, closed);
    auto tail_fleet = provision(Design::DisaggregatedGpu,
                                Mix::Mixed, 0.7, tail);
    // Lower per-server capacity can only grow the fleet.
    EXPECT_GT(tail_fleet.fleet.gpus, mean_fleet.fleet.gpus);
    EXPECT_GE(tail_fleet.tco.total(), mean_fleet.tco.total());
}

} // namespace
} // namespace wsc
} // namespace djinn
