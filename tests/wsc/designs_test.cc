/**
 * @file
 * WSC design / TCO shape tests against paper Section 6 and
 * Figures 15-16.
 */

#include "wsc/designs.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace wsc {
namespace {

double
ratioOver(Design design, Mix mix, double fraction,
          const DesignConfig &config)
{
    double cpu = provision(Design::CpuOnly, mix, fraction,
                           config).tco.total();
    double other = provision(design, mix, fraction,
                             config).tco.total();
    return cpu / other;
}

TEST(Designs, NamesAndOrder)
{
    EXPECT_STREQ(designName(Design::CpuOnly), "CPU Only");
    EXPECT_STREQ(designName(Design::DisaggregatedGpu),
                 "Disaggregated GPU");
    EXPECT_EQ(allDesigns().size(), 3u);
}

TEST(Designs, CpuOnlyFleetSizeMatchesBaseline)
{
    DesignConfig config;
    auto result = provision(Design::CpuOnly, Mix::Mixed, 0.5,
                            config);
    EXPECT_NEAR(result.fleet.beefyServers, 1000.0, 7.0);
    EXPECT_DOUBLE_EQ(result.fleet.gpus, 0.0);
    EXPECT_DOUBLE_EQ(result.fleet.wimpyServers, 0.0);
}

TEST(Designs, ZeroDnnFractionAllDesignsEqual)
{
    DesignConfig config;
    double cpu = provision(Design::CpuOnly, Mix::Mixed, 0.0,
                           config).tco.total();
    double integ = provision(Design::IntegratedGpu, Mix::Mixed, 0.0,
                             config).tco.total();
    double disagg = provision(Design::DisaggregatedGpu, Mix::Mixed,
                              0.0, config).tco.total();
    EXPECT_NEAR(integ, cpu, cpu * 1e-9);
    EXPECT_NEAR(disagg, cpu, cpu * 1e-9);
}

TEST(Designs, Fig15GpuDesignsWinAtHighDnnFraction)
{
    DesignConfig config;
    for (Mix mix : allMixes()) {
        EXPECT_GT(ratioOver(Design::IntegratedGpu, mix, 0.9,
                            config), 1.5)
            << mixName(mix);
        EXPECT_GT(ratioOver(Design::DisaggregatedGpu, mix, 0.9,
                            config), 1.5)
            << mixName(mix);
    }
}

TEST(Designs, Fig15GainGrowsWithDnnFraction)
{
    DesignConfig config;
    double low = ratioOver(Design::DisaggregatedGpu, Mix::Mixed,
                           0.2, config);
    double high = ratioOver(Design::DisaggregatedGpu, Mix::Mixed,
                            0.9, config);
    EXPECT_GT(high, low);
}

TEST(Designs, Fig15MixedGainInPaperBand)
{
    // Paper: "up to 20x for Disaggregated"; our substitution lands
    // in the 4-20x band the paper quotes across mixes.
    DesignConfig config;
    double gain = ratioOver(Design::DisaggregatedGpu, Mix::Mixed,
                            1.0, config);
    EXPECT_GT(gain, 4.0);
    EXPECT_LT(gain, 25.0);
}

TEST(Designs, Fig15DisaggregatedBeatsIntegratedOnMixedAndNlp)
{
    DesignConfig config;
    for (Mix mix : {Mix::Mixed, Mix::Nlp}) {
        for (double f : {0.5, 0.9, 1.0}) {
            double integ = provision(Design::IntegratedGpu, mix, f,
                                     config).tco.total();
            double disagg = provision(Design::DisaggregatedGpu, mix,
                                      f, config).tco.total();
            EXPECT_LT(disagg, integ)
                << mixName(mix) << " at f=" << f;
        }
    }
}

TEST(Designs, Fig15ImageCrossoverAtHighFraction)
{
    // Paper: past ~72% DNN the Integrated design wins for IMAGE.
    DesignConfig config;
    double integ = provision(Design::IntegratedGpu, Mix::Image, 1.0,
                             config).tco.total();
    double disagg = provision(Design::DisaggregatedGpu, Mix::Image,
                              1.0, config).tco.total();
    EXPECT_LT(integ, disagg * 1.05);
}

TEST(Designs, Fig15NlpGainSmallerThanImageGain)
{
    // NLP is bandwidth-limited: its best-case TCO gain trails the
    // image workload's (paper: 4x vs 20x-class).
    DesignConfig config;
    double nlp = ratioOver(Design::IntegratedGpu, Mix::Nlp, 1.0,
                           config);
    double image = ratioOver(Design::IntegratedGpu, Mix::Image, 1.0,
                             config);
    EXPECT_LT(nlp, image);
}

TEST(Designs, DisaggProvisionsFewerGpusForNlp)
{
    // Section 6.3: the Disaggregated design's advantage comes from
    // not over-provisioning GPUs that NLP cannot feed.
    DesignConfig config;
    auto integ = provision(Design::IntegratedGpu, Mix::Nlp, 1.0,
                           config);
    auto disagg = provision(Design::DisaggregatedGpu, Mix::Nlp, 1.0,
                            config);
    EXPECT_LT(disagg.fleet.gpus, integ.fleet.gpus);
}

TEST(Designs, PlanDisaggServerRespectsBandwidth)
{
    DesignConfig config;
    // NLP: chassis ingest limits the useful GPU count below max.
    auto nlp_plan = planDisaggServer(serve::App::POS, config);
    EXPECT_LT(nlp_plan.gpusPerServer,
              config.maxGpusPerDisaggServer);
    // FACE: compute-bound, the chassis fills up.
    auto face_plan = planDisaggServer(serve::App::FACE, config);
    EXPECT_EQ(face_plan.gpusPerServer,
              config.maxGpusPerDisaggServer);
}

TEST(Designs, PrePostAccountingCompressesGains)
{
    // Ablation: charging the GPU designs for ASR's heavy CPU
    // pre/post-processing shrinks the MIXED gain (Amdahl).
    DesignConfig ideal;
    DesignConfig charged;
    charged.accountPrePost = true;
    double g_ideal = ratioOver(Design::DisaggregatedGpu, Mix::Mixed,
                               1.0, ideal);
    double g_charged = ratioOver(Design::DisaggregatedGpu,
                                 Mix::Mixed, 1.0, charged);
    EXPECT_LT(g_charged, g_ideal);
}

TEST(Designs, Fig16UpgradedNetworksUnlockNlpThroughput)
{
    DesignConfig config;
    double v4 = networkPerformanceGain(Mix::Nlp, pcie4With40GbE(),
                                       config);
    double qpi = networkPerformanceGain(Mix::Nlp, qpiWith400GbE(),
                                        config);
    EXPECT_GT(v4, 1.3);
    EXPECT_GT(qpi, v4);
    // Paper Fig 16: improvements up to ~4.5x.
    EXPECT_LT(qpi, 8.0);
}

TEST(Designs, Fig16BaselineGainIsUnity)
{
    DesignConfig config;
    EXPECT_NEAR(networkPerformanceGain(Mix::Nlp, pcie3With10GbE(),
                                       config),
                1.0, 1e-9);
}

TEST(Designs, Fig16ImageWorkloadBarelyGains)
{
    // "The IMAGE workload is not bandwidth constrained."
    DesignConfig config;
    double gain = networkPerformanceGain(Mix::Image,
                                         qpiWith400GbE(), config);
    EXPECT_LT(gain, 1.3);
}

TEST(Designs, InvalidFractionFatal)
{
    DesignConfig config;
    EXPECT_THROW(provision(Design::CpuOnly, Mix::Mixed, -0.1,
                           config),
                 FatalError);
    EXPECT_THROW(provision(Design::CpuOnly, Mix::Mixed, 1.1,
                           config),
                 FatalError);
}

TEST(Designs, DnnQpsTargetsConsistentAcrossDesigns)
{
    DesignConfig config;
    auto cpu = provision(Design::CpuOnly, Mix::Image, 0.7, config);
    auto integ = provision(Design::IntegratedGpu, Mix::Image, 0.7,
                           config);
    EXPECT_NEAR(cpu.dnnQps, integ.dnnQps, cpu.dnnQps * 1e-9);
}

} // namespace
} // namespace wsc
} // namespace djinn
