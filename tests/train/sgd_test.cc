/**
 * @file
 * Trainer tests: numerical gradient checks for every trainable
 * layer kind, loss descent, and end-to-end learning on synthetic
 * tasks (the DIG digits and SENNA-style window features).
 */

#include "train/sgd.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "tonic/image.hh"

namespace djinn {
namespace train {
namespace {

nn::Tensor
randomInput(const nn::Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    nn::Tensor t(shape);
    for (int64_t i = 0; i < t.elems(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return t;
}

std::vector<int>
randomLabels(int64_t batch, int classes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> labels(static_cast<size_t>(batch));
    for (auto &l : labels)
        l = static_cast<int>(rng.uniformInt(0, classes - 1));
    return labels;
}

/**
 * Compare the analytic parameter gradients implied by one SGD step
 * (recovered from the weight delta at zero momentum) against
 * central-difference numerical gradients of the loss.
 */
void
gradientCheck(const std::string &netdef, const nn::Shape &in_shape,
              int classes, double tolerance = 2e-2)
{
    auto net = nn::parseNetDefOrDie(netdef);
    nn::initializeWeights(*net, 7);

    nn::Tensor input = randomInput(in_shape, 3);
    auto labels = randomLabels(in_shape.n(), classes, 5);

    TrainConfig config;
    config.learningRate = 1.0;
    config.momentum = 0.0;
    config.weightDecay = 0.0;

    // Snapshot the parameters, take one step, recover gradients.
    std::vector<std::vector<std::vector<float>>> before;
    for (size_t i = 0; i < net->layerCount(); ++i) {
        std::vector<std::vector<float>> layer;
        for (nn::Tensor *param : net->layer(i).params()) {
            layer.emplace_back(param->data(),
                               param->data() + param->elems());
        }
        before.push_back(std::move(layer));
    }

    SgdTrainer trainer(*net, config);
    trainer.step(input, labels);

    // Recover the analytic gradient from the weight delta
    // (lr = 1, no momentum), then restore ALL parameters before
    // probing anything numerically - the loss must be evaluated at
    // the original point.
    std::vector<std::vector<std::vector<float>>> analytic_all;
    for (size_t i = 0; i < net->layerCount(); ++i) {
        auto params = net->layer(i).params();
        std::vector<std::vector<float>> layer;
        for (size_t p = 0; p < params.size(); ++p) {
            float *w = params[p]->data();
            int64_t total = params[p]->elems();
            std::vector<float> g(static_cast<size_t>(total));
            for (int64_t j = 0; j < total; ++j) {
                g[j] = -(w[j] - before[i][p][j]);
                w[j] = before[i][p][j];
            }
            layer.push_back(std::move(g));
        }
        analytic_all.push_back(std::move(layer));
    }

    Rng pick(11);
    for (size_t i = 0; i < net->layerCount(); ++i) {
        auto params = net->layer(i).params();
        for (size_t p = 0; p < params.size(); ++p) {
            float *w = params[p]->data();
            int64_t total = params[p]->elems();
            const std::vector<float> &analytic =
                analytic_all[i][p];

            int64_t samples = std::min<int64_t>(total, 12);
            for (int64_t s = 0; s < samples; ++s) {
                int64_t j = pick.uniformInt(0, total - 1);
                const float eps = 5e-3f;
                float saved = w[j];
                w[j] = saved + eps;
                double up = trainer.evaluate(input, labels);
                w[j] = saved - eps;
                double down = trainer.evaluate(input, labels);
                w[j] = saved;
                double numeric = (up - down) / (2.0 * eps);
                EXPECT_NEAR(analytic[j], numeric,
                            tolerance *
                                std::max(1.0, std::fabs(numeric)))
                    << "layer " << i << " param " << p
                    << " coordinate " << j;
            }
        }
    }
}

TEST(GradientCheck, FullyConnectedTanh)
{
    gradientCheck("input 6 1 1\n"
                  "layer fc1 fc out 8\n"
                  "layer t tanh\n"
                  "layer fc2 fc out 3\n",
                  nn::Shape(4, 6), 3);
}

TEST(GradientCheck, ReluAndSoftmaxTail)
{
    gradientCheck("input 5 1 1\n"
                  "layer fc1 fc out 10\n"
                  "layer r relu\n"
                  "layer fc2 fc out 4\n"
                  "layer s softmax\n",
                  nn::Shape(3, 5), 4);
}

TEST(GradientCheck, SigmoidStack)
{
    gradientCheck("input 4 1 1\n"
                  "layer fc1 fc out 6\n"
                  "layer s1 sigmoid\n"
                  "layer fc2 fc out 6\n"
                  "layer s2 sigmoid\n"
                  "layer fc3 fc out 2\n",
                  nn::Shape(5, 4), 2);
}

TEST(GradientCheck, HardTanh)
{
    gradientCheck("input 4 1 1\n"
                  "layer fc1 fc out 6\n"
                  "layer h hardtanh\n"
                  "layer fc2 fc out 3\n",
                  nn::Shape(4, 4), 3);
}

TEST(GradientCheck, Convolution)
{
    gradientCheck("input 2 6 6\n"
                  "layer c conv out 3 kernel 3 pad 1\n"
                  "layer r relu\n"
                  "layer fc fc out 4\n",
                  nn::Shape(2, 2, 6, 6), 4);
}

TEST(GradientCheck, GroupedStridedConvolution)
{
    // tanh, not relu: finite differences across a ReLU kink give
    // spurious mismatches for the coordinate straddling it.
    gradientCheck("input 4 8 8\n"
                  "layer c conv out 4 kernel 3 stride 2 group 2\n"
                  "layer t tanh\n"
                  "layer fc fc out 3\n",
                  nn::Shape(2, 4, 8, 8), 3);
}

TEST(GradientCheck, MaxPooling)
{
    gradientCheck("input 2 6 6\n"
                  "layer c conv out 4 kernel 3\n"
                  "layer p maxpool kernel 2 stride 2\n"
                  "layer fc fc out 3\n",
                  nn::Shape(2, 2, 6, 6), 3);
}

TEST(GradientCheck, AvgPoolingAndDropout)
{
    gradientCheck("input 2 6 6\n"
                  "layer c conv out 4 kernel 3\n"
                  "layer p avgpool kernel 2 stride 2\n"
                  "layer d dropout\n"
                  "layer f flatten\n"
                  "layer fc fc out 3\n",
                  nn::Shape(2, 2, 6, 6), 3);
}

TEST(Sgd, LossDecreasesOnFixedBatch)
{
    auto net = nn::parseNetDefOrDie(
        "input 8 1 1\nlayer fc1 fc out 16\nlayer r relu\n"
        "layer fc2 fc out 4\n");
    nn::initializeWeights(*net, 9);
    nn::Tensor input = randomInput(nn::Shape(16, 8), 1);
    auto labels = randomLabels(16, 4, 2);

    TrainConfig config;
    config.learningRate = 0.1;
    SgdTrainer trainer(*net, config);
    double first = trainer.evaluate(input, labels);
    for (int i = 0; i < 50; ++i)
        trainer.step(input, labels);
    double last = trainer.evaluate(input, labels);
    EXPECT_LT(last, 0.5 * first);
    EXPECT_EQ(trainer.steps(), 50u);
}

TEST(Sgd, MomentumAcceleratesDescent)
{
    auto make = []() {
        auto net = nn::parseNetDefOrDie(
            "input 8 1 1\nlayer fc1 fc out 16\nlayer t tanh\n"
            "layer fc2 fc out 4\n");
        nn::initializeWeights(*net, 13);
        return net;
    };
    nn::Tensor input = randomInput(nn::Shape(16, 8), 4);
    auto labels = randomLabels(16, 4, 6);

    auto plain_net = make();
    TrainConfig plain;
    plain.learningRate = 0.02;
    plain.momentum = 0.0;
    SgdTrainer a(*plain_net, plain);
    for (int i = 0; i < 30; ++i)
        a.step(input, labels);

    auto momentum_net = make();
    TrainConfig with_momentum = plain;
    with_momentum.momentum = 0.9;
    SgdTrainer b(*momentum_net, with_momentum);
    for (int i = 0; i < 30; ++i)
        b.step(input, labels);

    EXPECT_LT(b.evaluate(input, labels),
              a.evaluate(input, labels));
}

TEST(Sgd, WeightDecayShrinksNorm)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer fc fc out 2\n");
    nn::initializeWeights(*net, 21);
    nn::Tensor input = randomInput(nn::Shape(8, 4), 8);
    auto labels = randomLabels(8, 2, 9);

    auto norm = [&]() {
        double s = 0.0;
        nn::Tensor *w = net->layer(0).params()[0];
        for (int64_t i = 0; i < w->elems(); ++i)
            s += (*w)[i] * (*w)[i];
        return s;
    };

    TrainConfig config;
    config.learningRate = 0.01;
    config.momentum = 0.0;
    config.weightDecay = 10.0; // exaggerated to dominate
    SgdTrainer trainer(*net, config);
    double before = norm();
    for (int i = 0; i < 20; ++i)
        trainer.step(input, labels);
    EXPECT_LT(norm(), before);
}

TEST(Sgd, RejectsUntrainableLayers)
{
    auto lrn_net = nn::parseNetDefOrDie(
        "input 4 4 4\nlayer l lrn size 3\nlayer fc fc out 2\n");
    EXPECT_THROW(SgdTrainer(*lrn_net, TrainConfig{}), FatalError);

    auto lc_net = nn::parseNetDefOrDie(
        "input 2 6 6\nlayer l local out 2 kernel 3\n"
        "layer fc fc out 2\n");
    EXPECT_THROW(SgdTrainer(*lc_net, TrainConfig{}), FatalError);
}

TEST(Sgd, RejectsMidNetworkSoftmax)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer s softmax\nlayer fc fc out 2\n");
    EXPECT_THROW(SgdTrainer(*net, TrainConfig{}), FatalError);
}

TEST(Sgd, RejectsLabelBatchMismatch)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer fc fc out 2\n");
    nn::initializeWeights(*net, 2);
    SgdTrainer trainer(*net, TrainConfig{});
    nn::Tensor input(nn::Shape(4, 4));
    std::vector<int> labels{0, 1}; // batch is 4
    EXPECT_THROW(trainer.step(input, labels), FatalError);
}

TEST(Sgd, RejectsOutOfRangeLabel)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer fc fc out 2\n");
    nn::initializeWeights(*net, 2);
    SgdTrainer trainer(*net, TrainConfig{});
    nn::Tensor input(nn::Shape(1, 4));
    EXPECT_THROW(trainer.step(input, {5}), FatalError);
}

TEST(Training, LearnsSyntheticDigits)
{
    // End-to-end: a small CNN learns the DIG synthetic digit
    // distribution to high accuracy.
    auto net = nn::parseNetDefOrDie(
        "name digits\ninput 1 28 28\n"
        "layer conv1 conv out 6 kernel 5 stride 2\n"
        "layer r1 relu\n"
        "layer pool1 maxpool kernel 2 stride 2\n"
        "layer fc1 fc out 32\n"
        "layer r2 relu\n"
        "layer fc2 fc out 10\n");
    nn::initializeWeights(*net, 17);

    Rng rng(23);
    auto make_batch = [&](int64_t batch, nn::Tensor &input,
                          std::vector<int> &labels) {
        input.resize(nn::Shape(batch, 1, 28, 28));
        labels.resize(static_cast<size_t>(batch));
        for (int64_t n = 0; n < batch; ++n) {
            int digit = static_cast<int>(n % 10);
            tonic::Image image = tonic::synthesizeDigit(digit, rng);
            for (int64_t i = 0; i < 28 * 28; ++i) {
                input.sample(n)[i] =
                    static_cast<float>(image.pixels[i]) / 255.0f;
            }
            labels[static_cast<size_t>(n)] = digit;
        }
    };

    TrainConfig config;
    config.learningRate = 0.05;
    SgdTrainer trainer(*net, config);
    nn::Tensor input;
    std::vector<int> labels;
    for (int epoch = 0; epoch < 60; ++epoch) {
        make_batch(30, input, labels);
        trainer.step(input, labels);
    }

    // Fresh test batch.
    make_batch(100, input, labels);
    EXPECT_GT(accuracy(*net, input, labels), 0.9);
}

TEST(Training, LearnsWindowTagRule)
{
    // A SENNA-shaped net learns a simple synthetic rule: the tag
    // is the sign pattern of the center embedding's first
    // coordinates.
    auto net = nn::parseNetDefOrDie(
        "name tagger\ninput 250 1 1\n"
        "layer fc1 fc out 64\n"
        "layer h hardtanh\n"
        "layer fc2 fc out 4\n");
    nn::initializeWeights(*net, 19);

    Rng rng(31);
    auto make_batch = [&](int64_t batch, nn::Tensor &input,
                          std::vector<int> &labels) {
        input.resize(nn::Shape(batch, 250));
        labels.resize(static_cast<size_t>(batch));
        for (int64_t n = 0; n < batch; ++n) {
            float *row = input.sample(n);
            for (int64_t i = 0; i < 250; ++i)
                row[i] = static_cast<float>(rng.gaussian(0, 1));
            // Center slot occupies [100, 150); the rule reads its
            // first two coordinates.
            int label = (row[100] > 0 ? 1 : 0) +
                        (row[101] > 0 ? 2 : 0);
            labels[static_cast<size_t>(n)] = label;
        }
    };

    TrainConfig config;
    config.learningRate = 0.05;
    SgdTrainer trainer(*net, config);
    nn::Tensor input;
    std::vector<int> labels;
    for (int step = 0; step < 300; ++step) {
        make_batch(64, input, labels);
        trainer.step(input, labels);
    }
    make_batch(256, input, labels);
    EXPECT_GT(accuracy(*net, input, labels), 0.85);
}

} // namespace
} // namespace train
} // namespace djinn
