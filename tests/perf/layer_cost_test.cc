#include "perf/layer_cost.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/net_def.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace perf {
namespace {

std::shared_ptr<nn::Network>
fcNet(int64_t in, int64_t out)
{
    return nn::parseNetDefOrDie(strprintf(
        "name t\ninput %lld 1 1\nlayer fc fc out %lld\n",
        static_cast<long long>(in), static_cast<long long>(out)));
}

TEST(GemmGeometry, ExactTiles)
{
    auto g = gemmGeometry(64, 64);
    EXPECT_EQ(g.blocks, 4);
    EXPECT_DOUBLE_EQ(g.tileUtilization, 1.0);
}

TEST(GemmGeometry, PartialTilesLoseUtilization)
{
    auto g = gemmGeometry(1, 32);
    EXPECT_EQ(g.blocks, 1);
    EXPECT_DOUBLE_EQ(g.tileUtilization, 1.0 / 32.0);
}

TEST(GemmGeometry, RoundsUpBlocks)
{
    auto g = gemmGeometry(33, 65);
    EXPECT_EQ(g.blocks, 2 * 3);
    EXPECT_NEAR(g.tileUtilization, (33.0 / 64) * (65.0 / 96), 1e-12);
}

TEST(GemmGeometry, CustomTileM)
{
    auto g = gemmGeometry(10, 32, 16);
    EXPECT_EQ(g.blocks, 1);
    EXPECT_DOUBLE_EQ(g.tileUtilization, 10.0 / 16.0);
}

TEST(GemmGeometry, MinimumOneBlock)
{
    auto g = gemmGeometry(0, 0);
    EXPECT_EQ(g.blocks, 1);
}

TEST(LayerCost, FcFlopsFormula)
{
    auto net = fcNet(100, 50);
    NetCost cost = analyzeNetwork(*net, 4);
    ASSERT_EQ(cost.kernels.size(), 1u);
    // 2 * batch * in * out.
    EXPECT_DOUBLE_EQ(cost.kernels[0].flops, 2.0 * 4 * 100 * 50);
}

TEST(LayerCost, FcWeightsReadOncePerLaunch)
{
    auto net = fcNet(100, 50);
    NetCost b1 = analyzeNetwork(*net, 1);
    NetCost b16 = analyzeNetwork(*net, 16);
    // Batch grows flops but not weight traffic.
    EXPECT_DOUBLE_EQ(b1.kernels[0].weightBytes,
                     b16.kernels[0].weightBytes);
    EXPECT_DOUBLE_EQ(b16.kernels[0].flops,
                     16.0 * b1.kernels[0].flops);
}

TEST(LayerCost, FcActivationBytesScaleWithBatch)
{
    auto net = fcNet(100, 50);
    NetCost b1 = analyzeNetwork(*net, 1);
    NetCost b8 = analyzeNetwork(*net, 8);
    EXPECT_DOUBLE_EQ(b8.kernels[0].activationBytes,
                     8.0 * b1.kernels[0].activationBytes);
}

TEST(LayerCost, ConvFlopsFormula)
{
    auto net = nn::parseNetDefOrDie(
        "input 3 8 8\nlayer c conv out 4 kernel 3\n");
    NetCost cost = analyzeNetwork(*net, 1);
    // 6x6 output positions, patch 3*3*3=27, 4 filters.
    EXPECT_DOUBLE_EQ(cost.kernels[0].flops, 2.0 * 4 * 36 * 27);
}

TEST(LayerCost, ConvWeightTrafficNearlyFlatInBatch)
{
    auto net = nn::parseNetDefOrDie(
        "input 3 8 8\nlayer c conv out 4 kernel 3\n");
    NetCost b1 = analyzeNetwork(*net, 1);
    NetCost b16 = analyzeNetwork(*net, 16);
    // Cached re-reads: far less than 16x growth.
    EXPECT_LT(b16.kernels[0].weightBytes,
              4.0 * b1.kernels[0].weightBytes);
    EXPECT_GT(b16.kernels[0].weightBytes,
              b1.kernels[0].weightBytes);
}

TEST(LayerCost, LocallyConnectedStreamsWeightsPerSample)
{
    auto net = nn::parseNetDefOrDie(
        "input 2 8 8\nlayer l local out 2 kernel 3\n");
    NetCost b1 = analyzeNetwork(*net, 1);
    NetCost b4 = analyzeNetwork(*net, 4);
    EXPECT_DOUBLE_EQ(b4.kernels[0].weightBytes,
                     4.0 * b1.kernels[0].weightBytes);
    EXPECT_EQ(b4.kernels[0].launches, 4);
}

TEST(LayerCost, ParamBytesIndependentOfBatch)
{
    auto net = nn::parseNetDefOrDie(
        "input 2 8 8\nlayer l local out 2 kernel 3\n");
    NetCost b1 = analyzeNetwork(*net, 1);
    NetCost b4 = analyzeNetwork(*net, 4);
    EXPECT_DOUBLE_EQ(b1.kernels[0].paramBytes,
                     b4.kernels[0].paramBytes);
    EXPECT_DOUBLE_EQ(
        b1.kernels[0].paramBytes,
        static_cast<double>(net->paramCount()) * sizeof(float));
}

TEST(LayerCost, ElementwiseLayersHaveNoWeights)
{
    auto net = nn::parseNetDefOrDie(
        "input 1 8 8\nlayer r relu\nlayer p maxpool kernel 2 "
        "stride 2\nlayer s softmax\n");
    NetCost cost = analyzeNetwork(*net, 2);
    for (const auto &k : cost.kernels) {
        EXPECT_DOUBLE_EQ(k.weightBytes, 0.0);
        EXPECT_DOUBLE_EQ(k.paramBytes, 0.0);
        EXPECT_EQ(k.launches, 1);
    }
}

TEST(LayerCost, TotalsSumKernels)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer a fc out 8\nlayer r relu\n"
        "layer b fc out 2\n");
    NetCost cost = analyzeNetwork(*net, 3);
    double flops = 0.0, bytes = 0.0;
    int64_t launches = 0;
    for (const auto &k : cost.kernels) {
        flops += k.flops;
        bytes += k.weightBytes + k.activationBytes;
        launches += k.launches;
    }
    EXPECT_DOUBLE_EQ(cost.totalFlops(), flops);
    EXPECT_DOUBLE_EQ(cost.totalBytes(), bytes);
    EXPECT_EQ(cost.totalLaunches(), launches);
}

TEST(LayerCost, KernelPerLayerInOrder)
{
    auto net = nn::parseNetDefOrDie(
        "input 4 1 1\nlayer a fc out 8\nlayer r relu\n"
        "layer b fc out 2\n");
    NetCost cost = analyzeNetwork(*net, 1);
    ASSERT_EQ(cost.kernels.size(), 3u);
    EXPECT_EQ(cost.kernels[0].layer, "a");
    EXPECT_EQ(cost.kernels[1].layer, "r");
    EXPECT_EQ(cost.kernels[2].layer, "b");
}

TEST(LayerCost, NonPositiveBatchFatal)
{
    auto net = fcNet(4, 2);
    EXPECT_THROW(analyzeNetwork(*net, 0), FatalError);
}

TEST(LayerCost, AlexNetFlopsInKnownRange)
{
    auto net = nn::parseNetDefOrDie(
        nn::zoo::netDef(nn::zoo::Model::AlexNet));
    NetCost cost = analyzeNetwork(*net, 1);
    // AlexNet forward is ~1.4-1.6 GFLOPs per image.
    EXPECT_GT(cost.totalFlops(), 1.2e9);
    EXPECT_LT(cost.totalFlops(), 2.0e9);
}

TEST(LayerCost, KaldiFlopsMatchParamCount)
{
    auto net = nn::parseNetDefOrDie(
        nn::zoo::netDef(nn::zoo::Model::KaldiAsr));
    NetCost cost = analyzeNetwork(*net, 1);
    // Pure-FC network: forward flops ~ 2 * params.
    EXPECT_NEAR(cost.totalFlops(),
                2.0 * static_cast<double>(net->paramCount()), 5e7);
}

} // namespace
} // namespace perf
} // namespace djinn
