/**
 * @file
 * Tests for the serving-simulator extensions: open-loop Poisson
 * load, heterogeneous co-location, GPU memory capacity checks, and
 * energy accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/simulation.hh"

namespace djinn {
namespace serve {
namespace {

SimConfig
fastConfig(App app)
{
    SimConfig config;
    config.app = app;
    config.warmupTime = 0.1;
    config.measureTime = 0.5;
    return config;
}

// Open-loop load ----------------------------------------------------

TEST(OpenLoop, ThroughputTracksOfferedLoadBelowSaturation)
{
    SimConfig config = fastConfig(App::POS);
    config.batch = 8;
    config.instancesPerGpu = 4;
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 5000.0;
    config.measureTime = 1.0;
    SimResult result = runServingSim(config);
    EXPECT_NEAR(result.throughputQps, 5000.0, 600.0);
}

TEST(OpenLoop, SaturatedLoadCapsAtClosedLoopCapacity)
{
    SimConfig closed = fastConfig(App::POS);
    closed.batch = 64;
    closed.instancesPerGpu = 4;
    double capacity = runServingSim(closed).throughputQps;

    SimConfig open = closed;
    open.loadMode = LoadMode::Open;
    open.arrivalRate = 4.0 * capacity;
    double open_qps = runServingSim(open).throughputQps;
    EXPECT_LT(open_qps, 1.25 * capacity);
}

TEST(OpenLoop, LatencyLowAtLightLoad)
{
    // At 5% load, queries barely queue: latency ~ service time.
    SimConfig config = fastConfig(App::POS);
    config.batch = 8;
    config.instancesPerGpu = 4;
    config.loadMode = LoadMode::Open;
    double capacity = 0.0;
    {
        SimConfig closed = config;
        closed.loadMode = LoadMode::Closed;
        capacity = runServingSim(closed).throughputQps;
    }
    config.arrivalRate = 0.05 * capacity;
    config.measureTime = 1.0;
    SimResult light = runServingSim(config);
    config.arrivalRate = 0.95 * capacity;
    SimResult heavy = runServingSim(config);
    EXPECT_LT(light.meanLatency, heavy.meanLatency);
}

TEST(OpenLoop, DeterministicPerSeed)
{
    SimConfig config = fastConfig(App::NER);
    config.batch = 8;
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 2000.0;
    config.seed = 7;
    SimResult a = runServingSim(config);
    SimResult b = runServingSim(config);
    EXPECT_DOUBLE_EQ(a.throughputQps, b.throughputQps);
    EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
}

TEST(OpenLoop, DifferentSeedsDiffer)
{
    SimConfig config = fastConfig(App::NER);
    config.batch = 8;
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 2000.0;
    config.seed = 1;
    SimResult a = runServingSim(config);
    config.seed = 2;
    SimResult b = runServingSim(config);
    EXPECT_NE(a.meanLatency, b.meanLatency);
}

TEST(OpenLoop, RequiresArrivalRate)
{
    SimConfig config = fastConfig(App::POS);
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 0.0;
    EXPECT_THROW(runServingSim(config), FatalError);
}

TEST(OpenLoop, PercentilesOrdered)
{
    SimConfig config = fastConfig(App::POS);
    config.batch = 16;
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 20000.0;
    SimResult result = runServingSim(config);
    EXPECT_LE(result.medianLatency, result.p95Latency);
    EXPECT_LE(result.p95Latency, result.p99Latency);
}

// Co-location ---------------------------------------------------------

TEST(MixedSim, AllTenantsMakeProgress)
{
    SimConfig config = fastConfig(App::IMC);
    config.instancesPerGpu = 1; // unused by mixed
    std::vector<TenantConfig> tenants{
        {App::IMC, 16, 2},
        {App::POS, 64, 2},
    };
    MixedSimResult result = runMixedSim(config, tenants);
    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_GT(result.tenants[0].throughputQps, 0.0);
    EXPECT_GT(result.tenants[1].throughputQps, 0.0);
    EXPECT_EQ(result.tenants[0].app, App::IMC);
    EXPECT_EQ(result.tenants[1].app, App::POS);
}

TEST(MixedSim, ColocationCostsEachTenantThroughput)
{
    SimConfig config = fastConfig(App::IMC);
    std::vector<TenantConfig> solo{{App::IMC, 16, 4}};
    double alone =
        runMixedSim(config, solo).tenants[0].throughputQps;

    std::vector<TenantConfig> shared{
        {App::IMC, 16, 4},
        {App::ASR, 2, 4},
    };
    double contended =
        runMixedSim(config, shared).tenants[0].throughputQps;
    EXPECT_LT(contended, alone);
}

TEST(MixedSim, SevenAppConsolidationRuns)
{
    // The DjiNN vision: all seven Tonic services on one GPU server.
    SimConfig config = fastConfig(App::IMC);
    config.gpuCount = 2;
    std::vector<TenantConfig> tenants;
    for (App app : allApps())
        tenants.push_back({app, appSpec(app).tunedBatch, 1});
    MixedSimResult result = runMixedSim(config, tenants);
    ASSERT_EQ(result.tenants.size(), 7u);
    for (const auto &tenant : result.tenants) {
        EXPECT_GT(tenant.throughputQps, 0.0)
            << appName(tenant.app);
    }
    EXPECT_GT(result.gpuUtilization, 0.2);
}

TEST(MixedSim, RejectsEmptyTenantList)
{
    SimConfig config = fastConfig(App::IMC);
    EXPECT_THROW(runMixedSim(config, {}), FatalError);
}

TEST(MixedSim, RejectsBadTenant)
{
    SimConfig config = fastConfig(App::IMC);
    std::vector<TenantConfig> tenants{{App::IMC, 0, 1}};
    EXPECT_THROW(runMixedSim(config, tenants), FatalError);
}

TEST(MixedSim, OpenLoopSplitsRateByInstances)
{
    SimConfig config = fastConfig(App::POS);
    config.loadMode = LoadMode::Open;
    config.arrivalRate = 4000.0;
    config.measureTime = 1.0;
    std::vector<TenantConfig> tenants{
        {App::POS, 8, 3},
        {App::NER, 8, 1},
    };
    MixedSimResult result = runMixedSim(config, tenants);
    // POS gets ~3/4 of the arrivals.
    EXPECT_NEAR(result.tenants[0].throughputQps, 3000.0, 450.0);
    EXPECT_NEAR(result.tenants[1].throughputQps, 1000.0, 250.0);
}

// GPU memory capacity --------------------------------------------------

TEST(GpuMemory, OversizedBatchRejected)
{
    SimConfig config = fastConfig(App::IMC);
    // 8192 images worth of conv1 activations blow past 12 GB.
    config.batch = 8192;
    config.gpuSpec.launchOverhead = 20e-6;
    EXPECT_THROW(runServingSim(config), FatalError);
}

TEST(GpuMemory, PaperOperatingPointsFit)
{
    for (App app : allApps()) {
        SimConfig config = fastConfig(app);
        config.batch = appSpec(app).tunedBatch;
        EXPECT_NO_THROW(runServingSim(config)) << appName(app);
    }
}

// Energy ----------------------------------------------------------------

TEST(Energy, PositiveAndFiniteAtSteadyState)
{
    SimConfig config = fastConfig(App::IMC);
    config.batch = 16;
    config.instancesPerGpu = 4;
    SimResult result = runServingSim(config);
    EXPECT_GT(result.energyPerQuery, 0.0);
    EXPECT_LT(result.energyPerQuery, 10.0); // J/query sanity
}

TEST(Energy, NlpQueriesCheaperThanImc)
{
    SimConfig imc = fastConfig(App::IMC);
    imc.batch = 16;
    imc.instancesPerGpu = 4;
    SimConfig pos = fastConfig(App::POS);
    pos.batch = 64;
    pos.instancesPerGpu = 4;
    EXPECT_LT(runServingSim(pos).energyPerQuery,
              runServingSim(imc).energyPerQuery);
}

TEST(Energy, IdleFloorChargedAtLowLoad)
{
    // At 5% load the idle-power floor dominates: energy per query
    // is much worse than at saturation.
    SimConfig sat = fastConfig(App::POS);
    sat.batch = 64;
    sat.instancesPerGpu = 4;
    SimResult at_peak = runServingSim(sat);

    SimConfig light = sat;
    light.loadMode = LoadMode::Open;
    light.arrivalRate = 0.05 * at_peak.throughputQps;
    light.measureTime = 1.0;
    SimResult idleish = runServingSim(light);
    EXPECT_GT(idleish.energyPerQuery,
              3.0 * at_peak.energyPerQuery);
}

} // namespace
} // namespace serve
} // namespace djinn
