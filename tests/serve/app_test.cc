#include "serve/app.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace serve {
namespace {

TEST(AppCatalog, SevenAppsInTableOrder)
{
    const auto &apps = allApps();
    ASSERT_EQ(apps.size(), 7u);
    EXPECT_EQ(apps[0], App::IMC);
    EXPECT_EQ(apps[3], App::ASR);
    EXPECT_EQ(apps[6], App::NER);
}

TEST(AppCatalog, NamesRoundTrip)
{
    for (App app : allApps())
        EXPECT_EQ(appFromName(appName(app)), app);
    EXPECT_THROW(appFromName("OCR"), FatalError);
}

TEST(AppCatalog, Table3SamplesPerQuery)
{
    EXPECT_EQ(appSpec(App::IMC).samplesPerQuery, 1);
    EXPECT_EQ(appSpec(App::DIG).samplesPerQuery, 100);
    EXPECT_EQ(appSpec(App::FACE).samplesPerQuery, 1);
    EXPECT_EQ(appSpec(App::ASR).samplesPerQuery, 548);
    EXPECT_EQ(appSpec(App::POS).samplesPerQuery, 28);
    EXPECT_EQ(appSpec(App::CHK).samplesPerQuery, 28);
    EXPECT_EQ(appSpec(App::NER).samplesPerQuery, 28);
}

TEST(AppCatalog, Table3InputSizes)
{
    // Table 3 input sizes in KB.
    EXPECT_NEAR(appSpec(App::IMC).inputBytes / 1024.0, 604, 1);
    EXPECT_NEAR(appSpec(App::DIG).inputBytes / 1024.0, 307, 1);
    EXPECT_NEAR(appSpec(App::FACE).inputBytes / 1024.0, 271, 1);
    EXPECT_NEAR(appSpec(App::ASR).inputBytes / 1024.0, 4594, 1);
    EXPECT_NEAR(appSpec(App::POS).inputBytes / 1024.0, 38, 1);
    EXPECT_NEAR(appSpec(App::CHK).inputBytes / 1024.0, 75, 1);
    EXPECT_NEAR(appSpec(App::NER).inputBytes / 1024.0, 43, 1);
}

TEST(AppCatalog, Table3TunedBatchSizes)
{
    EXPECT_EQ(appSpec(App::IMC).tunedBatch, 16);
    EXPECT_EQ(appSpec(App::DIG).tunedBatch, 16);
    EXPECT_EQ(appSpec(App::FACE).tunedBatch, 2);
    EXPECT_EQ(appSpec(App::ASR).tunedBatch, 2);
    EXPECT_EQ(appSpec(App::POS).tunedBatch, 64);
    EXPECT_EQ(appSpec(App::CHK).tunedBatch, 64);
    EXPECT_EQ(appSpec(App::NER).tunedBatch, 64);
}

TEST(AppCatalog, Figure4DnnFractions)
{
    // Image tasks: almost all DNN.
    for (App app : {App::IMC, App::DIG, App::FACE})
        EXPECT_GT(appSpec(app).dnnFraction(), 0.95);
    // ASR: roughly half.
    EXPECT_NEAR(appSpec(App::ASR).dnnFraction(), 0.48, 0.05);
    // NLP: more than two thirds.
    for (App app : {App::POS, App::CHK, App::NER}) {
        EXPECT_GT(appSpec(app).dnnFraction(), 0.60);
        EXPECT_LT(appSpec(app).dnnFraction(), 0.80);
    }
}

TEST(AppCatalog, ModelsMatchApplications)
{
    using nn::zoo::Model;
    EXPECT_EQ(appSpec(App::IMC).model, Model::AlexNet);
    EXPECT_EQ(appSpec(App::DIG).model, Model::Mnist);
    EXPECT_EQ(appSpec(App::FACE).model, Model::DeepFace);
    EXPECT_EQ(appSpec(App::ASR).model, Model::KaldiAsr);
    EXPECT_EQ(appSpec(App::POS).model, Model::SennaPos);
    EXPECT_EQ(appSpec(App::CHK).model, Model::SennaChk);
    EXPECT_EQ(appSpec(App::NER).model, Model::SennaNer);
}

TEST(AppCatalog, OutputsPositive)
{
    for (App app : allApps())
        EXPECT_GT(appSpec(app).outputBytes, 0.0)
            << appName(app);
}

} // namespace
} // namespace serve
} // namespace djinn
