#include "serve/tuner.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace serve {
namespace {

SimConfig
fastBase()
{
    SimConfig config;
    config.warmupTime = 0.1;
    config.measureTime = 0.5;
    return config;
}

TEST(Tuner, NlpTunesToLargeBatch)
{
    TunerResult result = tuneBatchSize(App::POS, fastBase());
    // The paper lands on 64; accept the 32-128 neighbourhood.
    EXPECT_GE(result.batch, 32);
    EXPECT_LE(result.batch, 128);
}

TEST(Tuner, AsrTunesToTinyBatch)
{
    TunerResult result = tuneBatchSize(App::ASR, fastBase());
    EXPECT_LE(result.batch, 2); // paper: 2
}

TEST(Tuner, FaceTunesToTinyBatch)
{
    TunerResult result = tuneBatchSize(App::FACE, fastBase());
    EXPECT_LE(result.batch, 4); // paper: 2
}

TEST(Tuner, SweepCoversAllCandidates)
{
    TunerOptions options;
    options.candidates = {1, 4, 16};
    TunerResult result = tuneBatchSize(App::DIG, fastBase(),
                                       options);
    ASSERT_EQ(result.sweep.size(), 3u);
    EXPECT_EQ(result.sweep[0].batch, 1);
    EXPECT_EQ(result.sweep[2].batch, 16);
    for (const auto &point : result.sweep)
        EXPECT_GT(point.throughputQps, 0.0);
}

TEST(Tuner, ChosenBatchIsAdmissible)
{
    TunerResult result = tuneBatchSize(App::IMC, fastBase());
    for (const auto &point : result.sweep) {
        if (point.batch == result.batch) {
            EXPECT_TRUE(point.admissible);
        }
    }
}

TEST(Tuner, TightLatencyBudgetForcesSmallBatch)
{
    TunerOptions strict;
    strict.latencySlack = 1.1;
    TunerResult result = tuneBatchSize(App::POS, fastBase(),
                                       strict);
    EXPECT_LE(result.batch, 4);
}

TEST(Tuner, LooseThroughputFractionPrefersSmallerBatch)
{
    TunerOptions loose;
    loose.throughputFraction = 0.3;
    TunerResult relaxed = tuneBatchSize(App::POS, fastBase(),
                                        loose);
    TunerOptions tight;
    tight.throughputFraction = 0.95;
    TunerResult greedy = tuneBatchSize(App::POS, fastBase(),
                                       tight);
    EXPECT_LE(relaxed.batch, greedy.batch);
}

TEST(Tuner, InvalidOptionsFatal)
{
    TunerOptions empty;
    empty.candidates.clear();
    EXPECT_THROW(tuneBatchSize(App::IMC, fastBase(), empty),
                 FatalError);
    TunerOptions unsorted;
    unsorted.candidates = {4, 1};
    EXPECT_THROW(tuneBatchSize(App::IMC, fastBase(), unsorted),
                 FatalError);
}

} // namespace
} // namespace serve
} // namespace djinn
