#include "serve/resources.hh"

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"

namespace djinn {
namespace serve {
namespace {

gpu::LinkSpec
testLink(double bandwidth)
{
    gpu::LinkSpec link;
    link.name = "test";
    link.peakBandwidth = bandwidth;
    link.efficiency = 1.0;
    link.perTransferLatency = 0.0;
    return link;
}

// FifoLink ----------------------------------------------------------

TEST(FifoLink, SingleTransferTiming)
{
    sim::EventQueue eq;
    FifoLink link(eq, testLink(100.0)); // 100 B/s
    double done_at = -1;
    link.transfer(50.0, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_DOUBLE_EQ(done_at, 0.5);
    EXPECT_DOUBLE_EQ(link.bytesMoved(), 50.0);
}

TEST(FifoLink, TransfersSerialize)
{
    sim::EventQueue eq;
    FifoLink link(eq, testLink(100.0));
    std::vector<double> done;
    link.transfer(100.0, [&]() { done.push_back(eq.now()); });
    link.transfer(100.0, [&]() { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(FifoLink, FifoOrderPreserved)
{
    sim::EventQueue eq;
    FifoLink link(eq, testLink(1000.0));
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        link.transfer(10.0, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(FifoLink, PerTransferLatencyCharged)
{
    sim::EventQueue eq;
    gpu::LinkSpec spec = testLink(1e9);
    spec.perTransferLatency = 0.25;
    FifoLink link(eq, spec);
    double done_at = -1;
    link.transfer(0.0, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_DOUBLE_EQ(done_at, 0.25);
}

TEST(FifoLink, BusyTimeAccumulates)
{
    sim::EventQueue eq;
    FifoLink link(eq, testLink(100.0));
    link.transfer(100.0, []() {});
    link.transfer(200.0, []() {});
    eq.run();
    EXPECT_DOUBLE_EQ(link.busyTime(), 3.0);
}

TEST(FifoLink, ChainedTransfersFromCallback)
{
    sim::EventQueue eq;
    FifoLink link(eq, testLink(100.0));
    double done_at = -1;
    link.transfer(100.0, [&]() {
        link.transfer(100.0, [&]() { done_at = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(done_at, 2.0);
}

// CpuPool -----------------------------------------------------------

TEST(CpuPool, ParallelUpToCores)
{
    sim::EventQueue eq;
    CpuPool pool(eq, 2);
    std::vector<double> done;
    for (int i = 0; i < 2; ++i)
        pool.run(1.0, [&]() { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 1.0);
}

TEST(CpuPool, QueuesBeyondCores)
{
    sim::EventQueue eq;
    CpuPool pool(eq, 2);
    std::vector<double> done;
    for (int i = 0; i < 3; ++i)
        pool.run(1.0, [&]() { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_DOUBLE_EQ(done[2], 2.0);
}

TEST(CpuPool, BusyTimeCoreSeconds)
{
    sim::EventQueue eq;
    CpuPool pool(eq, 4);
    pool.run(1.0, []() {});
    pool.run(2.0, []() {});
    eq.run();
    EXPECT_DOUBLE_EQ(pool.busyTime(), 3.0);
}

TEST(CpuPool, ZeroCoresFatal)
{
    sim::EventQueue eq;
    EXPECT_THROW(CpuPool(eq, 0), FatalError);
}

// GpuResource: exclusive (time-shared) mode --------------------------

TEST(GpuExclusive, JobsSerialize)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    spec.contextSwitchOverhead = 0.0;
    GpuResource gpu(eq, spec, false);
    std::vector<double> done;
    gpu.submit({1.0, 0.5, 0, [&]() { done.push_back(eq.now()); }});
    gpu.submit({1.0, 0.5, 0, [&]() { done.push_back(eq.now()); }});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(GpuExclusive, ContextSwitchChargedOnProcessChange)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    spec.contextSwitchOverhead = 0.5;
    GpuResource gpu(eq, spec, false);
    std::vector<double> done;
    // Same instance twice: one switch charged only when the
    // instance changes.
    gpu.submit({1.0, 0.5, 1, [&]() { done.push_back(eq.now()); }});
    gpu.submit({1.0, 0.5, 1, [&]() { done.push_back(eq.now()); }});
    gpu.submit({1.0, 0.5, 2, [&]() { done.push_back(eq.now()); }});
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 2.0);       // no switch
    EXPECT_DOUBLE_EQ(done[2], 3.5);       // switch to instance 2
}

TEST(GpuExclusive, WorkDoneExcludesSwitchOverhead)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    spec.contextSwitchOverhead = 0.5;
    GpuResource gpu(eq, spec, false);
    gpu.submit({1.0, 0.5, 1, []() {}});
    gpu.submit({1.0, 0.5, 2, []() {}});
    eq.run();
    EXPECT_DOUBLE_EQ(gpu.workDone(), 2.0);
}

// GpuResource: MPS processor sharing ---------------------------------

TEST(GpuMps, LowOccupancyJobsRunConcurrently)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    GpuResource gpu(eq, spec, true);
    std::vector<double> done;
    // Two jobs at 0.4 occupancy each: sum 0.8 <= 1, full speed.
    gpu.submit({1.0, 0.4, 0, [&]() { done.push_back(eq.now()); }});
    gpu.submit({1.0, 0.4, 1, [&]() { done.push_back(eq.now()); }});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(GpuMps, OversubscribedJobsShareProportionally)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    GpuResource gpu(eq, spec, true);
    std::vector<double> done;
    // Two full-occupancy jobs: each runs at half speed.
    gpu.submit({1.0, 1.0, 0, [&]() { done.push_back(eq.now()); }});
    gpu.submit({1.0, 1.0, 1, [&]() { done.push_back(eq.now()); }});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], 2.0, 1e-9);
    EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(GpuMps, LateArrivalSlowsRemainder)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    GpuResource gpu(eq, spec, true);
    std::vector<double> done;
    gpu.submit({1.0, 1.0, 0, [&]() { done.push_back(eq.now()); }});
    eq.scheduleAt(0.5, [&]() {
        gpu.submit({1.0, 1.0, 1,
                    [&]() { done.push_back(eq.now()); }});
    });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // First job: 0.5 solo + 0.5 remaining at half rate -> 1.5.
    EXPECT_NEAR(done[0], 1.5, 1e-9);
    // Second: half rate until 1.5 (0.5 done), then solo -> 2.0.
    EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(GpuMps, ProcessLimitQueuesOverflow)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    spec.mpsMaxProcesses = 2;
    GpuResource gpu(eq, spec, true);
    std::vector<double> done;
    for (int i = 0; i < 3; ++i) {
        gpu.submit({1.0, 0.1, i,
                    [&]() { done.push_back(eq.now()); }});
    }
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    // First two run together, third starts after they finish.
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 1.0, 1e-9);
    EXPECT_NEAR(done[2], 2.0, 1e-9);
}

TEST(GpuMps, WorkDoneTracksSoloTime)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    GpuResource gpu(eq, spec, true);
    gpu.submit({1.5, 0.7, 0, []() {}});
    gpu.submit({0.5, 0.7, 1, []() {}});
    eq.run();
    EXPECT_NEAR(gpu.workDone(), 2.0, 1e-9);
}

TEST(GpuResource, NonPositiveJobFatal)
{
    sim::EventQueue eq;
    gpu::GpuSpec spec;
    GpuResource gpu(eq, spec, true);
    EXPECT_THROW(gpu.submit({0.0, 0.5, 0, []() {}}), FatalError);
}

} // namespace
} // namespace serve
} // namespace djinn
