/**
 * @file
 * Deterministic sim-clock battery for the adaptive scheduler
 * (DESIGN.md §16): batch targets grow under rising load and shrink
 * under SLO burn-rate pressure, deficit-weighted fair sharing
 * converges to the configured weights with bounded deficits, and
 * the policy state renders as deterministic JSON. All time is an
 * explicit virtual clock — no sleeps, no wall-clock reads.
 */

#include "serve/scheduler.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "telemetry/metrics.hh"

namespace djinn {
namespace serve {
namespace {

/** Calibrate `model` to a 1 ms/query service time. */
void
calibrate(AdaptiveScheduler &sched, const std::string &model)
{
    sched.observeBatch(model, 4, 0.004);
}

/** Drive `ticks` one-second control intervals at a constant
 * arrival rate, starting at *now. */
void
driveLoad(AdaptiveScheduler &sched, const std::string &model,
          int64_t queriesPerSecond, int ticks, double *now)
{
    for (int i = 0; i < ticks; ++i) {
        sched.observeArrival(model, queriesPerSecond);
        *now += 1.0;
        sched.tick(*now);
    }
}

TEST(AdaptiveScheduler, UncalibratedModelRunsStaticPolicy)
{
    SchedulerOptions options;
    options.maxBatch = 16;
    AdaptiveScheduler sched(options);
    // No service-time calibration yet: the paper's static tuned
    // batch applies, for known and unknown models alike.
    sched.observeArrival("m", 100);
    sched.tick(1.0);
    EXPECT_EQ(sched.batchTarget("m"), 16);
    EXPECT_EQ(sched.batchTarget("never-seen"), 16);
}

TEST(AdaptiveScheduler, BatchGrowsUnderRisingLoad)
{
    // 1 ms/query service, 50 ms SLO, 0.8 headroom -> a 40 ms
    // budget over assembly ((b-1)/lambda) + service (b * 1 ms).
    SchedulerOptions options;
    options.maxBatch = 16;
    options.defaultSloSeconds = 0.050;
    AdaptiveScheduler sched(options);
    calibrate(sched, "m");
    double now = 0.0;

    // 100 qps: assembly dominates; b=4 fits (30+4 ms), b=5 misses.
    driveLoad(sched, "m", 100, 20, &now);
    EXPECT_EQ(sched.batchTarget("m"), 4);

    // 200 qps: b=7 fits (30+7 ms), b=8 misses (35+8 ms).
    driveLoad(sched, "m", 200, 20, &now);
    EXPECT_EQ(sched.batchTarget("m"), 7);

    // 1000 qps: assembly is cheap; the tuned ceiling binds.
    driveLoad(sched, "m", 1000, 20, &now);
    EXPECT_EQ(sched.batchTarget("m"), 16);
    EXPECT_NEAR(sched.arrivalRate("m"), 1000.0, 1.0);
}

TEST(AdaptiveScheduler, BatchShrinksOnBurnRateAndRecovers)
{
    SchedulerOptions options;
    options.maxBatch = 16;
    options.defaultSloSeconds = 0.050;
    AdaptiveScheduler sched(options);
    calibrate(sched, "m");
    double now = 0.0;
    driveLoad(sched, "m", 1000, 20, &now);
    ASSERT_EQ(sched.batchTarget("m"), 16);

    // Burning the error budget twice as fast as allowed tightens
    // the headroom to 0.4 (a 20 ms budget): b=10 fits (9+10 ms),
    // b=11 misses.
    sched.observeBurnRate("m", 2.0);
    driveLoad(sched, "m", 1000, 1, &now);
    EXPECT_EQ(sched.batchTarget("m"), 10);

    // Burn subsides: the target recovers to the ceiling.
    sched.observeBurnRate("m", 0.0);
    driveLoad(sched, "m", 1000, 1, &now);
    EXPECT_EQ(sched.batchTarget("m"), 16);
}

TEST(AdaptiveScheduler, OverloadFallsBackToThroughputMode)
{
    // Even a lone query cannot meet the SLO: shrinking batches
    // further only costs throughput, so the policy pins the tuned
    // maximum instead of death-spiraling to minBatch.
    SchedulerOptions options;
    options.maxBatch = 8;
    options.defaultSloSeconds = 0.050;
    AdaptiveScheduler sched(options);
    sched.observeBatch("m", 1, 0.100); // 100 ms/query >> SLO
    double now = 0.0;
    driveLoad(sched, "m", 100, 2, &now);
    EXPECT_EQ(sched.batchTarget("m"), 8);
}

TEST(AdaptiveScheduler, TwoTenantFairShareConvergesToWeights)
{
    // Tenant A (weight 2) and B (weight 1) both overloaded: each
    // control interval refills credit 2:1, each dispatch charges
    // its 5 ms batch cost, and dispatch is allowed only while the
    // tenant's deficit is non-negative.
    SchedulerOptions options;
    options.maxDeficitSeconds = 0.050;
    options.poolSeconds = 1.0;
    AdaptiveScheduler sched(options);
    sched.addTenant("a", 2.0);
    sched.addTenant("b", 1.0);
    sched.assignModel("ma", "a");
    sched.assignModel("mb", "b");

    const double batch_cost = 0.005;
    double now = 0.0;
    for (int i = 0; i < 1000; ++i) {
        sched.observeArrival("ma", 10);
        sched.observeArrival("mb", 10);
        sched.setBacklog("ma", 50);
        sched.setBacklog("mb", 50);
        now += 0.010;
        sched.tick(now);
        for (const char *model : {"ma", "mb"}) {
            while (sched.allowDispatch(model))
                sched.chargeDispatch(model, batch_cost);
        }
        // The deficit bound: never above the configured cap, and
        // never further negative than one batch overshoot.
        for (const char *tenant : {"a", "b"}) {
            EXPECT_LE(sched.tenantDeficit(tenant),
                      options.maxDeficitSeconds + 1e-12);
            EXPECT_GE(sched.tenantDeficit(tenant),
                      -batch_cost - 1e-12);
        }
    }

    auto tenants = sched.tenantStates();
    ASSERT_EQ(tenants.size(), 3u); // a, b, and the implicit default
    double charged_a = 0.0, charged_b = 0.0;
    for (const auto &t : tenants) {
        if (t.tenant == "a")
            charged_a = t.chargedSeconds;
        if (t.tenant == "b")
            charged_b = t.chargedSeconds;
    }
    ASSERT_GT(charged_b, 0.0);
    // 10 s of pool time split 2:1, each side off by at most one
    // batch overshoot: the realised ratio is 2 within ~1%.
    EXPECT_NEAR(charged_a / charged_b, 2.0, 0.02);
}

TEST(AdaptiveScheduler, IdleTenantForfeitsResidualCredit)
{
    SchedulerOptions options;
    options.maxDeficitSeconds = 0.050;
    AdaptiveScheduler sched(options);
    sched.addTenant("hot", 1.0);
    sched.addTenant("cold", 1.0);
    sched.assignModel("mh", "hot");
    sched.assignModel("mc", "cold");

    // Both active for a while: both bank credit.
    double now = 0.0;
    for (int i = 0; i < 5; ++i) {
        sched.observeArrival("mh", 10);
        sched.observeArrival("mc", 10);
        now += 0.010;
        sched.tick(now);
    }
    EXPECT_GT(sched.tenantDeficit("cold"), 0.0);

    // cold goes idle: its banked credit is forfeited (standard
    // DRR), so it cannot burst at hot's expense later.
    for (int i = 0; i < 3; ++i) {
        sched.observeArrival("mh", 10);
        now += 0.010;
        sched.tick(now);
    }
    EXPECT_DOUBLE_EQ(sched.tenantDeficit("cold"), 0.0);
}

TEST(AdaptiveScheduler, ExportsGaugesAndRendersJson)
{
    telemetry::MetricRegistry metrics;
    SchedulerOptions options;
    AdaptiveScheduler sched(options, &metrics);
    sched.addTenant("t", 3.0);
    sched.assignModel("m", "t");
    calibrate(sched, "m");
    double now = 0.0;
    driveLoad(sched, "m", 100, 3, &now);

    bool saw_target = false, saw_weight = false;
    for (const telemetry::MetricSample &s : metrics.snapshot()) {
        if (s.name == std::string("djinn_sched_batch_target") &&
            s.labels.count("model")) {
            saw_target = true;
            EXPECT_GT(s.value, 0.0);
        }
        if (s.name == std::string("djinn_sched_tenant_weight") &&
            s.labels.count("tenant") &&
            s.labels.at("tenant") == "t") {
            saw_weight = true;
            EXPECT_DOUBLE_EQ(s.value, 3.0);
        }
    }
    EXPECT_TRUE(saw_target);
    EXPECT_TRUE(saw_weight);

    std::string json = sched.renderJson();
    EXPECT_NE(json.find("\"model\": \"m\""), std::string::npos);
    EXPECT_NE(json.find("\"tenant\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"target\": "), std::string::npos);
    EXPECT_NE(json.find("\"deficit_ms\": "), std::string::npos);
    EXPECT_EQ(json, sched.renderJson()); // deterministic
}

} // namespace
} // namespace serve
} // namespace djinn
