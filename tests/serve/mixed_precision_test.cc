/**
 * @file
 * End-to-end mixed-precision serving (DESIGN.md §14): one batching
 * DjiNN server hosting two zoo models at different compute
 * precisions. Verifies the full plumbing — ServerConfig precision
 * declarations validate against the registry, Describe advertises
 * each model's precision, the djinn_model_precision gauge carries
 * per-model labels in the exposition, and the bytes a client gets
 * back match an offline forward of the same quantized network.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "nn/zoo.hh"
#include "telemetry/exposition.hh"

namespace djinn {
namespace core {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

class MixedPrecisionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // mnist lowered to int8, senna_pos to bf16 — two models,
        // two precisions, one server.
        ASSERT_TRUE(registry_
                        .addZooModel(nn::zoo::Model::Mnist, 42,
                                     nn::Precision::Int8)
                        .isOk());
        ASSERT_TRUE(registry_
                        .addZooModel(nn::zoo::Model::SennaPos, 42,
                                     nn::Precision::Bf16)
                        .isOk());
    }

    ServerConfig
    mixedConfig()
    {
        ServerConfig config;
        config.batching = true;
        config.batchOptions.maxQueries = 4;
        config.batchOptions.maxDelay = 0.0005;
        config.modelPrecisions["mnist"] = nn::Precision::Int8;
        config.modelPrecisions["senna_pos"] = nn::Precision::Bf16;
        return config;
    }

    void
    startServer(const ServerConfig &config)
    {
        server_ = std::make_unique<DjinnServer>(registry_, config);
        ASSERT_TRUE(server_->start().isOk());
    }

    Status
    connect(DjinnClient &client)
    {
        return client.connect("127.0.0.1", server_->port());
    }

    ModelRegistry registry_;
    std::unique_ptr<DjinnServer> server_;
};

TEST_F(MixedPrecisionTest, DescribeAdvertisesPerModelPrecision)
{
    startServer(mixedConfig());
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());

    auto mnist = client.describeModel("mnist");
    ASSERT_TRUE(mnist.isOk()) << mnist.status().toString();
    EXPECT_EQ(mnist.value().precision, "int8");
    EXPECT_EQ(mnist.value().inputElems(), 28 * 28);

    auto senna = client.describeModel("senna_pos");
    ASSERT_TRUE(senna.isOk());
    EXPECT_EQ(senna.value().precision, "bf16");
}

TEST_F(MixedPrecisionTest, MetricsCarryPerModelPrecisionLabels)
{
    startServer(mixedConfig());
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());

    auto exposition = client.metricsExposition();
    ASSERT_TRUE(exposition.isOk());
    auto samples = telemetry::parseExposition(exposition.value());
    ASSERT_TRUE(samples.isOk()) << samples.status().toString();

    auto mnist = telemetry::findSample(
        samples.value(), "djinn_model_precision",
        {{"model", "mnist"}, {"precision", "int8"}});
    ASSERT_TRUE(mnist.isOk())
        << "no djinn_model_precision{model=mnist,precision=int8}";
    EXPECT_EQ(mnist.value(), 1.0);

    auto senna = telemetry::findSample(
        samples.value(), "djinn_model_precision",
        {{"model", "senna_pos"}, {"precision", "bf16"}});
    ASSERT_TRUE(senna.isOk())
        << "no djinn_model_precision{model=senna_pos,precision=bf16}";
    EXPECT_EQ(senna.value(), 1.0);

    // Exactly one precision series per model: a model must never
    // report two precisions at once.
    int mnistSeries = 0;
    for (const auto &s : samples.value()) {
        if (s.name == "djinn_model_precision") {
            auto it = s.labels.find("model");
            if (it != s.labels.end() && it->second == "mnist")
                ++mnistSeries;
        }
    }
    EXPECT_EQ(mnistSeries, 1);
}

TEST_F(MixedPrecisionTest, ServedBytesMatchOfflineQuantizedForward)
{
    PoolSizeGuard guard;
    startServer(mixedConfig());
    DjinnClient client;
    ASSERT_TRUE(connect(client).isOk());

    struct ModelCase {
        nn::zoo::Model model;
        const char *name;
        nn::Precision precision;
    };
    const ModelCase cases[] = {
        {nn::zoo::Model::Mnist, "mnist", nn::Precision::Int8},
        {nn::zoo::Model::SennaPos, "senna_pos",
         nn::Precision::Bf16},
    };
    for (const ModelCase &mc : cases) {
        SCOPED_TRACE(mc.name);
        // Offline reference: an independently built quantized
        // network forwarded locally. Quantized kernels are
        // bit-deterministic, so served bytes must match exactly.
        auto offline = nn::zoo::build(mc.model, mc.precision, 42);
        nn::Tensor in = nn::zoo::calibrationBatch(*offline, 2);
        nn::Tensor want = offline->forward(in);

        std::vector<float> payload(
            in.data(), in.data() + in.shape().elems());
        auto got = client.infer(mc.name, in.shape().n(), payload);
        ASSERT_TRUE(got.isOk()) << got.status().toString();
        ASSERT_EQ(static_cast<int64_t>(got.value().size()),
                  want.elems());
        for (int64_t i = 0; i < want.elems(); ++i) {
            uint32_t wb, gb;
            std::memcpy(&wb, &want[i], sizeof(wb));
            std::memcpy(&gb, &got.value()[static_cast<size_t>(i)],
                        sizeof(gb));
            ASSERT_EQ(gb, wb) << "served bytes diverge at " << i;
        }
    }
}

TEST_F(MixedPrecisionTest, PrecisionMismatchFailsStartup)
{
    // The registry holds mnist at int8; declaring f32 must be
    // caught at start() rather than silently serving the wrong
    // numerics.
    ServerConfig config;
    config.modelPrecisions["mnist"] = nn::Precision::F32;
    DjinnServer server(registry_, config);
    Status s = server.start();
    ASSERT_FALSE(s.isOk());
    EXPECT_NE(s.message().find("mnist"), std::string::npos);
    EXPECT_NE(s.message().find("precision"), std::string::npos);
}

TEST_F(MixedPrecisionTest, UnknownModelInPrecisionMapFailsStartup)
{
    ServerConfig config;
    config.modelPrecisions["resnet"] = nn::Precision::Int8;
    DjinnServer server(registry_, config);
    Status s = server.start();
    ASSERT_FALSE(s.isOk());
    EXPECT_NE(s.message().find("resnet"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace djinn
