#include "serve/simulation.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace serve {
namespace {

SimConfig
fastConfig(App app)
{
    SimConfig config;
    config.app = app;
    config.warmupTime = 0.1;
    config.measureTime = 0.3;
    return config;
}

TEST(Simulation, ProducesThroughputAndLatency)
{
    SimConfig config = fastConfig(App::POS);
    config.batch = 8;
    SimResult result = runServingSim(config);
    EXPECT_GT(result.throughputQps, 0.0);
    EXPECT_GT(result.meanLatency, 0.0);
    EXPECT_GE(result.p99Latency, result.medianLatency);
    EXPECT_GT(result.completedQueries, 0u);
}

TEST(Simulation, Deterministic)
{
    SimConfig config = fastConfig(App::IMC);
    config.batch = 4;
    SimResult a = runServingSim(config);
    SimResult b = runServingSim(config);
    EXPECT_DOUBLE_EQ(a.throughputQps, b.throughputQps);
    EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
}

TEST(Simulation, LittlesLawHolds)
{
    // Closed loop with N clients: N = X * R (within discretization).
    SimConfig config = fastConfig(App::POS);
    config.batch = 16;
    config.clientBatches = 2;
    SimResult result = runServingSim(config);
    double population = 2.0 * 16.0;
    EXPECT_NEAR(result.throughputQps * result.meanLatency,
                population, population * 0.25);
}

TEST(Simulation, MoreGpusMoreThroughputForComputeHeavyApp)
{
    SimConfig config = fastConfig(App::IMC);
    config.batch = 16;
    config.instancesPerGpu = 4;
    config.gpuCount = 1;
    double one = runServingSim(config).throughputQps;
    config.gpuCount = 4;
    double four = runServingSim(config).throughputQps;
    EXPECT_GT(four, 3.0 * one);
}

TEST(Simulation, UnlimitedLinkNeverSlower)
{
    SimConfig limited = fastConfig(App::CHK);
    limited.batch = 64;
    limited.instancesPerGpu = 4;
    limited.gpuCount = 8;
    SimConfig unlimited = limited;
    unlimited.hostLink = gpu::unlimitedLink();
    EXPECT_GE(runServingSim(unlimited).throughputQps,
              0.95 * runServingSim(limited).throughputQps);
}

TEST(Simulation, GpuUtilizationBounded)
{
    SimConfig config = fastConfig(App::ASR);
    config.batch = 2;
    config.instancesPerGpu = 4;
    SimResult result = runServingSim(config);
    EXPECT_GT(result.gpuUtilization, 0.3);
    EXPECT_LE(result.gpuUtilization, 1.05);
}

TEST(Simulation, HostLinkUtilizationTracksTraffic)
{
    SimConfig config = fastConfig(App::POS);
    config.batch = 64;
    config.instancesPerGpu = 4;
    config.gpuCount = 8;
    SimResult result = runServingSim(config);
    // NLP at 8 GPUs saturates the host link (the Fig 11 plateau).
    EXPECT_GT(result.hostLinkUtilization, 0.8);
    double expected_bytes = result.throughputQps *
        (appSpec(App::POS).inputBytes +
         appSpec(App::POS).outputBytes);
    EXPECT_NEAR(result.hostLinkBytesPerSec, expected_bytes,
                expected_bytes * 0.1);
}

TEST(Simulation, LatencyGrowsWithBatchPastSaturation)
{
    SimConfig small = fastConfig(App::POS);
    small.batch = 8;
    SimConfig large = fastConfig(App::POS);
    large.batch = 256;
    EXPECT_GT(runServingSim(large).meanLatency,
              runServingSim(small).meanLatency);
}

TEST(Simulation, InvalidConfigFatal)
{
    SimConfig config = fastConfig(App::IMC);
    config.batch = 0;
    EXPECT_THROW(runServingSim(config), FatalError);
    config.batch = 1;
    config.gpuCount = 0;
    EXPECT_THROW(runServingSim(config), FatalError);
    config.gpuCount = 1;
    config.instancesPerGpu = -1;
    EXPECT_THROW(runServingSim(config), FatalError);
}

TEST(Simulation, SharedNetworkCachesInstance)
{
    const nn::Network &a = sharedNetwork(nn::zoo::Model::SennaPos);
    const nn::Network &b = sharedNetwork(nn::zoo::Model::SennaPos);
    EXPECT_EQ(&a, &b);
}

TEST(Simulation, CpuQueryTimeScalesWithWork)
{
    gpu::CpuSpec cpu;
    // ASR (548 x 30M-param rows) dwarfs POS (28 x 180K rows).
    EXPECT_GT(cpuQueryTime(App::ASR, cpu),
              100.0 * cpuQueryTime(App::POS, cpu));
}

TEST(Simulation, DefaultHostLinkIsDualPcie3)
{
    SimConfig config;
    EXPECT_NEAR(config.hostLink.peakBandwidth, 2 * 15.75e9, 1e6);
}

} // namespace
} // namespace serve
} // namespace djinn
