#include "cluster/policy.hh"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hh"

namespace djinn {
namespace cluster {
namespace {

constexpr double NoDeadline =
    std::numeric_limits<double>::infinity();

NodeView
view(int64_t queued, int64_t in_service, int64_t limit,
     double latency)
{
    NodeView v;
    v.queuedQueries = queued;
    v.inService = in_service;
    v.queueLimit = limit;
    v.estimatedLatency = latency;
    return v;
}

TEST(Policy, NamesRoundTrip)
{
    for (RoutePolicy policy : allRoutePolicies()) {
        EXPECT_EQ(routePolicyFromName(routePolicyName(policy)),
                  policy);
    }
    EXPECT_EQ(allRoutePolicies().size(), 5u);
}

TEST(Policy, RoundRobinCyclesBlindly)
{
    auto router = makeRouter(RoutePolicy::RoundRobin);
    Rng rng(1);
    // Unequal queues; round-robin ignores them.
    std::vector<NodeView> views = {view(9, 1, 10, 1.0),
                                   view(0, 0, 10, 0.1),
                                   view(5, 1, 10, 0.5)};
    EXPECT_EQ(router->route(views, NoDeadline, rng), 0);
    EXPECT_EQ(router->route(views, NoDeadline, rng), 1);
    EXPECT_EQ(router->route(views, NoDeadline, rng), 2);
    EXPECT_EQ(router->route(views, NoDeadline, rng), 0);
}

TEST(Policy, RoundRobinShedsOnFullPick)
{
    auto router = makeRouter(RoutePolicy::RoundRobin);
    Rng rng(1);
    std::vector<NodeView> views = {view(10, 0, 10, 1.0),
                                   view(0, 0, 10, 0.1)};
    // First pick lands on the full node and sheds instead of
    // falling through to the idle one.
    EXPECT_EQ(router->route(views, NoDeadline, rng),
              RouteShedOverload);
    EXPECT_EQ(router->route(views, NoDeadline, rng), 1);
}

TEST(Policy, JsqPicksLeastLoadedAdmittingNode)
{
    auto router = makeRouter(RoutePolicy::JoinShortestQueue);
    Rng rng(1);
    std::vector<NodeView> views = {view(3, 1, 10, 1.0),
                                   view(0, 0, 0, 0.0),
                                   view(1, 1, 10, 0.2)};
    // Node 1 is shortest but admits nothing (limit 0).
    EXPECT_EQ(router->route(views, NoDeadline, rng), 2);
}

TEST(Policy, JsqShedsWhenEveryNodeIsFull)
{
    auto router = makeRouter(RoutePolicy::JoinShortestQueue);
    Rng rng(1);
    std::vector<NodeView> views = {view(4, 0, 4, 1.0),
                                   view(2, 0, 2, 1.0)};
    EXPECT_EQ(router->route(views, NoDeadline, rng),
              RouteShedOverload);
}

TEST(Policy, PowerOfTwoPicksShorterOfItsSamples)
{
    auto router = makeRouter(RoutePolicy::PowerOfTwo);
    Rng rng(42);
    // One empty node among loaded ones: po2 must always return an
    // index no deeper than the deepest of any two distinct
    // samples, and with both samples distinct it can never pick
    // the deepest node when a shallower one is sampled.
    std::vector<NodeView> views = {view(8, 0, 10, 1.0),
                                   view(4, 0, 10, 0.5),
                                   view(0, 0, 10, 0.1)};
    for (int i = 0; i < 64; ++i) {
        int pick = router->route(views, NoDeadline, rng);
        ASSERT_GE(pick, 0);
        ASSERT_LT(pick, 3);
    }
    // Deterministic under a fixed seed.
    Rng a(7);
    Rng b(7);
    auto ra = makeRouter(RoutePolicy::PowerOfTwo);
    auto rb = makeRouter(RoutePolicy::PowerOfTwo);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ra->route(views, NoDeadline, a),
                  rb->route(views, NoDeadline, b));
}

TEST(Policy, DeadlineJsqPicksFastestFeasible)
{
    auto router = makeRouter(RoutePolicy::DeadlineJsq);
    Rng rng(1);
    std::vector<NodeView> views = {view(9, 1, 20, 0.9),
                                   view(2, 1, 20, 0.3),
                                   view(5, 1, 20, 0.6)};
    // All feasible at slack 1.0: fastest estimate wins.
    EXPECT_EQ(router->route(views, 1.0, rng), 1);
    // Slack 0.5 rules out nodes 0 and 2.
    EXPECT_EQ(router->route(views, 0.5, rng), 1);
}

TEST(Policy, DeadlineJsqShedsInfeasibleDeadline)
{
    auto router = makeRouter(RoutePolicy::DeadlineJsq);
    Rng rng(1);
    std::vector<NodeView> views = {view(9, 1, 20, 0.9),
                                   view(2, 1, 20, 0.3)};
    // Admitting nodes exist but none meets the slack: a deadline
    // shed, not an overload shed.
    EXPECT_EQ(router->route(views, 0.1, rng), RouteShedDeadline);

    // With every node full the verdict is overload again.
    std::vector<NodeView> full = {view(20, 1, 20, 0.9),
                                  view(20, 1, 20, 0.3)};
    EXPECT_EQ(router->route(full, 0.1, rng), RouteShedOverload);
}

TEST(Policy, DeadlinePo2ShedsOnlyWhenSamplesAreInfeasible)
{
    auto router = makeRouter(RoutePolicy::DeadlinePo2);
    Rng rng(3);
    std::vector<NodeView> views = {view(1, 1, 20, 0.2),
                                   view(1, 1, 20, 0.2),
                                   view(1, 1, 20, 0.2)};
    // Identical feasible views: any sample pair works.
    for (int i = 0; i < 16; ++i)
        EXPECT_GE(router->route(views, 1.0, rng), 0);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(router->route(views, 0.1, rng),
                  RouteShedDeadline);
}

TEST(Policy, AdmitsIsStrictLimit)
{
    EXPECT_TRUE(view(9, 0, 10, 0.0).admits());
    EXPECT_FALSE(view(10, 0, 10, 0.0).admits());
}

} // namespace
} // namespace cluster
} // namespace djinn
