#include "cluster/simulator.hh"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/workload.hh"

namespace djinn {
namespace cluster {
namespace {

/** A millisecond per query, whatever the app. */
ServiceModel
flatModel(double per_query_seconds = 1e-3)
{
    return [per_query_seconds](serve::App, int64_t queries) {
        return static_cast<double>(queries) * per_query_seconds;
    };
}

WorkloadSpec
mixSpec(double rate, double seconds, uint64_t seed)
{
    WorkloadSpec spec;
    spec.apps = {serve::App::IMC, serve::App::DIG,
                 serve::App::ASR};
    spec.process = ArrivalProcess::Poisson;
    spec.meanRate = rate;
    spec.durationSeconds = seconds;
    spec.seed = seed;
    return spec;
}

ClusterConfig
smallCluster(RoutePolicy policy)
{
    ClusterConfig config;
    config.nodeCount = 4;
    config.node.gpus = 1;
    config.node.maxBatch = 4;
    config.node.batchTimeout = 1e-3;
    config.policy = policy;
    config.sampleInterval = 0.1;
    config.serviceModel = flatModel();
    config.seed = 11;
    return config;
}

TEST(ClusterSim, SameSeedIsBitIdentical)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 5.0, 3));
    ClusterConfig config = smallCluster(RoutePolicy::PowerOfTwo);
    ClusterResult a = runClusterSim(config, trace);
    ClusterResult b = runClusterSim(config, trace);
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.duration, b.duration);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_EQ(a.series[i].queuedQueries,
                  b.series[i].queuedQueries);
        EXPECT_EQ(a.series[i].completed, b.series[i].completed);
    }
}

TEST(ClusterSim, AdaptiveFairShareSameSeedIsBitIdentical)
{
    // The adaptive + fair-share dispatch policies (DESIGN.md §16)
    // must preserve the simulator's bit-determinism guarantee: the
    // scheduler is clock-free and ticks on virtual event time
    // only.
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 5.0, 3));
    ClusterConfig config = smallCluster(RoutePolicy::PowerOfTwo);
    config.deadlineSeconds = 0.050;
    config.node.sloSeconds = 0.050;
    config.node.adaptiveBatch = true;
    config.node.fairShare = true;
    config.node.tenantWeights["IMC"] = 2.0;
    ClusterResult a = runClusterSim(config, trace);
    ClusterResult b = runClusterSim(config, trace);
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_GT(a.completed, 0u);

    // And the policy must actually engage: with adaptive batching
    // the event sequence differs from the static-batch baseline.
    ClusterConfig baseline = smallCluster(RoutePolicy::PowerOfTwo);
    baseline.deadlineSeconds = 0.050;
    ClusterResult c = runClusterSim(baseline, trace);
    EXPECT_NE(a.traceHash, c.traceHash);
}

TEST(ClusterSim, DifferentSeedChangesTheEventSequence)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 5.0, 3));
    ClusterConfig config = smallCluster(RoutePolicy::PowerOfTwo);
    ClusterResult a = runClusterSim(config, trace);
    config.seed = 12;
    ClusterResult b = runClusterSim(config, trace);
    EXPECT_NE(a.traceHash, b.traceHash);
}

TEST(ClusterSim, ConservationOfferedEqualsCompletedPlusLost)
{
    // Overload the cluster so sheds actually happen.
    ClusterTrace trace = generateTrace(mixSpec(8000.0, 4.0, 5));
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.node.queueLimit = 32;
    config.retryShedRequests = false;
    ClusterResult result = runClusterSim(config, trace);
    EXPECT_EQ(result.offered, trace.size());
    EXPECT_EQ(result.offered, result.completed + result.lost);
    EXPECT_GT(result.lost, 0u);
    EXPECT_GT(result.completed, 0u);
}

TEST(ClusterSim, EveryRequestCompletesBelowSaturation)
{
    // 4 nodes x 1 GPU x 1ms/query saturate at 4000 qps; offer
    // 2000.
    ClusterTrace trace = generateTrace(mixSpec(2000.0, 5.0, 9));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    ClusterResult result = runClusterSim(config, trace);
    EXPECT_EQ(result.completed, result.offered);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_GT(result.latency.p50, 0.0);
    EXPECT_GE(result.latency.p99, result.latency.p50);
    EXPECT_GE(result.duration, result.traceDuration);
}

TEST(ClusterSim, ShedRateIsMonotoneInOfferedLoad)
{
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.node.queueLimit = 16;
    config.retryShedRequests = false;
    double previous = 0.0;
    for (double rate : {2000.0, 6000.0, 12000.0}) {
        ClusterTrace trace = generateTrace(mixSpec(rate, 4.0, 7));
        ClusterResult result = runClusterSim(config, trace);
        EXPECT_GE(result.lostFraction(), previous);
        previous = result.lostFraction();
    }
    EXPECT_GT(previous, 0.1);
}

TEST(ClusterSim, JsqBeatsRoundRobinOnAsymmetricFleet)
{
    // Half-speed stragglers: queue-blind round-robin keeps
    // feeding them, so its tail is strictly worse.
    ClusterTrace trace = generateTrace(mixSpec(2500.0, 5.0, 13));
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.speedFactors = {1.0, 1.0, 0.25, 0.25};
    config.node.queueLimit = 64;
    config.retryShedRequests = false;
    ClusterResult rr = runClusterSim(config, trace);
    config.policy = RoutePolicy::JoinShortestQueue;
    ClusterResult jsq = runClusterSim(config, trace);
    EXPECT_LT(jsq.latency.p99, rr.latency.p99);
    EXPECT_GE(jsq.completed, rr.completed);
}

TEST(ClusterSim, TightDeadlineShedsAndNeverRetries)
{
    ClusterTrace trace = generateTrace(mixSpec(3500.0, 4.0, 17));
    ClusterConfig config = smallCluster(RoutePolicy::DeadlineJsq);
    config.deadlineSeconds = 2e-3;  // ~2 queries of slack
    ClusterResult result = runClusterSim(config, trace);
    EXPECT_GT(result.shedDeadline, 0u);
    // Deadline sheds are terminal (core::retryableFailure);
    // retries only ever follow overload sheds.
    EXPECT_LE(result.retries, result.shedOverload);
}

TEST(ClusterSim, RetriesRecoverOverloadSheds)
{
    ClusterTrace trace = generateTrace(mixSpec(5000.0, 4.0, 19));
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.node.queueLimit = 8;

    config.retryShedRequests = false;
    ClusterResult no_retry = runClusterSim(config, trace);

    config.retryShedRequests = true;
    ClusterResult with_retry = runClusterSim(config, trace);
    EXPECT_GT(with_retry.retries, 0u);
    EXPECT_GT(with_retry.completed, no_retry.completed);
}

TEST(ClusterSim, PerAppStatsSumToTotals)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 4.0, 23));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    ClusterResult result = runClusterSim(config, trace);
    ASSERT_EQ(result.apps.size(), 3u);
    uint64_t offered = 0;
    uint64_t completed = 0;
    for (const AppClusterStats &app : result.apps) {
        offered += app.offered;
        completed += app.completed;
        EXPECT_GT(app.latency.p50, 0.0);
    }
    EXPECT_EQ(offered, result.offered);
    EXPECT_EQ(completed, result.completed);
}

TEST(ClusterSim, SeriesSamplesCoverTheTrace)
{
    ClusterTrace trace = generateTrace(mixSpec(2000.0, 3.0, 29));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    config.sampleInterval = 0.25;
    ClusterResult result = runClusterSim(config, trace);
    ASSERT_GE(result.series.size(), 10u);
    for (size_t i = 1; i < result.series.size(); ++i) {
        EXPECT_GT(result.series[i].t, result.series[i - 1].t);
        EXPECT_GE(result.series[i].completed,
                  result.series[i - 1].completed);
    }
    EXPECT_LE(result.series.back().completed +
                  result.series.back().shed,
              result.offered);

    config.sampleInterval = 0.0;
    EXPECT_TRUE(runClusterSim(config, trace).series.empty());
}

TEST(ClusterSim, OccupancyStaysPhysical)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 4.0, 31));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    ClusterResult result = runClusterSim(config, trace);
    EXPECT_GT(result.occupancy, 0.0);
    EXPECT_LE(result.occupancy, 1.0 + 1e-9);
    EXPECT_GT(result.meanBatchQueries, 0.0);
    EXPECT_LE(result.meanBatchQueries, 4.0);
}

TEST(ClusterSim, CalibratedModelOrdersAppsByCost)
{
    ServiceModel model = calibratedServiceModel();
    double imc = model(serve::App::IMC, 1);
    double asr = model(serve::App::ASR, 1);
    double pos = model(serve::App::POS, 1);
    EXPECT_GT(imc, 0.0);
    // ASR (DNN over many frames) costs more than one image; POS
    // (tiny MLP) costs far less.
    EXPECT_GT(asr, imc);
    EXPECT_LT(pos, imc);
    // Batching amortizes: per-query cost falls with batch size.
    EXPECT_LT(model(serve::App::IMC, 8) / 8.0, imc);
}

} // namespace
} // namespace cluster
} // namespace djinn
