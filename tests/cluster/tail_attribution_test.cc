/**
 * @file
 * Flight-record plumbing through the cluster simulator: the sim
 * emits the same record schema as the live server, latency
 * exemplars resolve to records, attribution explains a policy's
 * p99 from virtual time, and all of it is bit-deterministic.
 */

#include "cluster/simulator.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/workload.hh"
#include "telemetry/attribution.hh"
#include "telemetry/flight_recorder.hh"

namespace djinn {
namespace cluster {
namespace {

ServiceModel
flatModel(double per_query_seconds = 1e-3)
{
    return [per_query_seconds](serve::App, int64_t queries) {
        return static_cast<double>(queries) * per_query_seconds;
    };
}

WorkloadSpec
mixSpec(double rate, double seconds, uint64_t seed)
{
    WorkloadSpec spec;
    spec.apps = {serve::App::IMC, serve::App::DIG,
                 serve::App::ASR};
    spec.process = ArrivalProcess::Poisson;
    spec.meanRate = rate;
    spec.durationSeconds = seconds;
    spec.seed = seed;
    return spec;
}

ClusterConfig
smallCluster(RoutePolicy policy)
{
    ClusterConfig config;
    config.nodeCount = 4;
    config.node.gpus = 1;
    config.node.maxBatch = 4;
    config.node.batchTimeout = 1e-3;
    config.policy = policy;
    config.sampleInterval = 0.1;
    config.serviceModel = flatModel();
    config.seed = 11;
    return config;
}

} // namespace

TEST(ClusterSimTail, FlightRecordsAreBitDeterministic)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 4.0, 3));
    ClusterConfig config = smallCluster(RoutePolicy::PowerOfTwo);
    ClusterResult a = runClusterSim(config, trace);
    ClusterResult b = runClusterSim(config, trace);

    ASSERT_FALSE(a.flightRecords.empty());
    ASSERT_EQ(a.flightRecords.size(), b.flightRecords.size());
    for (size_t i = 0; i < a.flightRecords.size(); ++i) {
        const telemetry::FlightRecord &x = a.flightRecords[i];
        const telemetry::FlightRecord &y = b.flightRecords[i];
        EXPECT_EQ(x.seq, y.seq);
        EXPECT_EQ(x.traceId, y.traceId);
        EXPECT_EQ(x.timestampUs, y.timestampUs);
        EXPECT_EQ(x.totalSeconds, y.totalSeconds);
        EXPECT_EQ(x.queueWaitSeconds, y.queueWaitSeconds);
        EXPECT_EQ(x.forwardSeconds, y.forwardSeconds);
        EXPECT_EQ(x.retryWaitSeconds, y.retryWaitSeconds);
        EXPECT_EQ(x.batchPosition, y.batchPosition);
        EXPECT_EQ(x.admitQueueDepth, y.admitQueueDepth);
    }
    // Attribution is pure over the records, so the whole report
    // (text and JSON) must also be byte-identical.
    telemetry::TailReport ra =
        telemetry::attributeTail(a.flightRecords, 99.0);
    telemetry::TailReport rb =
        telemetry::attributeTail(b.flightRecords, 99.0);
    EXPECT_EQ(telemetry::renderTailReportJson(ra),
              telemetry::renderTailReportJson(rb));
}

TEST(ClusterSimTail, RecordsCarryBatchAndQueueContext)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 4.0, 7));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    ClusterResult result = runClusterSim(config, trace);

    size_t ok_records = 0;
    bool saw_batched = false;
    for (const telemetry::FlightRecord &record :
         result.flightRecords) {
        if (record.outcome != telemetry::FlightOutcome::Ok)
            continue;
        ++ok_records;
        EXPECT_GT(record.traceId, 0u);
        EXPECT_GT(record.totalSeconds, 0.0);
        EXPECT_GT(record.forwardSeconds, 0.0);
        EXPECT_GE(record.queueWaitSeconds, 0.0);
        EXPECT_GE(record.batchQueries, 1);
        EXPECT_LT(record.batchPosition, record.batchQueries);
        EXPECT_GE(record.admitQueueDepth, 0);
        EXPECT_FALSE(std::string(record.modelName()).empty());
        if (record.batchQueries > 1)
            saw_batched = true;
        // Phases never exceed the recorded total.
        EXPECT_LE(record.queueWaitSeconds +
                      record.forwardSeconds,
                  record.totalSeconds + 1e-9);
    }
    EXPECT_GT(ok_records, 0u);
    EXPECT_TRUE(saw_batched);
}

TEST(ClusterSimTail, LatencyExemplarsResolveToFlightRecords)
{
    ClusterTrace trace = generateTrace(mixSpec(2500.0, 4.0, 9));
    ClusterConfig config =
        smallCluster(RoutePolicy::JoinShortestQueue);
    ClusterResult result = runClusterSim(config, trace);

    const telemetry::HistogramSnapshot &h = result.latencyHistogram;
    ASSERT_EQ(h.exemplars.size(), h.buckets.size());

    size_t resolved = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) {
            EXPECT_FALSE(h.exemplars[i].valid);
            continue;
        }
        // Every populated bucket carries an exemplar whose ref
        // indexes a retained flight record (ring + reservoir keep
        // every record in these short runs... but lapped slots are
        // legal, so resolve through the snapshot by seq).
        ASSERT_TRUE(h.exemplars[i].valid);
        for (const telemetry::FlightRecord &record :
             result.flightRecords) {
            if (record.seq != h.exemplars[i].ref)
                continue;
            ++resolved;
            EXPECT_EQ(record.traceId, h.exemplars[i].traceId);
            EXPECT_DOUBLE_EQ(record.totalSeconds,
                             h.exemplars[i].value);
            break;
        }
    }
    EXPECT_GT(resolved, 0u);
}

TEST(ClusterSimTail, QueueWaitExplainsRoundRobinStragglers)
{
    // Half-speed stragglers under queue-blind round-robin: the
    // tail is requests stuck behind slow nodes' queues, and the
    // attribution engine must say so.
    ClusterTrace trace = generateTrace(mixSpec(2500.0, 5.0, 13));
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.speedFactors = {1.0, 1.0, 0.25, 0.25};
    config.node.queueLimit = 64;
    config.retryShedRequests = false;
    ClusterResult result = runClusterSim(config, trace);

    telemetry::TailReport report =
        telemetry::attributeTail(result.flightRecords, 99.0);
    EXPECT_GT(report.records, 0u);
    EXPECT_EQ(report.dominant, "queue_wait");
    ASSERT_FALSE(report.contributors.empty());
    EXPECT_GT(report.contributors[0].share, 0.5);
    EXPECT_GT(report.tailMeanSeconds, report.baselineMeanSeconds);
}

TEST(ClusterSimTail, ShedRequestsAreRecordedWithOutcome)
{
    ClusterTrace trace = generateTrace(mixSpec(9000.0, 3.0, 17));
    ClusterConfig config = smallCluster(RoutePolicy::RoundRobin);
    config.node.queueLimit = 16;
    config.retryShedRequests = false;
    ClusterResult result = runClusterSim(config, trace);
    ASSERT_GT(result.lost, 0u);

    size_t shed_records = 0;
    for (const telemetry::FlightRecord &record :
         result.flightRecords)
        if (record.outcome ==
            telemetry::FlightOutcome::ShedQueueFull)
            ++shed_records;
    EXPECT_GT(shed_records, 0u);

    // Sheds never contaminate the completion cohorts.
    telemetry::TailReport report =
        telemetry::attributeTail(result.flightRecords, 99.0);
    EXPECT_EQ(report.records, result.flightRecords.size() -
                                  shed_records);
}

} // namespace cluster
} // namespace djinn
