/**
 * @file
 * Health rules over simulated history: feedTimeSeries replays a
 * deterministic cluster experiment's sampled series into a
 * TimeSeriesStore at virtual time, and a HealthMonitor evaluated at
 * the sample instants grades the scenario with the exact production
 * rules — bit-identically across runs (the determinism guard), and
 * with sensible verdicts (an overloaded cluster reads degraded or
 * worse; an idle one reads ok).
 */

#include "cluster/telemetry.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"

namespace djinn {
namespace cluster {
namespace {

ServiceModel
flatModel(double per_query_seconds = 1e-3)
{
    return [per_query_seconds](serve::App, int64_t queries) {
        return static_cast<double>(queries) * per_query_seconds;
    };
}

WorkloadSpec
mixSpec(double rate, double seconds, uint64_t seed)
{
    WorkloadSpec spec;
    spec.apps = {serve::App::IMC, serve::App::DIG,
                 serve::App::ASR};
    spec.process = ArrivalProcess::Poisson;
    spec.meanRate = rate;
    spec.durationSeconds = seconds;
    spec.seed = seed;
    return spec;
}

ClusterConfig
smallCluster(double sampleInterval = 0.25)
{
    ClusterConfig config;
    config.nodeCount = 4;
    config.node.gpus = 1;
    config.node.maxBatch = 4;
    config.node.batchTimeout = 1e-3;
    config.node.queueLimit = 64;
    config.policy = RoutePolicy::RoundRobin;
    config.sampleInterval = sampleInterval;
    config.serviceModel = flatModel();
    config.seed = 11;
    return config;
}

/** Replay @p result into fresh store+monitor and evaluate at every
 * sample instant; returns the concatenated verdict renderings. */
std::string
verdictTranscript(const ClusterResult &result,
                  const std::string &scenario)
{
    telemetry::MetricRegistry registry;
    telemetry::TimeSeriesStore store(registry);
    // The monitor's clock is irrelevant here: evaluate(t) is used
    // directly at virtual-time instants.
    telemetry::HealthMonitor monitor(store, registry);
    feedTimeSeries(registry, store, scenario, result);

    std::string out;
    for (const TimeSample &sample : result.series) {
        out += monitor.evaluate(sample.t).toString();
        out += "\n";
    }
    return out;
}

TEST(HealthSim, VerdictsBitIdenticalAcrossRuns)
{
    // Same config + trace, two full sim runs, two replays: the
    // transcripts must match byte for byte.
    ClusterTrace trace = generateTrace(mixSpec(6000.0, 4.0, 21));
    ClusterConfig config = smallCluster();

    ClusterResult first = runClusterSim(config, trace);
    ClusterResult second = runClusterSim(config, trace);
    ASSERT_EQ(first.traceHash, second.traceHash);
    ASSERT_FALSE(first.series.empty());

    std::string a = verdictTranscript(first, "overload");
    std::string b = verdictTranscript(second, "overload");
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(HealthSim, OverloadedClusterGradesDegraded)
{
    // 4 nodes x 1 GPU x 1 ms/query saturate at ~4000 qps; offer
    // 12000 so queues grow and sheds mount. By the end of the run
    // the health rules must have left ok.
    ClusterTrace trace = generateTrace(mixSpec(12000.0, 4.0, 23));
    ClusterConfig config = smallCluster();
    ClusterResult result = runClusterSim(config, trace);
    ASSERT_GT(result.shedOverload + result.shedDeadline, 0u);
    ASSERT_FALSE(result.series.empty());

    telemetry::MetricRegistry registry;
    telemetry::TimeSeriesStore store(registry);
    telemetry::HealthMonitor monitor(store, registry);
    feedTimeSeries(registry, store, "overload", result);

    bool left_ok = false;
    for (const TimeSample &sample : result.series) {
        auto verdict = monitor.evaluate(sample.t);
        if (verdict.level != telemetry::HealthLevel::Ok) {
            left_ok = true;
            break;
        }
    }
    EXPECT_TRUE(left_ok)
        << "overloaded scenario never flagged; last sample t="
        << result.series.back().t;
}

TEST(HealthSim, LightLoadStaysOk)
{
    // Well under capacity: no rule should fire at any instant.
    ClusterTrace trace = generateTrace(mixSpec(500.0, 4.0, 27));
    ClusterConfig config = smallCluster();
    ClusterResult result = runClusterSim(config, trace);
    ASSERT_FALSE(result.series.empty());

    telemetry::MetricRegistry registry;
    telemetry::TimeSeriesStore store(registry);
    telemetry::HealthMonitor monitor(store, registry);
    feedTimeSeries(registry, store, "light", result);

    for (const TimeSample &sample : result.series) {
        auto verdict = monitor.evaluate(sample.t);
        EXPECT_EQ(verdict.level, telemetry::HealthLevel::Ok)
            << verdict.toString();
    }
}

TEST(HealthSim, FeedPopulatesLiveMetricFamilies)
{
    ClusterTrace trace = generateTrace(mixSpec(3000.0, 2.0, 29));
    ClusterResult result =
        runClusterSim(smallCluster(), trace);

    telemetry::MetricRegistry registry;
    telemetry::TimeSeriesStore store(registry);
    feedTimeSeries(registry, store, "scenario-x", result);

    // The same families the live sampler records, labeled with the
    // scenario as the model.
    EXPECT_EQ(store
                  .trackIds("djinn_requests_total",
                            {{"model", "scenario-x"}})
                  .size(),
              1u);
    EXPECT_FALSE(
        store.trackIds("djinn_batch_queue_depth_total").empty());
    EXPECT_FALSE(
        store.trackIds("djinn_compute_pool_busy").empty());
    EXPECT_EQ(store.sampleCount(), result.series.size());

    // The replayed request rate over the full run roughly matches
    // the sim's own throughput accounting.
    telemetry::TimeSeriesStore::Window window;
    window.name = "djinn_requests_total";
    window.seconds = result.series.back().t + 1.0;
    auto rate = store.windowStat(
        window, telemetry::TimeSeriesStore::Op::Rate);
    ASSERT_TRUE(rate.valid);
    EXPECT_GT(rate.value, 0.0);
}

} // namespace
} // namespace cluster
} // namespace djinn
