#include "cluster/workload.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace djinn {
namespace cluster {
namespace {

WorkloadSpec
baseSpec(ArrivalProcess process)
{
    WorkloadSpec spec;
    spec.apps = {serve::App::IMC, serve::App::ASR};
    spec.process = process;
    spec.meanRate = 2000.0;
    spec.durationSeconds = 20.0;
    spec.seed = 7;
    return spec;
}

TEST(Workload, NamesRoundTrip)
{
    for (ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Diurnal,
          ArrivalProcess::Mmpp}) {
        EXPECT_EQ(arrivalProcessFromName(
                      arrivalProcessName(process)),
                  process);
    }
}

TEST(Workload, TracesAreSortedAndInWindow)
{
    for (ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Diurnal,
          ArrivalProcess::Mmpp}) {
        WorkloadSpec spec = baseSpec(process);
        ClusterTrace trace = generateTrace(spec);
        ASSERT_FALSE(trace.empty());
        EXPECT_TRUE(std::is_sorted(
            trace.begin(), trace.end(),
            [](const TraceRequest &a, const TraceRequest &b) {
                return a.arrival < b.arrival;
            }));
        EXPECT_GE(trace.front().arrival, 0.0);
        EXPECT_LE(trace.back().arrival, spec.durationSeconds);
    }
}

TEST(Workload, MeanRateIsRespected)
{
    for (ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Diurnal,
          ArrivalProcess::Mmpp}) {
        WorkloadSpec spec = baseSpec(process);
        ClusterTrace trace = generateTrace(spec);
        double rate = static_cast<double>(trace.size()) /
                      spec.durationSeconds;
        // MMPP dwell draws make the realized rate noisier than
        // Poisson's ~1/sqrt(40000); 15% covers all three.
        EXPECT_NEAR(rate, spec.meanRate, 0.15 * spec.meanRate)
            << arrivalProcessName(process);
    }
}

TEST(Workload, AppsComeFromTheSpec)
{
    WorkloadSpec spec = baseSpec(ArrivalProcess::Poisson);
    ClusterTrace trace = generateTrace(spec);
    uint64_t imc = 0;
    for (const TraceRequest &request : trace) {
        ASSERT_TRUE(request.app == serve::App::IMC ||
                    request.app == serve::App::ASR);
        imc += request.app == serve::App::IMC;
    }
    // Even split within a loose binomial band.
    double fraction =
        static_cast<double>(imc) / static_cast<double>(trace.size());
    EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(Workload, SameSeedSameTraceDifferentSeedDiffers)
{
    WorkloadSpec spec = baseSpec(ArrivalProcess::Mmpp);
    ClusterTrace a = generateTrace(spec);
    ClusterTrace b = generateTrace(spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].app, b[i].app);
    }

    spec.seed = 8;
    ClusterTrace c = generateTrace(spec);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrival != c[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(Workload, MaxRequestsCapsTheTrace)
{
    WorkloadSpec spec = baseSpec(ArrivalProcess::Poisson);
    spec.maxRequests = 100;
    EXPECT_EQ(generateTrace(spec).size(), 100u);
}

TEST(Workload, DiurnalRateSweepsAroundTheMean)
{
    WorkloadSpec spec = baseSpec(ArrivalProcess::Diurnal);
    spec.diurnalPeriodSeconds = 20.0;
    spec.diurnalAmplitude = 0.8;
    // Trough at t = 0, peak half a period later.
    EXPECT_NEAR(offeredRateAt(spec, 0.0),
                spec.meanRate * (1.0 - spec.diurnalAmplitude),
                1e-6 * spec.meanRate);
    EXPECT_NEAR(offeredRateAt(spec, 10.0),
                spec.meanRate * (1.0 + spec.diurnalAmplitude),
                1e-6 * spec.meanRate);

    // The generated trace is denser around the peak than the
    // trough.
    ClusterTrace trace = generateTrace(spec);
    uint64_t peak = 0;
    uint64_t trough = 0;
    for (const TraceRequest &request : trace) {
        double phase =
            std::fmod(request.arrival, spec.diurnalPeriodSeconds);
        trough += phase < 5.0 || phase >= 15.0;
        peak += phase >= 5.0 && phase < 15.0;
    }
    EXPECT_GT(peak, 2 * trough);
}

TEST(Workload, PoissonOfferedRateIsFlat)
{
    WorkloadSpec spec = baseSpec(ArrivalProcess::Poisson);
    EXPECT_DOUBLE_EQ(offeredRateAt(spec, 0.0), spec.meanRate);
    EXPECT_DOUBLE_EQ(offeredRateAt(spec, 11.5), spec.meanRate);
}

} // namespace
} // namespace cluster
} // namespace djinn
