/**
 * @file
 * Analytic cross-checks: with one node, one executor, unit
 * batches, and no batching delay, the cluster simulator is exactly
 * an M/M/1 or M/D/1 queue, whose sojourn-time laws are closed
 * form. Agreement here validates the whole event plumbing — trace
 * generation, dispatch, service completion, and the log-bucketed
 * latency histogram — against queueing theory, not against the
 * simulator itself.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "common/rng.hh"

namespace djinn {
namespace cluster {
namespace {

/** One node, one executor, batch size 1, nothing shed. */
ClusterConfig
singleServer(ServiceModel model)
{
    ClusterConfig config;
    config.nodeCount = 1;
    config.node.gpus = 1;
    config.node.maxBatch = 1;
    config.node.batchTimeout = 0.0;
    config.node.queueLimit =
        std::numeric_limits<int64_t>::max() / 2;
    config.policy = RoutePolicy::RoundRobin;
    config.retryShedRequests = false;
    config.sampleInterval = 0.0;
    config.serviceModel = std::move(model);
    config.seed = 5;
    return config;
}

ClusterTrace
poissonTrace(double lambda, double seconds, uint64_t seed)
{
    WorkloadSpec spec;
    spec.apps = {serve::App::IMC};
    spec.process = ArrivalProcess::Poisson;
    spec.meanRate = lambda;
    spec.durationSeconds = seconds;
    spec.seed = seed;
    return generateTrace(spec);
}

TEST(QueueingTheory, MM1SojournMatchesClosedForm)
{
    const double lambda = 700.0;
    const double mu = 1000.0;

    // Exponential service through the simulator's deterministic
    // single-threaded call order keeps the run reproducible.
    auto service_rng = std::make_shared<Rng>(99);
    ClusterConfig config = singleServer(
        [service_rng, mu](serve::App, int64_t queries) {
            EXPECT_EQ(queries, 1);
            return service_rng->exponential(mu);
        });
    ClusterTrace trace = poissonTrace(lambda, 60.0, 41);
    ClusterResult result = runClusterSim(config, trace);

    ASSERT_EQ(result.completed, result.offered);
    // M/M/1: sojourn time is exponential with rate mu - lambda.
    double w = 1.0 / (mu - lambda);
    EXPECT_NEAR(result.latency.mean, w, 0.08 * w);
    double p99 = std::log(100.0) / (mu - lambda);
    EXPECT_NEAR(result.latency.p99, p99, 0.10 * p99);
    // Throughput equals the arrival rate below saturation.
    EXPECT_NEAR(result.throughputQps, lambda, 0.05 * lambda);
}

TEST(QueueingTheory, MD1SojournMatchesPollaczekKhinchine)
{
    const double lambda = 700.0;
    const double mu = 1000.0;
    const double rho = lambda / mu;

    ClusterConfig config = singleServer(
        [mu](serve::App, int64_t) { return 1.0 / mu; });
    ClusterTrace trace = poissonTrace(lambda, 60.0, 43);
    ClusterResult result = runClusterSim(config, trace);

    ASSERT_EQ(result.completed, result.offered);
    // Pollaczek-Khinchine with zero service variance:
    // W = 1/mu + rho / (2 mu (1 - rho)).
    double w = 1.0 / mu + rho / (2.0 * mu * (1.0 - rho));
    EXPECT_NEAR(result.latency.mean, w, 0.08 * w);
    // Deterministic service truncates the tail well below the
    // M/M/1 tail at the same utilization.
    EXPECT_LT(result.latency.p99,
              std::log(100.0) / (mu - lambda));
    EXPECT_GT(result.latency.p99, w);
}

TEST(QueueingTheory, MM1QueueGrowsWithUtilization)
{
    const double mu = 1000.0;
    double previous = 0.0;
    for (double lambda : {300.0, 600.0, 850.0}) {
        auto service_rng = std::make_shared<Rng>(7);
        ClusterConfig config = singleServer(
            [service_rng, mu](serve::App, int64_t) {
                return service_rng->exponential(mu);
            });
        ClusterResult result = runClusterSim(
            config, poissonTrace(lambda, 40.0, 47));
        double w = 1.0 / (mu - lambda);
        EXPECT_NEAR(result.latency.mean, w, 0.15 * w)
            << "lambda " << lambda;
        EXPECT_GT(result.latency.mean, previous);
        previous = result.latency.mean;
    }
}

} // namespace
} // namespace cluster
} // namespace djinn
