/**
 * @file
 * Regenerates paper Figure 11: throughput as the number of GPUs in
 * the server grows 1..8, with tuned batch sizes and 4 MPS
 * instances per GPU, under the real host interconnect.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 11", "Throughput vs number of GPUs "
                        "(PCIe-limited host)");
    std::vector<std::string> head{"App"};
    for (int g = 1; g <= 8; ++g)
        head.push_back("g" + std::to_string(g));
    head.push_back("8v1");
    row(head, 9);

    for (serve::App app : serve::allApps()) {
        std::vector<std::string> cells{serve::appName(app)};
        double first = 0.0, last = 0.0;
        for (int gpus = 1; gpus <= 8; ++gpus) {
            serve::SimConfig config;
            config.app = app;
            config.batch = serve::appSpec(app).tunedBatch;
            config.instancesPerGpu = 4;
            config.gpuCount = gpus;
            double qps = serve::runServingSim(config).throughputQps;
            if (gpus == 1)
                first = qps;
            last = qps;
            cells.push_back(eng(qps));
        }
        cells.push_back(num(last / first, 1) + "x");
        row(cells, 9);
    }
    std::printf("\nPaper shape: near-linear scaling for the image "
                "and speech services;\nNLP plateaus around 4 GPUs "
                "(PCIe bandwidth limit).\n\n");
    return 0;
}
