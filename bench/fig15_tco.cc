/**
 * @file
 * Regenerates paper Figure 15: the TCO of the three WSC designs
 * across DNN/non-DNN workload compositions, for the MIXED, IMAGE,
 * and NLP service mixes, normalized to the CPU-only design.
 */

#include "bench_util.hh"
#include "wsc/designs.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    wsc::DesignConfig config;
    for (wsc::Mix mix : wsc::allMixes()) {
        banner("Figure 15",
               (std::string("TCO vs DNN fraction, ") +
                wsc::mixName(mix) +
                " workload (normalized to CPU Only)").c_str());
        row({"DNN%", "CPU-only", "Integrated", "Disagg",
             "IntGain", "DisGain"});
        for (int pct = 0; pct <= 100; pct += 10) {
            double f = pct / 100.0;
            double cpu = wsc::provision(wsc::Design::CpuOnly, mix,
                                        f, config).tco.total();
            double integ = wsc::provision(
                wsc::Design::IntegratedGpu, mix, f,
                config).tco.total();
            double disagg = wsc::provision(
                wsc::Design::DisaggregatedGpu, mix, f,
                config).tco.total();
            row({std::to_string(pct), "1.00",
                 num(integ / cpu, 3), num(disagg / cpu, 3),
                 num(cpu / integ, 1) + "x",
                 num(cpu / disagg, 1) + "x"});
        }
        std::printf("\n");
    }
    std::printf("Paper shape: GPU designs win more as the DNN "
                "share grows (4-20x range\nacross mixes); "
                "Disaggregated leads on MIXED/NLP; IMAGE crosses "
                "over to\nIntegrated at high DNN fractions.\n\n");
    return 0;
}
