/**
 * @file
 * Regenerates the paper's parameter tables: Table 2 (the modeled
 * platform), Table 4 (TCO cost factors), Table 5 (workload mixes),
 * and Table 6 (interconnect/network design points). These are model
 * inputs; printing them documents exactly what every experiment
 * ran with.
 */

#include "bench_util.hh"
#include "gpu/gpu_spec.hh"
#include "wsc/network_config.hh"
#include "wsc/tco_params.hh"
#include "wsc/workload_mix.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Table 2", "Platform specification (modeled)");
    gpu::GpuSpec gpu_spec;
    gpu::CpuSpec cpu_spec;
    std::printf("GPU          %s: %lld SMX, %.2f TFLOP/s, "
                "%.0f GB/s, %.0f GB, %.0f W (x8 in the server)\n",
                gpu_spec.name.c_str(),
                static_cast<long long>(gpu_spec.smCount),
                gpu_spec.peakFlops / 1e12,
                gpu_spec.memBandwidth / 1e9,
                gpu_spec.memoryBytes / 1e9, gpu_spec.powerWatts);
    std::printf("CPU          %s: %.1f GHz, %.0f SP FLOPs/cycle, "
                "%.1f GB/s/core (x2 sockets, 12 cores)\n",
                cpu_spec.name.c_str(), cpu_spec.frequency / 1e9,
                cpu_spec.flopsPerCycle,
                cpu_spec.memBandwidth / 1e9);
    std::printf("Host links   2x PCIe v3 x16 root complex "
                "(%.2f GB/s raw each)\n\n",
                gpu::pcieV3().peakBandwidth / 1e9);

    banner("Table 4", "TCO parameters");
    wsc::TcoParams tco;
    row({"GPU-capable server", "$" + num(tco.gpuServerCost, 0)},
        24);
    row({"High-end GPU", "$" + num(tco.gpuCost, 0)}, 24);
    row({"Wimpy server", "$" + num(tco.wimpyServerCost, 0)}, 24);
    row({"10GbE NIC", "$" + num(tco.nicCost, 0)}, 24);
    row({"WSC capex", "$" + num(tco.wscCapexPerWatt, 0) + "/W"},
        24);
    row({"Opex", "$" + num(tco.opexPerWattMonth, 2) + "/W/mo"},
        24);
    row({"PUE", num(tco.pue, 1)}, 24);
    row({"Electricity", "$" + num(tco.electricityPerKwh, 3) +
         "/kWh"}, 24);
    row({"Interest rate", num(tco.interestRate * 100, 0) + "%"},
        24);
    row({"Server lifetime", num(tco.lifetimeMonths / 12, 0) +
         " years"}, 24);
    row({"Maintenance", num(tco.maintenanceRate * 100, 0) +
         "%/month"}, 24);
    std::printf("\n");

    banner("Table 5", "DNN service workloads");
    for (wsc::Mix mix : wsc::allMixes()) {
        std::string apps;
        for (serve::App app : wsc::mixApps(mix)) {
            if (!apps.empty())
                apps += ", ";
            apps += serve::appName(app);
        }
        std::printf("%-6s %s\n", wsc::mixName(mix), apps.c_str());
    }
    std::printf("\n");

    banner("Table 6", "Interconnect and network configurations");
    row({"Design", "Host GB/s", "NICs", "Ingest GB/s", "NIC $",
         "Premium $"}, 14);
    for (const auto &config : wsc::allNetworkConfigs()) {
        row({config.name,
             num(config.hostLink.peakBandwidth / 1e9, 1),
             std::to_string(config.nicCount),
             num(config.disaggIngest.effectiveBandwidth() / 1e9, 1),
             num(config.nicUnitCost, 0),
             num(config.serverPremium, 0)}, 14);
    }
    std::printf("\n");
    return 0;
}
