/**
 * @file
 * Ablation (extension beyond the paper): energy per query. The
 * paper's TCO model already prices power; this bench reports the
 * per-query energy the serving model implies for the GPU server at
 * the tuned operating point versus a single Xeon core, the
 * efficiency argument underneath Figure 15.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Ablation", "Energy per query: GPU server vs one Xeon "
                       "core");
    row({"App", "GPU J/q", "CPU J/q", "ratio"});
    gpu::CpuSpec cpu;
    for (serve::App app : serve::allApps()) {
        serve::SimConfig config;
        config.app = app;
        config.batch = serve::appSpec(app).tunedBatch;
        config.instancesPerGpu = 4;
        auto result = serve::runServingSim(config);

        // CPU: a fully busy core at its share of socket power.
        double cpu_energy =
            serve::cpuQueryTime(app, cpu) * cpu.powerWatts / 6.0;
        row({serve::appName(app), num(result.energyPerQuery, 4),
             num(cpu_energy, 4),
             num(cpu_energy /
                 std::max(result.energyPerQuery, 1e-12), 0) + "x"});
    }
    std::printf("\nTakeaway: at the tuned operating point the GPU "
                "server is 2-9x more\nenergy-efficient per query "
                "than a Xeon core even while paying for the\nwhole "
                "board's power - but only when kept busy (see the "
                "idle-floor test\nin mixed_sim_test.cc).\n\n");
    return 0;
}
