/**
 * @file
 * Regenerates paper Figure 10: final single-GPU throughput
 * improvement over a single-thread CPU after applying input
 * batching (Table 3 batch sizes) and 4 MPS service instances.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 10",
           "Optimized single-GPU improvement over CPU "
           "(batching + MPS)");
    row({"App", "Batch", "CPU QPS", "GPU QPS", "Speedup"});
    for (serve::App app : serve::allApps()) {
        const auto &spec = serve::appSpec(app);
        double cpu_qps =
            1.0 / serve::cpuQueryTime(app, gpu::CpuSpec());
        serve::SimConfig config;
        config.app = app;
        config.batch = spec.tunedBatch;
        config.instancesPerGpu = 4;
        double gpu_qps =
            serve::runServingSim(config).throughputQps;
        row({spec.name, std::to_string(spec.tunedBatch),
             num(cpu_qps, 2), eng(gpu_qps),
             num(gpu_qps / cpu_qps, 0) + "x"});
    }
    std::printf("\nPaper shape: over 100x for all applications but "
                "FACE (~40x); NLP lifted\nfrom ~7x to >120x by "
                "batching + MPS.\n\n");
    return 0;
}
