/**
 * @file
 * Google-benchmark microbenchmarks for the inference substrate:
 * SGEMM at DNN-relevant shapes, im2col convolution, and whole
 * forward passes of the small zoo networks on the CPU path.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hh"
#include "nn/gemm.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/zoo.hh"

using namespace djinn;

namespace {

std::vector<float>
randomVec(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(static_cast<size_t>(n));
    for (auto &v : out)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return out;
}

void
BM_Sgemm(benchmark::State &state)
{
    int64_t m = state.range(0);
    int64_t n = state.range(1);
    int64_t k = state.range(2);
    auto a = randomVec(m * k, 1);
    auto b = randomVec(k * n, 2);
    std::vector<float> c(static_cast<size_t>(m * n));
    for (auto _ : state) {
        nn::sgemm(m, n, k, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}

// SENNA fc1 (28-word sentence), Kaldi hidden layer slice, AlexNet
// fc6 tile.
BENCHMARK(BM_Sgemm)
    ->Args({28, 600, 250})
    ->Args({64, 2048, 2048})
    ->Args({16, 4096, 9216})
    ->Unit(benchmark::kMicrosecond);

void
BM_SennaForward(benchmark::State &state)
{
    auto net = nn::zoo::build(nn::zoo::Model::SennaPos, 42);
    int64_t rows = state.range(0);
    nn::Tensor in(nn::Shape(rows, 250), 0.1f);
    for (auto _ : state) {
        nn::Tensor out = net->forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}

BENCHMARK(BM_SennaForward)
    ->Arg(28)
    ->Arg(28 * 16)
    ->Unit(benchmark::kMicrosecond);

void
BM_MnistForward(benchmark::State &state)
{
    auto net = nn::zoo::build(nn::zoo::Model::Mnist, 42);
    int64_t rows = state.range(0);
    nn::Tensor in(nn::Shape(rows, 1, 28, 28), 0.5f);
    for (auto _ : state) {
        nn::Tensor out = net->forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}

BENCHMARK(BM_MnistForward)
    ->Arg(1)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void
BM_NetDefParse(benchmark::State &state)
{
    std::string def = nn::zoo::netDef(nn::zoo::Model::AlexNet);
    for (auto _ : state) {
        auto net = nn::parseNetDefOrDie(def);
        benchmark::DoNotOptimize(net.get());
    }
}

BENCHMARK(BM_NetDefParse)->Unit(benchmark::kMillisecond);

void
BM_WeightInit(benchmark::State &state)
{
    auto net = nn::parseNetDefOrDie(
        nn::zoo::netDef(nn::zoo::Model::SennaPos));
    for (auto _ : state)
        nn::initializeWeights(*net, 42);
}

BENCHMARK(BM_WeightInit)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
