/**
 * @file
 * Google-benchmark microbenchmarks for the inference substrate:
 * SGEMM at DNN-relevant shapes (with a compute-pool thread sweep),
 * im2col convolution, and whole forward passes of the small zoo
 * networks on the CPU path.
 *
 * After the benchmarks run, the Table-1 GEMM shapes are re-timed
 * directly (best-of-N wall time) at 1, 2, 4, and 8 compute threads
 * for each compute precision (f32, bf16, int8; DESIGN.md §14), the
 * reference scalar kernel (sgemm_naive) is timed at the square 512
 * shape as the speedup baseline, and the whole set is printed as a
 * telemetry-registry JSON snapshot on stdout — the format
 * BENCH_*.json trajectories capture:
 *
 *   djinn_gemm_gflops{shape,m,n,k,threads,precision}  kernel rate
 *   djinn_gemm_naive_gflops{shape,...}       reference kernel rate
 *   djinn_gemm_speedup_1t{shape="square512"} blocked / naive, 1 thread
 *
 * int8 timings count the activation-side quantize+pack (weights are
 * pre-quantized once, as a server would hold them).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "nn/gemm.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/zoo.hh"
#include "telemetry/exposition.hh"
#include "telemetry/metrics.hh"

using namespace djinn;

namespace {

std::vector<float>
randomVec(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(static_cast<size_t>(n));
    for (auto &v : out)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return out;
}

void
BM_Sgemm(benchmark::State &state)
{
    int64_t m = state.range(0);
    int64_t n = state.range(1);
    int64_t k = state.range(2);
    common::setComputeThreads(static_cast<int>(state.range(3)));
    auto a = randomVec(m * k, 1);
    auto b = randomVec(k * n, 2);
    std::vector<float> c(static_cast<size_t>(m * n));
    for (auto _ : state) {
        nn::sgemm(m, n, k, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
    common::setComputeThreads(0);
}

// SENNA fc1 (28-word sentence), Kaldi hidden layer slice, AlexNet
// fc6 tile; each at 1 and 4 compute threads.
BENCHMARK(BM_Sgemm)
    ->Args({28, 600, 250, 1})
    ->Args({28, 600, 250, 4})
    ->Args({64, 2048, 2048, 1})
    ->Args({64, 2048, 2048, 4})
    ->Args({16, 4096, 9216, 1})
    ->Args({16, 4096, 9216, 4})
    ->Unit(benchmark::kMicrosecond);

void
BM_SgemmNaive(benchmark::State &state)
{
    int64_t m = state.range(0);
    int64_t n = state.range(1);
    int64_t k = state.range(2);
    auto a = randomVec(m * k, 1);
    auto b = randomVec(k * n, 2);
    std::vector<float> c(static_cast<size_t>(m * n));
    for (auto _ : state) {
        nn::sgemm_naive(nn::Trans::No, nn::Trans::No, m, n, k, 1.0f,
                        a.data(), k, b.data(), n, 0.0f, c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}

BENCHMARK(BM_SgemmNaive)
    ->Args({28, 600, 250})
    ->Args({64, 2048, 2048})
    ->Unit(benchmark::kMicrosecond);

void
BM_SennaForward(benchmark::State &state)
{
    auto net = nn::zoo::build(nn::zoo::Model::SennaPos, 42);
    int64_t rows = state.range(0);
    nn::Tensor in(nn::Shape(rows, 250), 0.1f);
    for (auto _ : state) {
        nn::Tensor out = net->forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}

BENCHMARK(BM_SennaForward)
    ->Arg(28)
    ->Arg(28 * 16)
    ->Unit(benchmark::kMicrosecond);

void
BM_MnistForward(benchmark::State &state)
{
    auto net = nn::zoo::build(nn::zoo::Model::Mnist, 42);
    int64_t rows = state.range(0);
    nn::Tensor in(nn::Shape(rows, 1, 28, 28), 0.5f);
    for (auto _ : state) {
        nn::Tensor out = net->forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}

BENCHMARK(BM_MnistForward)
    ->Arg(1)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void
BM_NetDefParse(benchmark::State &state)
{
    std::string def = nn::zoo::netDef(nn::zoo::Model::AlexNet);
    for (auto _ : state) {
        auto net = nn::parseNetDefOrDie(def);
        benchmark::DoNotOptimize(net.get());
    }
}

BENCHMARK(BM_NetDefParse)->Unit(benchmark::kMillisecond);

void
BM_WeightInit(benchmark::State &state)
{
    auto net = nn::parseNetDefOrDie(
        nn::zoo::netDef(nn::zoo::Model::SennaPos));
    for (auto _ : state)
        nn::initializeWeights(*net, 42);
}

BENCHMARK(BM_WeightInit)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------
// Registry snapshot: direct best-of-N GFLOP/s measurements of the
// Table-1 GEMM shapes across compute-thread counts.

struct GemmShape {
    const char *name;
    int64_t m, n, k;
};

// Paper-relevant shapes plus the square 512 speedup yardstick.
const GemmShape kShapes[] = {
    {"senna_fc1", 28, 600, 250},
    {"kaldi_hidden", 64, 2048, 2048},
    {"alexnet_fc6", 16, 4096, 9216},
    {"alexnet_conv1", 96, 3025, 363},
    {"square512", 512, 512, 512},
};

/** Best-of-@p reps wall seconds for one invocation of @p fn. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        fn();
        double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (s < best)
            best = s;
    }
    return best;
}

void
recordGemmRates(telemetry::MetricRegistry &registry)
{
    double naive512 = 0.0;
    double fast512 = 0.0;
    for (const GemmShape &shape : kShapes) {
        auto a = randomVec(shape.m * shape.k, 11);
        auto b = randomVec(shape.k * shape.n, 12);
        std::vector<float> c(
            static_cast<size_t>(shape.m * shape.n));
        double flops =
            2.0 * shape.m * shape.n * static_cast<double>(shape.k);

        telemetry::LabelMap base{
            {"shape", shape.name},
            {"m", std::to_string(shape.m)},
            {"n", std::to_string(shape.n)},
            {"k", std::to_string(shape.k)}};

        // int8 operands: weights (B) pre-quantized per output
        // column, activations (A) quantized inside the timed call —
        // the serving cost split.
        std::vector<int8_t> b8(b.size());
        std::vector<float> b_scales(static_cast<size_t>(shape.n));
        for (int64_t j = 0; j < shape.n; ++j) {
            float col_max = 0.0f;
            for (int64_t p = 0; p < shape.k; ++p)
                col_max = std::max(
                    col_max, std::fabs(b[p * shape.n + j]));
            nn::QuantParams wq = nn::QuantParams::symmetricS8(
                col_max);
            b_scales[static_cast<size_t>(j)] = wq.scale;
            for (int64_t p = 0; p < shape.k; ++p)
                b8[p * shape.n + j] = static_cast<int8_t>(
                    wq.quantize(b[p * shape.n + j]));
        }
        float a_lo, a_hi;
        nn::minMax(a.data(), static_cast<int64_t>(a.size()), &a_lo,
                   &a_hi);
        nn::QuantParams aq = nn::QuantParams::affineU8(a_lo, a_hi);

        struct PrecisionRun {
            const char *name;
            std::function<void()> run;
        };
        const PrecisionRun runs[] = {
            {"f32",
             [&]() {
                 nn::sgemm(shape.m, shape.n, shape.k, a.data(),
                           b.data(), c.data());
             }},
            {"bf16",
             [&]() {
                 nn::gemm_bf16(nn::Trans::No, nn::Trans::No, shape.m,
                               shape.n, shape.k, 1.0f, a.data(),
                               shape.k, b.data(), shape.n, 0.0f,
                               c.data(), shape.n);
             }},
            {"int8",
             [&]() {
                 nn::gemm_s8(nn::Trans::No, nn::Trans::No, shape.m,
                             shape.n, shape.k, 1.0f, a.data(),
                             shape.k, aq, b8.data(), shape.n,
                             b_scales.data(), 0.0f, c.data(),
                             shape.n);
             }},
        };
        for (const PrecisionRun &pr : runs) {
            for (int threads : {1, 2, 4, 8}) {
                common::setComputeThreads(threads);
                // Warm the pool and the pack buffers once.
                pr.run();
                double secs = bestSeconds(5, pr.run);
                telemetry::LabelMap labels = base;
                labels["threads"] = std::to_string(threads);
                labels["precision"] = pr.name;
                double gflops = flops / secs / 1e9;
                registry.gauge("djinn_gemm_gflops", labels)
                    .set(gflops);
                if (threads == 1 &&
                    std::string(pr.name) == "f32" &&
                    std::string(shape.name) == "square512")
                    fast512 = gflops;
            }
            common::setComputeThreads(0);
        }

        // Reference scalar kernel, single thread by construction.
        double naiveSecs = bestSeconds(3, [&]() {
            nn::sgemm_naive(nn::Trans::No, nn::Trans::No, shape.m,
                            shape.n, shape.k, 1.0f, a.data(),
                            shape.k, b.data(), shape.n, 0.0f,
                            c.data(), shape.n);
        });
        double naiveGflops = flops / naiveSecs / 1e9;
        registry.gauge("djinn_gemm_naive_gflops", base)
            .set(naiveGflops);
        if (std::string(shape.name) == "square512")
            naive512 = naiveGflops;
    }
    if (naive512 > 0.0) {
        registry
            .gauge("djinn_gemm_speedup_1t",
                   {{"shape", "square512"}})
            .set(fast512 / naive512);
    }
    registry.gauge("djinn_compute_threads_avail")
        .set(static_cast<double>(common::computeThreads()));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    telemetry::MetricRegistry registry;
    recordGemmRates(registry);
    std::fputs(telemetry::renderJson(registry.snapshot()).c_str(),
               stdout);
    return 0;
}
