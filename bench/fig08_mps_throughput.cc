/**
 * @file
 * Regenerates paper Figure 8: throughput as the number of DNN
 * service instances per GPU grows from 1 to 16, with MPS
 * (concurrent kernels) vs without (time-shared GPU). Tuned batch
 * sizes per Table 3.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 8",
           "Throughput (QPS) vs DNN service instances per GPU");
    const int instance_counts[] = {1, 2, 4, 8, 16};

    std::vector<std::string> head{"App", "Mode"};
    for (int n : instance_counts)
        head.push_back("i" + std::to_string(n));
    row(head, 10);

    for (serve::App app : serve::allApps()) {
        for (bool mps : {true, false}) {
            std::vector<std::string> cells{
                serve::appName(app), mps ? "MPS" : "share"};
            for (int n : instance_counts) {
                serve::SimConfig config;
                config.app = app;
                config.batch = serve::appSpec(app).tunedBatch;
                config.instancesPerGpu = n;
                config.mps = mps;
                cells.push_back(eng(
                    serve::runServingSim(config).throughputQps));
            }
            row(cells, 10);
        }
    }
    std::printf("\nPaper shape: throughput rises with instances "
                "then plateaus; MPS beats\ntime-sharing; up to ~6x "
                "gain from concurrency.\n\n");
    return 0;
}
