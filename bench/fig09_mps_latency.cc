/**
 * @file
 * Regenerates paper Figure 9: query latency as the number of DNN
 * service instances per GPU grows, MPS vs time-shared.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 9",
           "Service latency (ms) vs DNN service instances per GPU");
    const int instance_counts[] = {1, 2, 4, 8, 16};

    std::vector<std::string> head{"App", "Mode"};
    for (int n : instance_counts)
        head.push_back("i" + std::to_string(n));
    row(head, 10);

    for (serve::App app : serve::allApps()) {
        for (bool mps : {true, false}) {
            std::vector<std::string> cells{
                serve::appName(app), mps ? "MPS" : "share"};
            for (int n : instance_counts) {
                serve::SimConfig config;
                config.app = app;
                config.batch = serve::appSpec(app).tunedBatch;
                config.instancesPerGpu = n;
                config.mps = mps;
                cells.push_back(num(
                    serve::runServingSim(config).meanLatency * 1e3,
                    1));
            }
            row(cells, 10);
        }
    }
    std::printf("\nPaper shape: latency small below ~4 instances, "
                "then grows; MPS limits\nthe increase (up to ~3x "
                "lower than time-sharing).\n\n");
    return 0;
}
