/**
 * @file
 * Regenerates paper Figure 13: the network bandwidth each
 * application needs to sustain its bandwidth-unconstrained peak
 * throughput as the GPU count grows, against the PCIe v3 and 10GbE
 * reference lines.
 */

#include "bench_util.hh"
#include "gpu/link.hh"
#include "wsc/bandwidth.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 13",
           "Bandwidth requirement (GB/s) vs number of GPUs");
    std::vector<std::string> head{"App"};
    for (int g = 1; g <= 8; ++g)
        head.push_back("g" + std::to_string(g));
    row(head, 9);

    for (serve::App app : serve::allApps()) {
        std::vector<std::string> cells{serve::appName(app)};
        for (int gpus = 1; gpus <= 8; ++gpus) {
            cells.push_back(num(
                wsc::bandwidthRequirement(app, gpus) / 1e9, 2));
        }
        row(cells, 9);
    }

    std::printf("\nReference lines: PCIe v3 x16 = %.2f GB/s, "
                "10GbE = %.2f GB/s\n",
                gpu::pcieV3().peakBandwidth / 1e9,
                gpu::ethernet10G().peakBandwidth / 1e9);
    std::printf("Paper shape: compute-heavy tasks need only ~4 "
                "GB/s; the NLP tasks blow\npast PCIe v3 well before "
                "8 GPUs.\n\n");
    return 0;
}
