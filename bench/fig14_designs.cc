/**
 * @file
 * Regenerates paper Figure 14 in textual form: the three WSC
 * organizations and the path a DNN query takes through each, with
 * a concrete provisioning example (MIXED workload, 70% DNN) so the
 * structural difference is visible in hardware counts.
 */

#include "bench_util.hh"
#include "wsc/designs.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 14", "WSC designs and query paths");
    std::printf(
        "(a) CPU Only: front end -> beefy CPU server NIC -> memory\n"
        "    -> CPU executes preprocessing + DNN + postprocessing.\n"
        "(b) Integrated GPU: front end -> CPU of a combined server\n"
        "    -> preprocessing on CPU -> PCIe -> one of 12 on-board\n"
        "    GPUs runs the DjiNN service.\n"
        "(c) Disaggregated GPU: front end -> beefy CPU server\n"
        "    (preprocessing) -> 10GbE fabric -> wimpy GPU chassis\n"
        "    (16 teamed NICs) -> PCIe -> GPU pool.\n\n");

    wsc::DesignConfig config;
    const wsc::Mix mix = wsc::Mix::Mixed;
    const double fraction = 0.7;
    std::printf("provisioning example: MIXED workload, 70%% DNN, "
                "%.0f-server baseline\n\n", config.baselineServers);
    row({"Design", "beefy", "wimpy", "GPUs", "NICs", "TCO $M"},
        18);
    for (wsc::Design design : wsc::allDesigns()) {
        auto result = wsc::provision(design, mix, fraction, config);
        row({wsc::designName(design),
             num(result.fleet.beefyServers, 0),
             num(result.fleet.wimpyServers, 0),
             num(result.fleet.gpus, 0),
             num(result.fleet.nicUnits, 0),
             num(result.tco.total() / 1e6, 2)}, 18);
    }
    std::printf("\nThe disaggregated design buys GPU capacity only "
                "where the workload can\nfeed it; the integrated "
                "design replicates 12 GPUs into every server it\n"
                "adds.\n\n");
    return 0;
}
