/**
 * @file
 * Regenerates paper Figure 12: throughput as GPUs scale 1..8 with
 * inputs pinned in GPU memory (no PCIe transfers), the paper's
 * bandwidth-bypass experiment.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 12", "Throughput vs number of GPUs "
                        "(no PCIe bandwidth limit)");
    std::vector<std::string> head{"App"};
    for (int g = 1; g <= 8; ++g)
        head.push_back("g" + std::to_string(g));
    head.push_back("8v1");
    row(head, 9);

    for (serve::App app : serve::allApps()) {
        std::vector<std::string> cells{serve::appName(app)};
        double first = 0.0, last = 0.0;
        for (int gpus = 1; gpus <= 8; ++gpus) {
            serve::SimConfig config;
            config.app = app;
            config.batch = serve::appSpec(app).tunedBatch;
            config.instancesPerGpu = 4;
            config.gpuCount = gpus;
            config.hostLink = gpu::unlimitedLink();
            double qps = serve::runServingSim(config).throughputQps;
            if (gpus == 1)
                first = qps;
            last = qps;
            cells.push_back(eng(qps));
        }
        cells.push_back(num(last / first, 1) + "x");
        row(cells, 9);
    }
    std::printf("\nPaper shape: with transfers eliminated, all "
                "applications scale\nnear-linearly to 8 GPUs.\n\n");
    return 0;
}
