/**
 * @file
 * Ablation (extension beyond the paper): throughput/latency as the
 * offered closed-loop load grows, at the tuned operating point
 * (Table 3 batch, 4 MPS instances). Shows the saturation knee the
 * paper's Figure 7c/9 latency cliffs come from.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Ablation", "Closed-loop load sweep at the tuned "
                       "operating point");
    const int loads[] = {1, 2, 4, 8};

    std::vector<std::string> head{"App", "Metric"};
    for (int l : loads)
        head.push_back("load" + std::to_string(l));
    row(head, 11);

    for (serve::App app : {serve::App::IMC, serve::App::ASR,
                           serve::App::POS}) {
        std::vector<std::string> qps_cells{serve::appName(app),
                                           "QPS"};
        std::vector<std::string> lat_cells{serve::appName(app),
                                           "p99(ms)"};
        for (int load : loads) {
            serve::SimConfig config;
            config.app = app;
            config.batch = serve::appSpec(app).tunedBatch;
            config.instancesPerGpu = 4;
            config.clientBatches = load;
            auto result = serve::runServingSim(config);
            qps_cells.push_back(eng(result.throughputQps));
            lat_cells.push_back(num(result.p99Latency * 1e3, 1));
        }
        row(qps_cells, 11);
        row(lat_cells, 11);
    }
    std::printf("\nTakeaway: past GPU saturation, added load buys "
                "no throughput and\nlatency grows linearly "
                "(queueing) - the paper's guidance to stop at\n"
                "~4 concurrent instances.\n\n");
    return 0;
}
