/**
 * @file
 * bench_suite - the unified perf-regression runner (DESIGN.md §15).
 *
 * Executes the three measurement stages the BENCH_*.json
 * trajectories track, with fixed seeds, and emits one
 * schema-versioned JSON document:
 *
 *   1. GEMM kernels at DNN-relevant shapes, per precision
 *      (f32/bf16/int8) and compute-thread count
 *        -> djinn_bench_gemm_gflops{shape,precision,threads}
 *   2. A live loopback batching server (tiny model, real TCP) at
 *      batch sizes 1/16/64, quantiled from the same
 *      djinn_request_seconds histogram production scrapes read
 *        -> djinn_bench_service_seconds{batch,stat=p50|p99}
 *   3. Deterministic cluster-simulator experiments per routing
 *      policy (flat service model, fixed trace seed) — bit-exact
 *      across runs, so compare uses a zero-noise threshold
 *        -> djinn_bench_cluster_latency_seconds{policy,stat}
 *           djinn_bench_cluster_shed_fraction{policy}
 *           djinn_bench_cluster_throughput_qps{policy}
 *
 * Usage:
 *   bench_suite [--quick] [--seed N] [--out FILE]
 *
 * --quick shrinks shapes, repetitions, and client counts so CI can
 * afford two back-to-back runs; the emitted schema is identical.
 * Output is `{"bench_schema": 1, "quick": ..., "seed": ...,
 * "samples": [{"id": ..., "value": ...}, ...]}` with samples in a
 * fixed stage order. Feed two outputs to bench_compare to gate
 * regressions.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/simulator.hh"
#include "cluster/telemetry.hh"
#include "cluster/workload.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "nn/gemm.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/quant.hh"
#include "telemetry/exposition.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"

using namespace djinn;

namespace {

struct SuiteSample {
    std::string id;
    double value = 0.0;
};

struct SuiteConfig {
    bool quick = false;
    uint64_t seed = 42;
    std::string outPath; // empty = stdout
};

void
emitSample(std::vector<SuiteSample> &out, const char *name,
           const telemetry::LabelMap &labels, double value)
{
    out.push_back({telemetry::renderMetricId(name, labels), value});
}

std::vector<float>
randomVec(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(static_cast<size_t>(n));
    for (auto &v : out)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return out;
}

/** Best-of-@p reps wall seconds for one invocation of @p fn. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        fn();
        double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (s < best)
            best = s;
    }
    return best;
}

// ---------------------------------------------------------------
// Stage 1: GEMM kernel rates.

struct GemmShape {
    const char *name;
    int64_t m, n, k;
};

void
runGemmStage(const SuiteConfig &config,
             std::vector<SuiteSample> &out)
{
    const std::vector<GemmShape> shapes =
        config.quick
            ? std::vector<GemmShape>{{"senna_fc1", 28, 600, 250},
                                     {"square256", 256, 256, 256}}
            : std::vector<GemmShape>{{"senna_fc1", 28, 600, 250},
                                     {"kaldi_hidden", 64, 2048,
                                      2048},
                                     {"alexnet_fc6", 16, 4096,
                                      9216},
                                     {"square512", 512, 512, 512}};
    const std::vector<int> threadCounts =
        config.quick ? std::vector<int>{1, 4}
                     : std::vector<int>{1, 2, 4, 8};
    const int reps = config.quick ? 3 : 5;

    for (const GemmShape &shape : shapes) {
        auto a = randomVec(shape.m * shape.k, config.seed + 11);
        auto b = randomVec(shape.k * shape.n, config.seed + 12);
        std::vector<float> c(
            static_cast<size_t>(shape.m * shape.n));
        const double flops =
            2.0 * shape.m * shape.n * static_cast<double>(shape.k);

        // int8 operands: weights pre-quantized per output column,
        // activations quantized inside the timed call — the serving
        // cost split (DESIGN.md §14).
        std::vector<int8_t> b8(b.size());
        std::vector<float> b_scales(static_cast<size_t>(shape.n));
        for (int64_t j = 0; j < shape.n; ++j) {
            float col_max = 0.0f;
            for (int64_t p = 0; p < shape.k; ++p)
                col_max = std::max(col_max,
                                   std::fabs(b[p * shape.n + j]));
            nn::QuantParams wq =
                nn::QuantParams::symmetricS8(col_max);
            b_scales[static_cast<size_t>(j)] = wq.scale;
            for (int64_t p = 0; p < shape.k; ++p)
                b8[p * shape.n + j] = static_cast<int8_t>(
                    wq.quantize(b[p * shape.n + j]));
        }
        float a_lo, a_hi;
        nn::minMax(a.data(), static_cast<int64_t>(a.size()), &a_lo,
                   &a_hi);
        nn::QuantParams aq = nn::QuantParams::affineU8(a_lo, a_hi);

        struct PrecisionRun {
            const char *name;
            std::function<void()> run;
        };
        const PrecisionRun runs[] = {
            {"f32",
             [&]() {
                 nn::sgemm(shape.m, shape.n, shape.k, a.data(),
                           b.data(), c.data());
             }},
            {"bf16",
             [&]() {
                 nn::gemm_bf16(nn::Trans::No, nn::Trans::No,
                               shape.m, shape.n, shape.k, 1.0f,
                               a.data(), shape.k, b.data(), shape.n,
                               0.0f, c.data(), shape.n);
             }},
            {"int8",
             [&]() {
                 nn::gemm_s8(nn::Trans::No, nn::Trans::No, shape.m,
                             shape.n, shape.k, 1.0f, a.data(),
                             shape.k, aq, b8.data(), shape.n,
                             b_scales.data(), 0.0f, c.data(),
                             shape.n);
             }},
        };
        for (const PrecisionRun &pr : runs) {
            for (int threads : threadCounts) {
                common::setComputeThreads(threads);
                pr.run(); // warm the pool and pack buffers
                double secs = bestSeconds(reps, pr.run);
                emitSample(out, "djinn_bench_gemm_gflops",
                           {{"precision", pr.name},
                            {"shape", shape.name},
                            {"threads", std::to_string(threads)}},
                           flops / secs / 1e9);
            }
            common::setComputeThreads(0);
        }
    }
}

// ---------------------------------------------------------------
// Stage 2: live loopback service latency per batch size.

void
runServiceStage(const SuiteConfig &config,
                std::vector<SuiteSample> &out)
{
    const int threads = config.quick ? 2 : 4;
    const int perThread = config.quick ? 32 : 64;

    for (int64_t batch : {int64_t{1}, int64_t{16}, int64_t{64}}) {
        core::ModelRegistry registry;
        auto net = nn::parseNetDefOrDie(
            "name tiny\ninput 1 4 4\nlayer fc fc out 8\n");
        nn::initializeWeights(*net, config.seed);
        (void)registry.add(std::move(net));

        core::ServerConfig server_config;
        server_config.batching = true;
        server_config.batchOptions.maxQueries = batch;
        server_config.batchOptions.maxDelay = 200e-6;
        core::DjinnServer server(registry, server_config);
        if (!server.start().isOk()) {
            std::fprintf(stderr,
                         "bench_suite: cannot start loopback "
                         "server (batch %lld)\n",
                         static_cast<long long>(batch));
            continue;
        }

        std::vector<std::thread> clients;
        for (int t = 0; t < threads; ++t) {
            clients.emplace_back([&server, perThread]() {
                core::DjinnClient client;
                if (!client.connect("127.0.0.1", server.port())
                         .isOk())
                    return;
                std::vector<float> payload(16, 0.5f);
                for (int i = 0; i < perThread; ++i)
                    (void)client.infer("tiny", 1, payload);
            });
        }
        for (auto &c : clients)
            c.join();
        server.stop();

        for (const telemetry::MetricSample &sample :
             server.metrics().snapshot()) {
            if (sample.name != telemetry::requestSecondsMetricName)
                continue;
            if (sample.kind != telemetry::MetricKind::Histogram)
                continue;
            telemetry::LabelMap labels{
                {"batch", std::to_string(batch)}};
            labels["stat"] = "p50";
            emitSample(out, "djinn_bench_service_seconds", labels,
                       sample.histogram.quantile(0.50));
            labels["stat"] = "p99";
            emitSample(out, "djinn_bench_service_seconds", labels,
                       sample.histogram.quantile(0.99));
            break;
        }
    }
}

// ---------------------------------------------------------------
// Stage 3: deterministic cluster-simulator ablations.

void
runClusterStage(const SuiteConfig &config,
                std::vector<SuiteSample> &out)
{
    cluster::WorkloadSpec spec;
    spec.apps = {serve::App::IMC, serve::App::DIG, serve::App::ASR};
    spec.process = cluster::ArrivalProcess::Poisson;
    spec.meanRate = config.quick ? 2000.0 : 4000.0;
    spec.durationSeconds = config.quick ? 3.0 : 6.0;
    spec.seed = config.seed;
    cluster::ClusterTrace trace = cluster::generateTrace(spec);

    for (cluster::RoutePolicy policy :
         {cluster::RoutePolicy::RoundRobin,
          cluster::RoutePolicy::JoinShortestQueue,
          cluster::RoutePolicy::DeadlineJsq}) {
        cluster::ClusterConfig cc;
        cc.nodeCount = 4;
        cc.node.gpus = 1;
        cc.node.maxBatch = 4;
        cc.node.batchTimeout = 1e-3;
        cc.policy = policy;
        cc.sampleInterval = 0.1;
        cc.deadlineSeconds =
            policy == cluster::RoutePolicy::DeadlineJsq ? 0.05
                                                        : 0.0;
        // Flat 1 ms/query service model: no calibration tables in
        // the loop, so the whole stage is pure virtual time and
        // bit-identical across runs and hosts.
        cc.serviceModel = [](serve::App, int64_t queries) {
            return static_cast<double>(queries) * 1e-3;
        };
        cc.seed = config.seed;
        cluster::ClusterResult result =
            cluster::runClusterSim(cc, trace);

        const telemetry::LabelMap base{
            {"policy", cluster::routePolicyName(policy)}};
        telemetry::LabelMap labels = base;
        labels["stat"] = "p50";
        emitSample(out, "djinn_bench_cluster_latency_seconds",
                   labels, result.latency.p50);
        labels["stat"] = "p99";
        emitSample(out, "djinn_bench_cluster_latency_seconds",
                   labels, result.latency.p99);
        emitSample(out, "djinn_bench_cluster_shed_fraction", base,
                   result.offered
                       ? static_cast<double>(result.shedOverload +
                                             result.shedDeadline) /
                             static_cast<double>(result.offered)
                       : 0.0);
        emitSample(out, "djinn_bench_cluster_throughput_qps", base,
                   result.throughputQps);
    }

    // The hybrid node-local dispatch policy (DESIGN.md §16):
    // SLO-driven adaptive batch sizing plus weighted fair sharing
    // across tenants, replayed over the same trace. Pure virtual
    // time like the stages above, so bench_compare guards these
    // numbers at zero noise.
    {
        cluster::ClusterConfig cc;
        cc.nodeCount = 4;
        cc.node.gpus = 1;
        cc.node.maxBatch = 4;
        cc.node.batchTimeout = 1e-3;
        cc.policy = cluster::RoutePolicy::JoinShortestQueue;
        cc.sampleInterval = 0.1;
        cc.deadlineSeconds = 0.05;
        cc.node.sloSeconds = cc.deadlineSeconds;
        cc.node.adaptiveBatch = true;
        cc.node.fairShare = true;
        cc.node.tenantWeights["IMC"] = 2.0;
        cc.serviceModel = [](serve::App, int64_t queries) {
            return static_cast<double>(queries) * 1e-3;
        };
        cc.seed = config.seed;
        cluster::ClusterResult result =
            cluster::runClusterSim(cc, trace);

        const telemetry::LabelMap base{{"policy", "hybrid"}};
        telemetry::LabelMap labels = base;
        labels["stat"] = "p50";
        emitSample(out, "djinn_bench_cluster_latency_seconds",
                   labels, result.latency.p50);
        labels["stat"] = "p99";
        emitSample(out, "djinn_bench_cluster_latency_seconds",
                   labels, result.latency.p99);
        emitSample(out, "djinn_bench_cluster_shed_fraction", base,
                   result.offered
                       ? static_cast<double>(result.shedOverload +
                                             result.shedDeadline) /
                             static_cast<double>(result.offered)
                       : 0.0);
        emitSample(out, "djinn_bench_cluster_throughput_qps", base,
                   result.throughputQps);
    }
}

std::string
renderSuiteJson(const SuiteConfig &config,
                const std::vector<SuiteSample> &samples)
{
    std::string out = "{\n  \"bench_schema\": 1,\n";
    out += config.quick ? "  \"quick\": true,\n"
                        : "  \"quick\": false,\n";
    out += "  \"seed\": " + std::to_string(config.seed) + ",\n";
    out += "  \"samples\": [\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        char value[64];
        std::snprintf(value, sizeof(value), "%.9g",
                      samples[i].value);
        out += "    {\"id\": \"" +
               telemetry::jsonEscape(samples[i].id) +
               "\", \"value\": " + value + "}";
        out += i + 1 < samples.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_suite [--quick] [--seed N] [--out FILE]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    SuiteConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            config.quick = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            config.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--out" && i + 1 < argc) {
            config.outPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    std::vector<SuiteSample> samples;
    std::fprintf(stderr, "bench_suite: gemm stage...\n");
    runGemmStage(config, samples);
    std::fprintf(stderr, "bench_suite: service stage...\n");
    runServiceStage(config, samples);
    std::fprintf(stderr, "bench_suite: cluster stage...\n");
    runClusterStage(config, samples);

    std::string json = renderSuiteJson(config, samples);
    if (config.outPath.empty()) {
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(config.outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     config.outPath.c_str());
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench_suite: wrote %zu samples to %s\n",
                 samples.size(), config.outPath.c_str());
    return 0;
}
