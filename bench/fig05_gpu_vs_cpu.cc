/**
 * @file
 * Regenerates paper Figure 5: DNN-service throughput improvement
 * of one K40 GPU over one Xeon core, at batch size 1 (before the
 * Section 5 optimizations).
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 5",
           "GPU throughput improvement over single-thread CPU "
           "(batch 1)");
    row({"App", "CPU QPS", "GPU QPS", "Speedup"});
    for (serve::App app : serve::allApps()) {
        const auto &spec = serve::appSpec(app);
        double cpu_qps =
            1.0 / serve::cpuQueryTime(app, gpu::CpuSpec());
        serve::SimConfig config;
        config.app = app;
        config.batch = 1;
        double gpu_qps =
            serve::runServingSim(config).throughputQps;
        row({spec.name, num(cpu_qps, 2), num(gpu_qps, 1),
             num(gpu_qps / cpu_qps, 1) + "x"});
    }
    std::printf("\nPaper shape: >20x for networks over 30M params; "
                "ASR highest (~120x);\nNLP only ~7x.\n\n");
    return 0;
}
