/**
 * @file
 * Ablation (extension beyond the paper): what happens to the
 * Figure 15 TCO picture when the GPU designs are also charged for
 * the CPU pre/post-processing of every query (Figure 4 fractions)?
 * Amdahl's law on ASR's heavy front end compresses the gains; the
 * paper's Section 6.3 methodology matches DNN service throughput
 * only.
 */

#include "bench_util.hh"
#include "wsc/designs.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Ablation", "TCO gains with and without pre/post-"
                       "processing accounting (100% DNN)");
    row({"Mix", "Design", "DNN-only", "w/pre-post"}, 20);
    for (wsc::Mix mix : wsc::allMixes()) {
        for (wsc::Design design : {wsc::Design::IntegratedGpu,
                                   wsc::Design::DisaggregatedGpu}) {
            wsc::DesignConfig ideal;
            wsc::DesignConfig charged;
            charged.accountPrePost = true;

            double gain_ideal =
                wsc::provision(wsc::Design::CpuOnly, mix, 1.0,
                               ideal).tco.total() /
                wsc::provision(design, mix, 1.0,
                               ideal).tco.total();
            double gain_charged =
                wsc::provision(wsc::Design::CpuOnly, mix, 1.0,
                               charged).tco.total() /
                wsc::provision(design, mix, 1.0,
                               charged).tco.total();
            row({wsc::mixName(mix), wsc::designName(design),
                 num(gain_ideal, 1) + "x",
                 num(gain_charged, 1) + "x"}, 20);
        }
    }
    std::printf("\nTakeaway: once the GPU designs must provision "
                "CPUs for pre/post\nprocessing, the MIXED gain "
                "compresses (ASR's front end is ~53%% of its\n"
                "CPU work), while the image mix is barely "
                "affected.\n\n");
    return 0;
}
