/**
 * @file
 * Regenerates paper Table 3: per-application service inputs,
 * payload sizes, outputs, and the tuned batch sizes selected from
 * the Figure 7 sweep (knee of throughput with bounded latency).
 */

#include "bench_util.hh"
#include "serve/tuner.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

/**
 * Re-derive the tuned batch size with the library's tuner, which
 * encodes the paper's rule of "high throughput while limiting
 * query latency impact" (Section 5.1).
 */
int64_t
deriveBatch(serve::App app)
{
    serve::SimConfig base;
    return serve::tuneBatchSize(app, base).batch;
}

} // namespace

int
main()
{
    banner("Table 3", "DjiNN service applications");
    row({"App", "Rows/query", "In(KB)", "Out(KB)", "Batch",
         "Derived"});
    for (serve::App app : serve::allApps()) {
        const auto &spec = serve::appSpec(app);
        row({spec.name, std::to_string(spec.samplesPerQuery),
             num(spec.inputBytes / 1024.0, 0),
             num(spec.outputBytes / 1024.0, 1),
             std::to_string(spec.tunedBatch),
             std::to_string(deriveBatch(app))});
    }
    std::printf("\n'Batch' is the paper's Table 3 value; 'Derived' "
                "is re-derived from our\nFigure 7 sweep (smallest "
                "batch within 90%% of peak throughput).\n\n");
    return 0;
}
