/**
 * @file
 * Ablation (extension beyond the paper): cluster-scale routing and
 * admission policy frontier, and its consequence for warehouse
 * provisioning.
 *
 * Part 1 replays the same synthetic diurnal Tonic-mix trace
 * through every front-end policy at increasing load and reports
 * goodput, shed rate, and tail latency. Queue-blind round-robin
 * collapses first; deadline-aware JSQ / power-of-two shed
 * infeasible requests at the front end and keep the tail bounded.
 *
 * Part 2 re-provisions the paper's Figure 14/15 GPU designs with
 * the tail-aware capacity oracle (max load meeting a p99 SLO under
 * deadline-aware JSQ, measured by cluster-sim probes) next to the
 * closed-form mean-throughput oracle, showing what tail SLOs cost
 * in servers and TCO.
 */

#include <cmath>

#include "bench_util.hh"
#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "serve/app.hh"
#include "telemetry/attribution.hh"
#include "wsc/designs.hh"
#include "wsc/tail_capacity.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

/** Sustainable throughput of the test cluster, probed at heavy
 * overload with JSQ (admission control caps the damage). */
double
clusterCapacityQps(const cluster::ClusterConfig &base)
{
    cluster::WorkloadSpec probe;
    probe.apps = serve::allApps();
    probe.meanRate = 50000.0;
    probe.durationSeconds = 2.0;
    probe.seed = 9;
    cluster::ClusterConfig config = base;
    config.policy = cluster::RoutePolicy::JoinShortestQueue;
    config.deadlineSeconds = 0.0;
    config.retryShedRequests = false;
    return cluster::runClusterSim(
        config, cluster::generateTrace(probe)).throughputQps;
}

} // namespace

int
main()
{
    banner("Ablation", "Cluster routing policies and tail-aware "
                       "provisioning");

    cluster::ClusterConfig base;
    base.nodeCount = 8;
    base.node.gpus = 1;
    base.deadlineSeconds = 0.250;
    base.sampleInterval = 0.0;
    base.seed = 17;
    // Heterogeneous fleet: half the nodes run at a third speed
    // (older GPUs, co-located interference). Queue-blind policies
    // keep feeding the stragglers anyway.
    base.speedFactors = {1.0, 1.0, 1.0, 1.0,
                         0.35, 0.35, 0.35, 0.35};

    double capacity = clusterCapacityQps(base);
    std::printf("cluster: %d nodes x %d GPU (half at 0.35x speed), "
                "capacity ~%.0f qps, SLO %.0f ms\n\n",
                base.nodeCount, base.node.gpus, capacity,
                1e3 * base.deadlineSeconds);

    for (double load : {0.7, 1.0, 1.3}) {
        cluster::WorkloadSpec workload;
        workload.apps = serve::allApps();
        workload.process = cluster::ArrivalProcess::Diurnal;
        workload.meanRate = load * capacity;
        workload.durationSeconds = 20.0;
        workload.seed = 17;
        cluster::ClusterTrace trace =
            cluster::generateTrace(workload);

        std::printf("offered load %.1fx capacity (%s, %.0f qps "
                    "mean):\n", load,
                    cluster::arrivalProcessName(workload.process),
                    workload.meanRate);
        row({"policy", "goodput", "shed%", "p50 ms", "p99 ms",
             "p99 blame"});
        for (cluster::RoutePolicy policy :
             cluster::allRoutePolicies()) {
            cluster::ClusterConfig config = base;
            config.policy = policy;
            cluster::ClusterResult result =
                cluster::runClusterSim(config, trace);
            // Flight-record attribution: which phase the p99
            // cohort's excess latency comes from under this policy.
            telemetry::TailReport report = telemetry::attributeTail(
                result.flightRecords, 99.0);
            std::string blame = "-";
            if (!report.dominant.empty() &&
                !report.contributors.empty()) {
                blame = report.dominant + " " +
                        num(100.0 * report.contributors[0].share,
                            0) + "%";
            }
            row({cluster::routePolicyName(policy),
                 num(result.throughputQps, 0),
                 num(100.0 * result.lostFraction(), 1),
                 num(1e3 * result.latency.p50, 1),
                 num(1e3 * result.latency.p99, 1), blame});
        }
        std::printf("\n");
    }
    std::printf("Deadline-aware placement (jsq-d/po2-d) sheds "
                "work it cannot finish in\ntime at the front end, "
                "so at overload its p99 stays near the SLO while\n"
                "queue-blind round-robin lets every queue grow "
                "until latency is set by\nthe admission limit, "
                "not the deadline. The blame column comes from\n"
                "flight-record attribution (the /debug/tail "
                "engine): under queue-blind\npolicies the p99 "
                "excess is queue wait on the straggler nodes, not\n"
                "forward-pass time.\n\n");

    // Part 2: what tail SLOs cost at warehouse scale.
    banner("Ablation", "Tail-aware WSC provisioning vs "
                       "closed-form throughput");
    wsc::TailCapacityConfig tail;
    tail.probeNodes = 2;
    tail.simSeconds = 2.0;
    tail.searchIterations = 8;

    wsc::DesignConfig closed;
    wsc::DesignConfig tail_aware;
    tail_aware.serverQpsFn = wsc::tailAwareQpsFn(tail);

    const wsc::Mix mix = wsc::Mix::Mixed;
    const double fraction = 0.7;
    std::printf("MIXED workload, 70%% DNN, p99 SLO = %.0fx tuned-"
                "batch service time,\npolicy %s, %s arrivals "
                "(%.0fx bursts %.0f%% of the time), shed cap "
                "%.1f%%\n\n",
                tail.sloMultiplier,
                cluster::routePolicyName(tail.policy),
                cluster::arrivalProcessName(tail.process),
                tail.burstMultiplier, 100.0 * tail.burstFraction,
                100.0 * tail.maxShedFraction);
    row({"Design", "oracle", "servers", "GPUs", "TCO $M",
         "vs CPU"}, 18);
    double cpu_tco = wsc::provision(wsc::Design::CpuOnly, mix,
                                    fraction, closed).tco.total();
    for (wsc::Design design :
         {wsc::Design::IntegratedGpu,
          wsc::Design::DisaggregatedGpu}) {
        auto mean = wsc::provision(design, mix, fraction, closed);
        auto slo = wsc::provision(design, mix, fraction,
                                  tail_aware);
        row({wsc::designName(design), "mean-tput",
             num(mean.fleet.beefyServers + mean.fleet.wimpyServers,
                 0),
             num(mean.fleet.gpus, 0),
             num(mean.tco.total() / 1e6, 2),
             num(cpu_tco / mean.tco.total(), 1) + "x"}, 18);
        row({"", "tail-aware",
             num(slo.fleet.beefyServers + slo.fleet.wimpyServers,
                 0),
             num(slo.fleet.gpus, 0),
             num(slo.tco.total() / 1e6, 2),
             num(cpu_tco / slo.tco.total(), 1) + "x"}, 18);
    }
    std::printf("\nA fleet sized to mean throughput has no "
                "headroom for bursts: while a\nburst exceeds "
                "capacity the backlog's drain time blows through "
                "p99, so\nthe tail-aware oracle admits only the "
                "load whose bursts still drain\nwithin the SLO. "
                "The tail-aware fleet is larger and the GPU "
                "designs'\nTCO advantage over CPU-only shrinks "
                "but does not disappear.\n\n");
    return 0;
}
