/**
 * @file
 * Ablation (extension beyond the paper): all seven Tonic services
 * co-located on one DjiNN GPU server via MPS - the deployment the
 * paper's "open Brain" vision implies - versus each service
 * running alone. Reports per-service throughput retention.
 *
 * With `--policy rr|jsq|po2|jsq-d|po2-d` the same co-located mix
 * is instead replayed at cluster scale: a small fleet of DjiNN
 * servers behind the chosen front-end routing policy serves an
 * open-loop trace of the full suite, showing how the single-server
 * consolidation story composes with cluster-level placement.
 *
 * With `--frontier [--json]` the cluster replay sweeps offered
 * load and compares three node-local dispatch policies (DESIGN.md
 * §16) on the throughput-vs-SLO frontier: batch-only (SLO-driven
 * adaptive batch sizing), mt-only (weighted fair sharing across
 * tenants with static tuned batches), and hybrid (both). Each
 * (policy, load) point reports goodput, p95/p99 latency, and the
 * shed fraction; the text mode ends with the count of load points
 * where hybrid weakly dominates both baselines (goodput no lower
 * AND p95 no higher). Fully deterministic: the same flags print
 * byte-identical output, which scripts/check_build.sh relies on.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

/** The cluster-scale replay behind --policy. */
int
replayThroughPolicy(const char *policy_name)
{
    cluster::RoutePolicy policy =
        cluster::routePolicyFromName(policy_name);
    banner("Ablation",
           "Co-located Tonic mix replayed at cluster scale");

    cluster::ClusterConfig config;
    config.nodeCount = 4;
    config.node.gpus = 1;
    config.policy = policy;
    config.deadlineSeconds = 0.250;
    config.sampleInterval = 0.0;
    config.seed = 23;

    cluster::WorkloadSpec workload;
    workload.apps = serve::allApps();
    workload.process = cluster::ArrivalProcess::Mmpp;
    workload.meanRate = 2500.0;
    workload.durationSeconds = 20.0;
    workload.seed = 23;

    cluster::ClusterResult result = cluster::runClusterSim(
        config, cluster::generateTrace(workload));

    std::printf("%d nodes, policy %s, %s arrivals at %.0f qps, "
                "SLO %.0f ms\n\n",
                config.nodeCount,
                cluster::routePolicyName(policy),
                cluster::arrivalProcessName(workload.process),
                workload.meanRate, 1e3 * config.deadlineSeconds);
    row({"App", "offered", "served", "p50 ms", "p99 ms"});
    for (const cluster::AppClusterStats &app : result.apps) {
        row({serve::appName(app.app),
             num(static_cast<double>(app.offered), 0),
             num(static_cast<double>(app.completed), 0),
             num(1e3 * app.latency.p50, 1),
             num(1e3 * app.latency.p99, 1)});
    }
    std::printf("\ncluster goodput %.0f qps, shed %.1f%%, "
                "p99 %.1f ms, occupancy %.2f\n\n",
                result.throughputQps,
                100.0 * result.lostFraction(),
                1e3 * result.latency.p99, result.occupancy);
    return 0;
}

/** One (policy, load) point on the frontier. */
struct FrontierPoint {
    double rate = 0.0;
    double goodputQps = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double shedFraction = 0.0;
};

/** Run one dispatch policy across the load sweep. */
std::vector<FrontierPoint>
frontierSweep(bool adaptive, bool fair,
              const std::vector<double> &rates)
{
    std::vector<FrontierPoint> points;
    for (double rate : rates) {
        cluster::ClusterConfig config;
        config.nodeCount = 4;
        config.node.gpus = 1;
        config.policy = cluster::RoutePolicy::JoinShortestQueue;
        config.deadlineSeconds = 0.250;
        config.node.sloSeconds = config.deadlineSeconds;
        config.node.adaptiveBatch = adaptive;
        config.node.fairShare = fair;
        if (fair) {
            // The latency-critical heavies get their own tenants;
            // the five lighter services share the default tenant.
            config.node.tenantWeights["IMC"] = 4.0;
            config.node.tenantWeights["ASR"] = 2.0;
        }
        config.sampleInterval = 0.0;
        config.seed = 23;

        cluster::WorkloadSpec workload;
        workload.apps = serve::allApps();
        workload.process = cluster::ArrivalProcess::Mmpp;
        workload.meanRate = rate;
        workload.durationSeconds = 20.0;
        workload.seed = 23;

        cluster::ClusterResult result = cluster::runClusterSim(
            config, cluster::generateTrace(workload));

        FrontierPoint point;
        point.rate = rate;
        point.goodputQps = result.throughputQps;
        point.p95Ms = 1e3 * result.latency.p95;
        point.p99Ms = 1e3 * result.latency.p99;
        point.shedFraction = result.lostFraction();
        points.push_back(point);
    }
    return points;
}

/** The throughput-vs-SLO frontier behind --frontier. */
int
runFrontier(bool json)
{
    const std::vector<double> rates = {1000.0, 2000.0, 2500.0,
                                       3200.0};
    struct Policy {
        const char *name;
        bool adaptive;
        bool fair;
    };
    const Policy policies[] = {
        {"batch-only", true, false},
        {"mt-only", false, true},
        {"hybrid", true, true},
    };

    std::vector<std::vector<FrontierPoint>> sweeps;
    for (const Policy &policy : policies)
        sweeps.push_back(frontierSweep(policy.adaptive,
                                       policy.fair, rates));

    if (json) {
        std::printf("{\"frontier\": [\n");
        bool first = true;
        for (size_t p = 0; p < sweeps.size(); ++p) {
            for (const FrontierPoint &point : sweeps[p]) {
                std::printf("%s  {\"policy\": \"%s\", "
                            "\"offered_qps\": %.6g, "
                            "\"goodput_qps\": %.6g, "
                            "\"p95_ms\": %.6g, "
                            "\"p99_ms\": %.6g, "
                            "\"shed_fraction\": %.6g}",
                            first ? "" : ",\n", policies[p].name,
                            point.rate, point.goodputQps,
                            point.p95Ms, point.p99Ms,
                            point.shedFraction);
                first = false;
            }
        }
        std::printf("\n]}\n");
        return 0;
    }

    banner("Ablation", "Throughput-vs-SLO frontier: adaptive "
                       "batching x multi-tenancy");
    std::printf("4 nodes, jsq routing, mmpp arrivals over the full "
                "Tonic mix, SLO 250 ms\ntenants under fair share: "
                "IMC weight 4, ASR weight 2, rest shared at 1\n\n");
    row({"policy", "offered", "goodput", "p95 ms", "p99 ms",
         "shed %"});
    for (size_t p = 0; p < sweeps.size(); ++p) {
        for (const FrontierPoint &point : sweeps[p]) {
            row({policies[p].name, num(point.rate, 0),
                 num(point.goodputQps, 0), num(point.p95Ms, 1),
                 num(point.p99Ms, 1),
                 num(100.0 * point.shedFraction, 2)});
        }
    }

    // Weak dominance: hybrid serves no less AND its p95 is no
    // higher than each baseline at the same offered load.
    int dominated = 0;
    for (size_t i = 0; i < rates.size(); ++i) {
        const FrontierPoint &hybrid = sweeps[2][i];
        bool dominates = true;
        for (size_t p = 0; p < 2; ++p) {
            const FrontierPoint &base = sweeps[p][i];
            if (hybrid.goodputQps < base.goodputQps ||
                hybrid.p95Ms > base.p95Ms)
                dominates = false;
        }
        dominated += dominates ? 1 : 0;
    }
    std::printf("\nhybrid weakly dominates both baselines at %d of "
                "%zu load points\n\n",
                dominated, rates.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--policy") == 0)
        return replayThroughPolicy(argv[2]);
    if (argc >= 2 && std::strcmp(argv[1], "--frontier") == 0) {
        bool json =
            argc == 3 && std::strcmp(argv[2], "--json") == 0;
        if (argc > 2 && !json)
            return 2;
        return runFrontier(json);
    }
    if (argc != 1) {
        std::fprintf(stderr, "usage: %s [--policy "
                             "rr|jsq|po2|jsq-d|po2-d] "
                             "[--frontier [--json]]\n",
                     argv[0]);
        return 2;
    }

    banner("Ablation",
           "Co-locating all seven services on one GPU (MPS)");

    serve::SimConfig config;
    config.gpuCount = 1;

    // Solo capacities: each app alone with one instance.
    std::vector<double> solo;
    for (serve::App app : serve::allApps()) {
        std::vector<serve::TenantConfig> tenant{
            {app, serve::appSpec(app).tunedBatch, 1}};
        solo.push_back(serve::runMixedSim(config, tenant)
                           .tenants[0].throughputQps);
    }

    // All seven sharing the GPU, one instance each.
    std::vector<serve::TenantConfig> tenants;
    for (serve::App app : serve::allApps())
        tenants.push_back({app, serve::appSpec(app).tunedBatch, 1});
    auto shared = serve::runMixedSim(config, tenants);

    row({"App", "solo QPS", "shared QPS", "retention"});
    for (size_t i = 0; i < shared.tenants.size(); ++i) {
        const auto &tenant = shared.tenants[i];
        row({serve::appName(tenant.app), eng(solo[i]),
             eng(tenant.throughputQps),
             num(100.0 * tenant.throughputQps /
                 std::max(solo[i], 1e-9), 0) + "%"});
    }
    std::printf("\nGPU utilization while consolidated: %.2f\n",
                shared.gpuUtilization);
    std::printf("\nTakeaway: a single DjiNN GPU can host the whole "
                "suite - with 7 tenants a\nfair share would be 14%% "
                "of solo throughput, but MPS interleaving lets\n"
                "every service keep 17-35%%, and the GPU runs "
                "fully utilized.\n\n");
    return 0;
}
