/**
 * @file
 * Ablation (extension beyond the paper): all seven Tonic services
 * co-located on one DjiNN GPU server via MPS - the deployment the
 * paper's "open Brain" vision implies - versus each service
 * running alone. Reports per-service throughput retention.
 *
 * With `--policy rr|jsq|po2|jsq-d|po2-d` the same co-located mix
 * is instead replayed at cluster scale: a small fleet of DjiNN
 * servers behind the chosen front-end routing policy serves an
 * open-loop trace of the full suite, showing how the single-server
 * consolidation story composes with cluster-level placement.
 */

#include <cstring>

#include "bench_util.hh"
#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

/** The cluster-scale replay behind --policy. */
int
replayThroughPolicy(const char *policy_name)
{
    cluster::RoutePolicy policy =
        cluster::routePolicyFromName(policy_name);
    banner("Ablation",
           "Co-located Tonic mix replayed at cluster scale");

    cluster::ClusterConfig config;
    config.nodeCount = 4;
    config.node.gpus = 1;
    config.policy = policy;
    config.deadlineSeconds = 0.250;
    config.sampleInterval = 0.0;
    config.seed = 23;

    cluster::WorkloadSpec workload;
    workload.apps = serve::allApps();
    workload.process = cluster::ArrivalProcess::Mmpp;
    workload.meanRate = 2500.0;
    workload.durationSeconds = 20.0;
    workload.seed = 23;

    cluster::ClusterResult result = cluster::runClusterSim(
        config, cluster::generateTrace(workload));

    std::printf("%d nodes, policy %s, %s arrivals at %.0f qps, "
                "SLO %.0f ms\n\n",
                config.nodeCount,
                cluster::routePolicyName(policy),
                cluster::arrivalProcessName(workload.process),
                workload.meanRate, 1e3 * config.deadlineSeconds);
    row({"App", "offered", "served", "p50 ms", "p99 ms"});
    for (const cluster::AppClusterStats &app : result.apps) {
        row({serve::appName(app.app),
             num(static_cast<double>(app.offered), 0),
             num(static_cast<double>(app.completed), 0),
             num(1e3 * app.latency.p50, 1),
             num(1e3 * app.latency.p99, 1)});
    }
    std::printf("\ncluster goodput %.0f qps, shed %.1f%%, "
                "p99 %.1f ms, occupancy %.2f\n\n",
                result.throughputQps,
                100.0 * result.lostFraction(),
                1e3 * result.latency.p99, result.occupancy);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--policy") == 0)
        return replayThroughPolicy(argv[2]);
    if (argc != 1) {
        std::fprintf(stderr, "usage: %s [--policy "
                             "rr|jsq|po2|jsq-d|po2-d]\n",
                     argv[0]);
        return 2;
    }

    banner("Ablation",
           "Co-locating all seven services on one GPU (MPS)");

    serve::SimConfig config;
    config.gpuCount = 1;

    // Solo capacities: each app alone with one instance.
    std::vector<double> solo;
    for (serve::App app : serve::allApps()) {
        std::vector<serve::TenantConfig> tenant{
            {app, serve::appSpec(app).tunedBatch, 1}};
        solo.push_back(serve::runMixedSim(config, tenant)
                           .tenants[0].throughputQps);
    }

    // All seven sharing the GPU, one instance each.
    std::vector<serve::TenantConfig> tenants;
    for (serve::App app : serve::allApps())
        tenants.push_back({app, serve::appSpec(app).tunedBatch, 1});
    auto shared = serve::runMixedSim(config, tenants);

    row({"App", "solo QPS", "shared QPS", "retention"});
    for (size_t i = 0; i < shared.tenants.size(); ++i) {
        const auto &tenant = shared.tenants[i];
        row({serve::appName(tenant.app), eng(solo[i]),
             eng(tenant.throughputQps),
             num(100.0 * tenant.throughputQps /
                 std::max(solo[i], 1e-9), 0) + "%"});
    }
    std::printf("\nGPU utilization while consolidated: %.2f\n",
                shared.gpuUtilization);
    std::printf("\nTakeaway: a single DjiNN GPU can host the whole "
                "suite - with 7 tenants a\nfair share would be 14%% "
                "of solo throughput, but MPS interleaving lets\n"
                "every service keep 17-35%%, and the GPU runs "
                "fully utilized.\n\n");
    return 0;
}
