/**
 * @file
 * Ablation (extension beyond the paper): all seven Tonic services
 * co-located on one DjiNN GPU server via MPS - the deployment the
 * paper's "open Brain" vision implies - versus each service
 * running alone. Reports per-service throughput retention.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Ablation",
           "Co-locating all seven services on one GPU (MPS)");

    serve::SimConfig config;
    config.gpuCount = 1;

    // Solo capacities: each app alone with one instance.
    std::vector<double> solo;
    for (serve::App app : serve::allApps()) {
        std::vector<serve::TenantConfig> tenant{
            {app, serve::appSpec(app).tunedBatch, 1}};
        solo.push_back(serve::runMixedSim(config, tenant)
                           .tenants[0].throughputQps);
    }

    // All seven sharing the GPU, one instance each.
    std::vector<serve::TenantConfig> tenants;
    for (serve::App app : serve::allApps())
        tenants.push_back({app, serve::appSpec(app).tunedBatch, 1});
    auto shared = serve::runMixedSim(config, tenants);

    row({"App", "solo QPS", "shared QPS", "retention"});
    for (size_t i = 0; i < shared.tenants.size(); ++i) {
        const auto &tenant = shared.tenants[i];
        row({serve::appName(tenant.app), eng(solo[i]),
             eng(tenant.throughputQps),
             num(100.0 * tenant.throughputQps /
                 std::max(solo[i], 1e-9), 0) + "%"});
    }
    std::printf("\nGPU utilization while consolidated: %.2f\n",
                shared.gpuUtilization);
    std::printf("\nTakeaway: a single DjiNN GPU can host the whole "
                "suite - with 7 tenants a\nfair share would be 14%% "
                "of solo throughput, but MPS interleaving lets\n"
                "every service keep 17-35%%, and the GPU runs "
                "fully utilized.\n\n");
    return 0;
}
