/**
 * @file
 * Ablation (extension beyond the paper): open-loop tail latency.
 * The paper measures closed-loop peak throughput; production
 * serving cares about p99 at a target load. Sweeps offered load as
 * a fraction of each app's measured capacity and reports the
 * latency distribution.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Ablation",
           "Open-loop tail latency vs offered load "
           "(tuned batch, 4 MPS instances)");
    const double loads[] = {0.3, 0.5, 0.7, 0.9, 0.98};

    std::vector<std::string> head{"App", "Metric"};
    for (double l : loads)
        head.push_back(num(l * 100, 0) + "%");
    row(head, 11);

    for (serve::App app : {serve::App::IMC, serve::App::ASR,
                           serve::App::POS}) {
        serve::SimConfig base;
        base.app = app;
        base.batch = serve::appSpec(app).tunedBatch;
        base.instancesPerGpu = 4;
        double capacity = serve::runServingSim(base).throughputQps;

        std::vector<std::string> p50{serve::appName(app),
                                     "p50(ms)"};
        std::vector<std::string> p99{serve::appName(app),
                                     "p99(ms)"};
        for (double load : loads) {
            serve::SimConfig config = base;
            config.loadMode = serve::LoadMode::Open;
            config.arrivalRate = load * capacity;
            config.measureTime = 2.0;
            auto result = serve::runServingSim(config);
            p50.push_back(num(result.medianLatency * 1e3, 2));
            p99.push_back(num(result.p99Latency * 1e3, 2));
        }
        row(p50, 11);
        row(p99, 11);
    }
    std::printf("\nTakeaway: batching trades tail latency for "
                "throughput - under open-loop\nload the p99 of a "
                "batched service grows long before capacity is "
                "reached,\nbecause a query can wait for its batch "
                "to fill and then for the GPU.\n\n");
    return 0;
}
