/**
 * @file
 * Google-benchmark microbenchmarks for the service machinery: wire
 * protocol encode/decode, the batching executor, and the
 * discrete-event queue that powers the serving simulator.
 */

#include <benchmark/benchmark.h>

#include "core/batcher.hh"
#include "core/protocol.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "sim/event_queue.hh"

using namespace djinn;

namespace {

void
BM_EncodeRequest(benchmark::State &state)
{
    core::Request request;
    request.type = core::RequestType::Inference;
    request.model = "senna_pos";
    request.rows = 28;
    request.payload.assign(28 * 250, 0.5f);
    for (auto _ : state) {
        auto bytes = core::encodeRequest(request);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(request.payload.size() * 4));
}

BENCHMARK(BM_EncodeRequest)->Unit(benchmark::kMicrosecond);

void
BM_DecodeRequest(benchmark::State &state)
{
    core::Request request;
    request.type = core::RequestType::Inference;
    request.model = "senna_pos";
    request.rows = 28;
    request.payload.assign(28 * 250, 0.5f);
    auto bytes = core::encodeRequest(request);
    for (auto _ : state) {
        auto decoded = core::decodeRequest(bytes);
        benchmark::DoNotOptimize(&decoded);
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(bytes.size()));
}

BENCHMARK(BM_DecodeRequest)->Unit(benchmark::kMicrosecond);

void
BM_BatcherThroughput(benchmark::State &state)
{
    core::ModelRegistry registry;
    auto net = nn::parseNetDefOrDie(
        "name tiny\ninput 1 4 4\nlayer fc fc out 8\n");
    nn::initializeWeights(*net, 3);
    (void)registry.add(std::move(net));
    core::BatchOptions options;
    options.maxQueries = static_cast<int64_t>(state.range(0));
    options.maxDelay = 100e-6;
    core::BatchingExecutor executor(registry, options);

    std::vector<float> payload(16, 0.5f);
    for (auto _ : state) {
        auto future = executor.submit("tiny", 1, payload);
        benchmark::DoNotOptimize(future.get());
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_BatcherThroughput)
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.scheduleAt(static_cast<double>(i % 37),
                          [&fired]() { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
