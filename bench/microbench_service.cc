/**
 * @file
 * Google-benchmark microbenchmarks for the service machinery: wire
 * protocol encode/decode, the batching executor, the telemetry hot
 * path (histogram record, registry lookup, trace spans), and the
 * discrete-event queue that powers the serving simulator.
 *
 * After the benchmarks run, a short live-service session (real TCP
 * server + clients, batching on), one serving-simulator
 * experiment, and a per-layer forward profile of every zoo model
 * (wall time, FLOPs, and activation bytes per layer, via
 * nn::ProfileSink) are recorded into a telemetry registry, and the
 * merged snapshot is printed as JSON — the format BENCH_*.json
 * trajectories capture.
 */

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/batcher.hh"
#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "core/perf_sink.hh"
#include "core/protocol.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/profile.hh"
#include "nn/zoo.hh"
#include "serve/telemetry.hh"
#include "sim/event_queue.hh"
#include "telemetry/exposition.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/trace.hh"

using namespace djinn;

namespace {

void
BM_EncodeRequest(benchmark::State &state)
{
    core::Request request;
    request.type = core::RequestType::Inference;
    request.model = "senna_pos";
    request.rows = 28;
    request.payload.assign(28 * 250, 0.5f);
    for (auto _ : state) {
        auto bytes = core::encodeRequest(request);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(request.payload.size() * 4));
}

BENCHMARK(BM_EncodeRequest)->Unit(benchmark::kMicrosecond);

void
BM_DecodeRequest(benchmark::State &state)
{
    core::Request request;
    request.type = core::RequestType::Inference;
    request.model = "senna_pos";
    request.rows = 28;
    request.payload.assign(28 * 250, 0.5f);
    auto bytes = core::encodeRequest(request);
    for (auto _ : state) {
        auto decoded = core::decodeRequest(bytes);
        benchmark::DoNotOptimize(&decoded);
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(bytes.size()));
}

BENCHMARK(BM_DecodeRequest)->Unit(benchmark::kMicrosecond);

void
BM_BatcherThroughput(benchmark::State &state)
{
    core::ModelRegistry registry;
    auto net = nn::parseNetDefOrDie(
        "name tiny\ninput 1 4 4\nlayer fc fc out 8\n");
    nn::initializeWeights(*net, 3);
    (void)registry.add(std::move(net));
    core::BatchOptions options;
    options.maxQueries = static_cast<int64_t>(state.range(0));
    options.maxDelay = 100e-6;
    core::BatchingExecutor executor(registry, options);

    std::vector<float> payload(16, 0.5f);
    for (auto _ : state) {
        auto future = executor.submit("tiny", 1, payload);
        benchmark::DoNotOptimize(future.get());
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_BatcherThroughput)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void
BM_FlightRecorderRecord(benchmark::State &state)
{
    // Per-request cost of the always-on flight recorder (ring
    // publish + reservoir threshold check): must stay far below 1%
    // of even a trivial request's service time.
    telemetry::FlightRecorder recorder(4096, 256);
    telemetry::FlightRecord record;
    record.setModel("tiny");
    record.forwardSeconds = 50e-6;
    uint64_t i = 0;
    for (auto _ : state) {
        record.traceId = ++i;
        record.totalSeconds = 1e-4 + 1e-9 * double(i % 1000);
        benchmark::DoNotOptimize(recorder.record(record));
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_FlightRecorderRecord);

void
BM_HistogramRecordWithExemplar(benchmark::State &state)
{
    telemetry::HistogramOptions options;
    options.exemplars = true;
    telemetry::LogHistogram hist(options);
    double v = 1e-6;
    uint64_t i = 0;
    for (auto _ : state) {
        hist.record(v, ++i, i);
        v = v < 1.0 ? v * 1.7 : 1e-6;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_HistogramRecordWithExemplar);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.scheduleAt(static_cast<double>(i % 37),
                          [&fired]() { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMicrosecond);

void
BM_HistogramRecord(benchmark::State &state)
{
    telemetry::LogHistogram hist;
    double v = 1e-6;
    for (auto _ : state) {
        hist.record(v);
        v = v < 1.0 ? v * 1.7 : 1e-6;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_HistogramRecord);

void
BM_RegistryCounterHot(benchmark::State &state)
{
    telemetry::MetricRegistry registry;
    // The hot path caches the reference; only the first call pays
    // the lookup mutex.
    telemetry::Counter &counter =
        registry.counter("bench_total", {{"model", "tiny"}});
    for (auto _ : state)
        counter.inc();
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RegistryCounterHot);

void
BM_RegistryCounterLookup(benchmark::State &state)
{
    telemetry::MetricRegistry registry;
    for (auto _ : state)
        registry.counter("bench_total", {{"model", "tiny"}}).inc();
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RegistryCounterLookup);

void
BM_TraceSpan(benchmark::State &state)
{
    telemetry::MetricRegistry registry;
    telemetry::RequestTrace trace(registry, "tiny");
    for (auto _ : state) {
        auto span = trace.span(telemetry::Phase::Forward);
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TraceSpan);

/**
 * Drive a real loopback DjiNN server with batching on, then return
 * its telemetry snapshot: per-model counters plus decode /
 * queue-wait / forward / encode histograms.
 */
std::vector<telemetry::MetricSample>
liveServiceSnapshot()
{
    core::ModelRegistry registry;
    auto net = nn::parseNetDefOrDie(
        "name tiny\ninput 1 4 4\nlayer fc fc out 8\n");
    nn::initializeWeights(*net, 3);
    (void)registry.add(std::move(net));

    core::ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 8;
    config.batchOptions.maxDelay = 200e-6;
    core::DjinnServer server(registry, config);
    if (!server.start().isOk())
        return {};

    constexpr int threads = 4;
    constexpr int per_thread = 64;
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&server]() {
            core::DjinnClient client;
            if (!client.connect("127.0.0.1", server.port()).isOk())
                return;
            std::vector<float> payload(16, 0.5f);
            for (int i = 0; i < per_thread; ++i)
                (void)client.infer("tiny", 1, payload);
        });
    }
    for (auto &c : clients)
        c.join();
    server.stop();
    return server.metrics().snapshot();
}

/**
 * One profiled single-row forward pass per zoo model, recorded as
 * per-layer gauges: djinn_layer_forward_seconds, djinn_layer_flops,
 * and djinn_layer_activation_bytes, labeled {model, layer, kind}.
 * With hardware counters available the cycle-accounting columns
 * ride along — djinn_layer_cycles always (wall nanoseconds in the
 * clock-only fallback, like djinn_phase_cycles), plus
 * djinn_layer_instructions and djinn_layer_ipc when real.
 */
void
recordZooLayerProfiles(telemetry::MetricRegistry &registry)
{
    registry.gauge(telemetry::perfAvailableMetricName)
        .set(telemetry::perfCountersAvailable() ? 1.0 : 0.0);
    for (nn::zoo::Model model : nn::zoo::allModels()) {
        nn::NetworkPtr net = nn::zoo::build(model, 42);
        nn::Tensor input(net->inputShape().withBatch(1));
        for (int64_t i = 0; i < input.elems(); ++i)
            input.data()[i] = 0.25f;

        core::CountingProfileSink sink;
        (void)net->forward(input, &sink);

        const std::string name = nn::zoo::modelName(model);
        for (size_t i = 0; i < sink.profiles().size(); ++i) {
            const nn::LayerProfile &p = sink.profiles()[i];
            telemetry::LabelMap labels{
                {"model", name},
                {"layer", p.name},
                {"kind", nn::layerKindName(p.kind)}};
            registry.gauge("djinn_layer_forward_seconds", labels)
                .set(p.seconds);
            registry.gauge("djinn_layer_flops", labels)
                .set(static_cast<double>(p.flops));
            registry.gauge("djinn_layer_activation_bytes", labels)
                .set(static_cast<double>(p.activationBytes));
            if (i >= sink.deltas().size())
                continue;
            const telemetry::CounterDelta &d = sink.deltas()[i];
            registry.gauge("djinn_layer_cycles", labels)
                .set(static_cast<double>(d.work()));
            if (d.hardware) {
                registry.gauge("djinn_layer_instructions", labels)
                    .set(static_cast<double>(d.instructions));
                registry.gauge("djinn_layer_ipc", labels)
                    .set(d.ipc());
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Registry snapshot emission: live service path + one simulated
    // experiment, merged into one JSON document on stdout.
    std::vector<telemetry::MetricSample> samples =
        liveServiceSnapshot();

    telemetry::MetricRegistry sim_registry;
    serve::SimConfig sim;
    sim.batch = 16;
    sim.warmupTime = 0.05;
    sim.measureTime = 0.25;
    serve::recordSimResult(sim_registry, "batch=16,1gpu", sim,
                           serve::runServingSim(sim));
    for (auto &sample : sim_registry.snapshot())
        samples.push_back(std::move(sample));

    telemetry::MetricRegistry layer_registry;
    recordZooLayerProfiles(layer_registry);
    for (auto &sample : layer_registry.snapshot())
        samples.push_back(std::move(sample));

    std::fputs(telemetry::renderJson(samples).c_str(), stdout);
    return 0;
}
