/**
 * @file
 * Regenerates paper Table 1: the Tonic Suite neural network
 * architectures with their network types, layer counts, and
 * parameter counts.
 */

#include "bench_util.hh"
#include "nn/net_def.hh"
#include "nn/zoo.hh"
#include "serve/app.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Table 1", "Tonic Suite neural network architectures");
    row({"App", "Network", "Type", "Layers", "Params"});

    struct Entry {
        serve::App app;
        const char *type;
    };
    const Entry entries[] = {
        {serve::App::IMC, "CNN"},  {serve::App::DIG, "CNN"},
        {serve::App::FACE, "CNN"}, {serve::App::ASR, "DNN"},
        {serve::App::POS, "DNN"},  {serve::App::CHK, "DNN"},
        {serve::App::NER, "DNN"},
    };

    for (const Entry &entry : entries) {
        const auto &spec = serve::appSpec(entry.app);
        auto net = nn::parseNetDefOrDie(nn::zoo::netDef(spec.model));
        row({spec.name, nn::zoo::modelName(spec.model), entry.type,
             std::to_string(net->layerCount()),
             eng(static_cast<double>(net->paramCount()))});
    }

    std::printf("\nPaper Table 1 reference: IMC alexnet CNN 22/60M, "
                "DIG mnist CNN 7/60K,\nFACE deepface CNN 8/120M, "
                "ASR kaldi DNN 13/30M, POS/CHK/NER senna DNN "
                "3/180K\n\n");
    return 0;
}
