/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: a
 * fixed-width row printer and the standard experiment knobs.
 */

#ifndef DJINN_BENCH_BENCH_UTIL_HH
#define DJINN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

namespace djinn {
namespace bench {

/** Print a banner naming the experiment being regenerated. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("==============================================="
                "=================\n");
}

/** Print a row of cells at a fixed column width. */
inline void
row(const std::vector<std::string> &cells, int width = 12)
{
    for (const auto &cell : cells)
        std::printf("%*s", width, cell.c_str());
    std::printf("\n");
}

/** Format a double with the given precision. */
inline std::string
num(double value, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

/** Format a value in engineering style (K/M/G). */
inline std::string
eng(double value, int precision = 1)
{
    char buf[64];
    if (value >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.*fG", precision,
                      value / 1e9);
    } else if (value >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.*fM", precision,
                      value / 1e6);
    } else if (value >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.*fK", precision,
                      value / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    }
    return buf;
}

} // namespace bench
} // namespace djinn

#endif // DJINN_BENCH_BENCH_UTIL_HH
