/**
 * @file
 * Regenerates paper Figure 16: the performance and TCO impact of
 * future interconnect/network technologies (Table 6) on
 * GPU-enabled WSCs for the MIXED and NLP workloads. For each
 * network design point we report the throughput unlocked on fixed
 * disaggregated hardware, then grow every design to match it and
 * break its TCO into components.
 */

#include "bench_util.hh"
#include "wsc/designs.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

void
reportDesign(const char *label, const wsc::TcoBreakdown &tco,
             double baseline_total)
{
    row({label, num(tco.servers / baseline_total, 2),
         num(tco.gpus / baseline_total, 2),
         num(tco.network / baseline_total, 2),
         num(tco.facility / baseline_total, 2),
         num((tco.power + tco.operations) / baseline_total, 2),
         num(tco.total() / baseline_total, 2)});
}

} // namespace

int
main()
{
    for (wsc::Mix mix : {wsc::Mix::Mixed, wsc::Mix::Nlp}) {
        banner("Figure 16",
               (std::string("Future networks, 100% ") +
                wsc::mixName(mix) +
                " workload (TCO components normalized to baseline "
                "disaggregated total)").c_str());

        wsc::DesignConfig baseline;
        double baseline_total = wsc::provision(
            wsc::Design::DisaggregatedGpu, mix, 1.0,
            baseline).tco.total();

        for (const auto &network : wsc::allNetworkConfigs()) {
            double gain = wsc::networkPerformanceGain(
                mix, network, baseline);
            std::printf("\n-- %s: performance improvement %.2fx\n",
                        network.name.c_str(), gain);
            row({"design", "servers", "gpus", "network", "facility",
                 "pwr+ops", "total"});

            // CPU-only keeps the baseline network (upgrading it
            // barely helps CPUs); it simply scales out.
            wsc::DesignConfig cpu_config;
            cpu_config.perfMultiplier = gain;
            reportDesign("CPU-only",
                         wsc::provision(wsc::Design::CpuOnly, mix,
                                        1.0, cpu_config).tco,
                         baseline_total);

            wsc::DesignConfig gpu_config;
            gpu_config.network = network;
            gpu_config.perfMultiplier = gain;
            reportDesign("Integrated",
                         wsc::provision(wsc::Design::IntegratedGpu,
                                        mix, 1.0, gpu_config).tco,
                         baseline_total);
            reportDesign(
                "Disagg",
                wsc::provision(wsc::Design::DisaggregatedGpu, mix,
                               1.0, gpu_config).tco,
                baseline_total);
        }
        std::printf("\n");
    }
    std::printf("Paper shape: better networks unlock large NLP "
                "gains (up to ~4.5x) at\nmodest TCO growth; "
                "disaggregated TCO growth concentrates in the "
                "network\ncomponent; CPU-only must scale servers "
                "in proportion to the target.\n\n");
    return 0;
}
