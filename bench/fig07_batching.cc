/**
 * @file
 * Regenerates paper Figure 7: (a) throughput, (b) GPU occupancy,
 * and (c) query latency as the input batch size grows, per
 * application.
 */

#include "bench_util.hh"
#include "gpu/gpu_model.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

namespace {

const int64_t batches[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

std::vector<std::string>
header()
{
    std::vector<std::string> cells{"App"};
    for (int64_t b : batches)
        cells.push_back("b" + std::to_string(b));
    return cells;
}

} // namespace

int
main()
{
    banner("Figure 7a", "Throughput (QPS) vs batch size");
    row(header(), 10);
    for (serve::App app : serve::allApps()) {
        std::vector<std::string> cells{serve::appName(app)};
        for (int64_t batch : batches) {
            serve::SimConfig config;
            config.app = app;
            config.batch = batch;
            // Big batches run for seconds each; widen the window so
            // enough of them complete to measure.
            config.measureTime =
                std::max(1.0, 0.25 * static_cast<double>(batch));
            cells.push_back(
                eng(serve::runServingSim(config).throughputQps));
        }
        row(cells, 10);
    }

    banner("Figure 7b", "GPU occupancy vs batch size");
    row(header(), 10);
    gpu::GpuSpec spec;
    for (serve::App app : serve::allApps()) {
        const auto &as = serve::appSpec(app);
        const nn::Network &net = serve::sharedNetwork(as.model);
        std::vector<std::string> cells{as.name};
        for (int64_t batch : batches) {
            auto cost = perf::analyzeNetwork(
                net, batch * as.samplesPerQuery);
            cells.push_back(
                num(gpu::profileForward(cost, spec).occupancy, 2));
        }
        row(cells, 10);
    }

    banner("Figure 7c", "Query latency (ms) vs batch size");
    row(header(), 10);
    for (serve::App app : serve::allApps()) {
        std::vector<std::string> cells{serve::appName(app)};
        for (int64_t batch : batches) {
            serve::SimConfig config;
            config.app = app;
            config.batch = batch;
            config.measureTime =
                std::max(1.0, 0.25 * static_cast<double>(batch));
            cells.push_back(num(
                serve::runServingSim(config).meanLatency * 1e3,
                2));
        }
        row(cells, 10);
    }

    std::printf("\nPaper shape: throughput rises then plateaus "
                "(knee differs per app; NLP\ngains >15x, IMC ~5x, "
                "ASR/FACE little); occupancy rises with batch "
                "(NLP\n20%% -> 80%%+ at 64); latency grows slowly, "
                "then sharply past the knee.\n\n");
    return 0;
}
