/**
 * @file
 * Regenerates paper Figure 4: single-core CPU cycle breakdown of
 * each application between its DNN portion and pre/post-processing.
 */

#include "bench_util.hh"
#include "serve/simulation.hh"
#include "wsc/capacity.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 4", "Cycle breakdown for each DNN application "
                       "(Xeon core)");
    row({"App", "DNN(s)", "Pre(s)", "Post(s)", "DNN%"});
    for (serve::App app : serve::allApps()) {
        const auto &spec = serve::appSpec(app);
        wsc::CpuCapacity cpu = wsc::cpuCapacity(app);
        double pre = cpu.dnnTime * spec.preprocFraction;
        double post = cpu.dnnTime * spec.postprocFraction;
        row({spec.name, num(cpu.dnnTime, 4), num(pre, 4),
             num(post, 4), num(100.0 * spec.dnnFraction(), 1)});
    }
    std::printf("\nPaper shape: image tasks ~all DNN; ASR roughly "
                "half DNN; NLP more than\ntwo-thirds DNN.\n\n");
    return 0;
}
