/**
 * @file
 * Regenerates paper Figure 6: per-application GPU performance
 * counters at batch 1 (IPC/peak, achieved occupancy, L1/shared and
 * L2 utilization), time-weighted across each app's kernels.
 */

#include "bench_util.hh"
#include "gpu/gpu_model.hh"
#include "serve/simulation.hh"

using namespace djinn;
using namespace djinn::bench;

int
main()
{
    banner("Figure 6", "Performance bottleneck analysis (batch 1)");
    row({"App", "IPC/Peak", "Occupancy", "L1util", "L2util"});
    gpu::GpuSpec spec;
    for (serve::App app : serve::allApps()) {
        const auto &as = serve::appSpec(app);
        const nn::Network &net = serve::sharedNetwork(as.model);
        auto cost = perf::analyzeNetwork(net, as.samplesPerQuery);
        auto profile = gpu::profileForward(cost, spec);
        row({as.name, num(profile.ipcRatio, 3),
             num(profile.occupancy, 3),
             num(profile.l1Utilization, 3),
             num(profile.l2Utilization, 3)});
    }
    std::printf("\nPaper shape: IPC/peak low for NLP; all apps low "
                "memory-bandwidth\nutilization; occupancy tracks "
                "IPC, NLP under 20%%, ASR above 90%%.\n\n");
    return 0;
}
