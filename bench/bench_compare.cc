/**
 * @file
 * bench_compare - diff two bench_suite JSON documents and exit
 * nonzero on a perf regression (DESIGN.md §15).
 *
 * Usage:
 *   bench_compare BASELINE.json CANDIDATE.json
 *   bench_compare --self-test
 *
 * Thresholds are direction- and noise-aware, keyed on the sample
 * id's metric family:
 *
 *   djinn_bench_gemm_gflops      higher is better; fail when the
 *                                candidate drops below 50% of the
 *                                baseline (thread scheduling and
 *                                turbo make tighter bounds flaky)
 *   djinn_bench_service_seconds  lower is better; fail when the
 *                                candidate exceeds 1.5x baseline
 *                                plus a 5 ms absolute floor
 *   djinn_bench_cluster_*        virtual-time simulation, bit-
 *                                identical by contract; any
 *                                relative difference above 1e-9
 *                                fails
 *
 * A sample present in the baseline but missing from the candidate
 * is a failure (a silently dropped benchmark is a regression in
 * coverage); candidate-only samples are reported but pass. Exit
 * status: 0 = no regression, 1 = regression, 2 = usage or parse
 * error. --self-test runs built-in synthetic cases (identity must
 * pass; an injected regression per family must fail) and exits
 * nonzero if the comparator misclassifies any.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchSample {
    std::string id;
    double value = 0.0;
};

/**
 * Minimal parser for the bench_suite document: scans for
 * `"id": "..."` / `"value": N` pairs, honoring backslash escapes
 * inside the id string (metric ids contain quoted label values).
 * Returns false on malformed input.
 */
bool
parseBenchJson(const std::string &text,
               std::vector<BenchSample> &out)
{
    if (text.find("\"bench_schema\": 1") == std::string::npos)
        return false;
    const std::string idKey = "\"id\": \"";
    const std::string valueKey = "\"value\": ";
    size_t pos = 0;
    while ((pos = text.find(idKey, pos)) != std::string::npos) {
        pos += idKey.size();
        std::string id;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size())
                ++pos; // keep the escaped character
            id += text[pos++];
        }
        if (pos >= text.size())
            return false;
        size_t vpos = text.find(valueKey, pos);
        if (vpos == std::string::npos)
            return false;
        char *end = nullptr;
        double value =
            std::strtod(text.c_str() + vpos + valueKey.size(), &end);
        if (end == text.c_str() + vpos + valueKey.size())
            return false;
        out.push_back({id, value});
        pos = vpos;
    }
    return true;
}

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

enum class Direction {
    HigherBetter, ///< gemm throughput
    LowerBetter,  ///< service latency
    Exact,        ///< deterministic simulation
};

Direction
directionFor(const std::string &id)
{
    if (id.find("djinn_bench_gemm_gflops") != std::string::npos)
        return Direction::HigherBetter;
    if (id.find("djinn_bench_cluster_latency_seconds") !=
            std::string::npos ||
        id.find("djinn_bench_cluster_shed_fraction") !=
            std::string::npos ||
        id.find("djinn_bench_cluster_throughput_qps") !=
            std::string::npos)
        return Direction::Exact;
    return Direction::LowerBetter;
}

/** True when (oldValue -> newValue) is a regression for @p id. */
bool
isRegression(const std::string &id, double oldValue,
             double newValue, std::string *why)
{
    char buf[256];
    switch (directionFor(id)) {
    case Direction::HigherBetter:
        if (oldValue > 0.0 && newValue < 0.5 * oldValue) {
            std::snprintf(buf, sizeof(buf),
                          "dropped %.3g -> %.3g (< 50%% of "
                          "baseline)",
                          oldValue, newValue);
            *why = buf;
            return true;
        }
        return false;
    case Direction::LowerBetter:
        if (newValue > 1.5 * oldValue + 5e-3) {
            std::snprintf(buf, sizeof(buf),
                          "grew %.3g -> %.3g (> 1.5x baseline "
                          "+ 5ms)",
                          oldValue, newValue);
            *why = buf;
            return true;
        }
        return false;
    case Direction::Exact: {
        double scale = std::fabs(oldValue) > 1.0
                           ? std::fabs(oldValue)
                           : 1.0;
        if (std::fabs(newValue - oldValue) > 1e-9 * scale) {
            std::snprintf(buf, sizeof(buf),
                          "deterministic value changed %.12g -> "
                          "%.12g",
                          oldValue, newValue);
            *why = buf;
            return true;
        }
        return false;
    }
    }
    return false;
}

/** Compare two parsed sample sets; returns the regression count. */
int
compareSamples(const std::vector<BenchSample> &baseline,
               const std::vector<BenchSample> &candidate,
               bool verbose)
{
    int regressions = 0;
    for (const BenchSample &oldSample : baseline) {
        const BenchSample *newSample = nullptr;
        for (const BenchSample &s : candidate) {
            if (s.id == oldSample.id) {
                newSample = &s;
                break;
            }
        }
        if (!newSample) {
            if (verbose)
                std::fprintf(stderr,
                             "REGRESSION %s: missing from "
                             "candidate\n",
                             oldSample.id.c_str());
            ++regressions;
            continue;
        }
        std::string why;
        if (isRegression(oldSample.id, oldSample.value,
                         newSample->value, &why)) {
            if (verbose)
                std::fprintf(stderr, "REGRESSION %s: %s\n",
                             oldSample.id.c_str(), why.c_str());
            ++regressions;
        }
    }
    if (verbose) {
        for (const BenchSample &s : candidate) {
            bool known = false;
            for (const BenchSample &oldSample : baseline)
                if (oldSample.id == s.id) {
                    known = true;
                    break;
                }
            if (!known)
                std::fprintf(stderr, "note: new sample %s\n",
                             s.id.c_str());
        }
    }
    return regressions;
}

/** Synthetic cases proving the comparator catches each regression
 * class and passes identity. Returns 0 when all behave. */
int
selfTest()
{
    const std::vector<BenchSample> baseline{
        {"djinn_bench_gemm_gflops{precision=\"f32\","
         "shape=\"square256\",threads=\"1\"}",
         40.0},
        {"djinn_bench_service_seconds{batch=\"16\",stat=\"p99\"}",
         0.002},
        {"djinn_bench_cluster_latency_seconds{policy=\"rr\","
         "stat=\"p99\"}",
         0.0123456789},
    };
    int failures = 0;
    auto expect = [&](const char *what, bool got, bool want) {
        if (got != want) {
            std::fprintf(stderr, "self-test FAILED: %s\n", what);
            ++failures;
        }
    };

    // Identity must pass.
    expect("identity compare passes",
           compareSamples(baseline, baseline, false) == 0, true);

    // One injected regression per family must fail.
    auto mutate = [&](size_t i, double v) {
        std::vector<BenchSample> out = baseline;
        out[i].value = v;
        return out;
    };
    expect("gemm 70%% drop fails",
           compareSamples(baseline, mutate(0, 12.0), false) == 1,
           true);
    expect("gemm 20%% drop passes",
           compareSamples(baseline, mutate(0, 32.0), false) == 0,
           true);
    expect("service 10x latency fails",
           compareSamples(baseline, mutate(1, 0.02 + 5e-3), false)
               == 1,
           true);
    expect("service small jitter passes",
           compareSamples(baseline, mutate(1, 0.0025), false) == 0,
           true);
    expect("cluster drift fails",
           compareSamples(baseline, mutate(2, 0.0123457289), false)
               == 1,
           true);
    expect("missing sample fails",
           compareSamples(baseline,
                          {baseline.begin(), baseline.end() - 1},
                          false) == 1,
           true);
    if (failures == 0)
        std::fprintf(stderr, "bench_compare self-test: ok\n");
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--self-test") == 0)
        return selfTest() == 0 ? 0 : 1;
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: bench_compare BASELINE.json "
                     "CANDIDATE.json\n"
                     "       bench_compare --self-test\n");
        return 2;
    }

    std::string oldText, newText;
    if (!readFile(argv[1], oldText)) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 2;
    }
    if (!readFile(argv[2], newText)) {
        std::fprintf(stderr, "cannot read %s\n", argv[2]);
        return 2;
    }
    std::vector<BenchSample> baseline, candidate;
    if (!parseBenchJson(oldText, baseline) || baseline.empty()) {
        std::fprintf(stderr, "%s: not a bench_suite document\n",
                     argv[1]);
        return 2;
    }
    if (!parseBenchJson(newText, candidate) || candidate.empty()) {
        std::fprintf(stderr, "%s: not a bench_suite document\n",
                     argv[2]);
        return 2;
    }

    int regressions = compareSamples(baseline, candidate, true);
    if (regressions > 0) {
        std::fprintf(stderr, "bench_compare: %d regression(s)\n",
                     regressions);
        return 1;
    }
    std::fprintf(stderr,
                 "bench_compare: %zu samples, no regressions\n",
                 baseline.size());
    return 0;
}
