#!/bin/sh
# Build, test, and regenerate every paper table and figure.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j "$(nproc)" --output-on-failure \
    2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
echo "done: test_output.txt and bench_output.txt written"
