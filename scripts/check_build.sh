#!/bin/sh
# Tier-1 verification: full configure + build + test, plus source
# lints. Run before every commit.
set -e
cd "$(dirname "$0")/.."

# Lint: ad-hoc instrumentation is not allowed on the service path.
# Timing belongs in src/telemetry (RequestTrace spans / histograms),
# console output in common/logging. strprintf() is fine: the \b
# boundary only matches bare printf-family calls.
bad=$(grep -rnE '\bprintf\(|\bfprintf\(|gettimeofday|clock_gettime' \
    src/core/ || true)
if [ -n "$bad" ]; then
    echo "lint: ad-hoc printf/timing in src/core;" \
         "use src/telemetry instead:" >&2
    echo "$bad" >&2
    exit 1
fi

# Lint: the simulators guarantee bit-identical replays from a
# seed, so wall-clock time and unseeded randomness are banned in
# src/sim and src/cluster (common/rng's seeded generators and the
# event queue's virtual clock are the only time/chance sources).
bad=$(grep -rnE \
    'std::random_device|system_clock|steady_clock|gettimeofday|clock_gettime|\btime\(' \
    src/sim/ src/cluster/ || true)
if [ -n "$bad" ]; then
    echo "lint: wall clock / unseeded randomness in simulator" \
         "sources; use common/rng and sim::EventQueue time:" >&2
    echo "$bad" >&2
    exit 1
fi

# Lint: metric families must be snake_case and registered in the
# committed allowlist, so a rename or a typo'd name breaks the
# build instead of silently orphaning a dashboard. The allowlist
# itself must stay sorted (binary-search friendly, diff stable).
if ! grep -v '^#' scripts/metric_allowlist.txt | sort -c; then
    echo "lint: scripts/metric_allowlist.txt is not sorted" >&2
    exit 1
fi
used=$(grep -rhoE '"djinn_[A-Za-z0-9_]*"' src/ tools/ bench/ \
    | tr -d '"' | sort -u)
listed=$(grep -v '^#' scripts/metric_allowlist.txt | sort -u)
bad=$(printf '%s\n' "$used" | grep -vE '^djinn_[a-z0-9_]+$' || true)
if [ -n "$bad" ]; then
    echo "lint: metric names must be snake_case:" >&2
    echo "$bad" >&2
    exit 1
fi
drift=$(printf '%s\n%s\n' "$used" "$listed" | sort | uniq -u || true)
if [ -n "$drift" ]; then
    echo "lint: metric names out of sync with" \
         "scripts/metric_allowlist.txt:" >&2
    echo "$drift" >&2
    exit 1
fi

cmake -B build -S . && cmake --build build -j && \
    cd build && ctest --output-on-failure -j "$(nproc)"
cd ..

# Smoke test the observability surface: boot a real daemon with the
# HTTP endpoint and let scrape_check validate /healthz, /metrics
# (must parse as Prometheus exposition), /trace, and /profile.
# --profile-hz arms the sampling profiler so the /profile scrape
# exercises the live path (scrape_check accepts 503 where signal
# timers are restricted).
http_port=19164
./build/tools/djinnd --port 19163 --http-port "$http_port" \
    --models mnist --batching --profile-hz 199 &
djinnd_pid=$!
trap 'kill "$djinnd_pid" 2>/dev/null || true' EXIT

# Put some inference load through the daemon first so the flight
# recorder has records and djinn_request_seconds has exemplar-
# bearing buckets for scrape_check's OpenMetrics and /debug/tail
# checks to validate against.
tries=0
until ./build/tools/djinn_cli --timeout-ms 2000 127.0.0.1 19163 \
    ping > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "check_build: djinnd did not come up" >&2
        exit 1
    fi
    sleep 0.2
done
for _ in 1 2 3 4 5 6 7 8; do
    if ! ./build/tools/djinn_cli 127.0.0.1 19163 infer mnist 4 \
        > /dev/null; then
        echo "check_build: smoke inference FAILED" >&2
        exit 1
    fi
done

if ! ./build/tools/scrape_check 127.0.0.1 "$http_port"; then
    echo "check_build: HTTP scrape smoke test FAILED" >&2
    exit 1
fi

# Tail attribution smoke under that load: the CLI's `tail` verb
# must answer a report naming a dominant contributor.
if ! ./build/tools/djinn_cli 127.0.0.1 19163 tail 90 \
    | grep -q "tail attribution"; then
    echo "check_build: djinn_cli tail smoke FAILED" >&2
    exit 1
fi

# Live dashboard e2e: `djinn_cli top` must render per-model series
# computed from the daemon's time-series store over the wire. Two
# frames through the non-tty path (plain text, no escape codes).
if ! ./build/tools/djinn_cli --frames 2 --interval-ms 100 \
    127.0.0.1 19163 top | grep -q "djinn top"; then
    echo "check_build: djinn_cli top smoke FAILED" >&2
    exit 1
fi
if ! ./build/tools/djinn_cli --frames 1 127.0.0.1 19163 top \
    | grep -q "mnist"; then
    echo "check_build: djinn_cli top lacks per-model row" >&2
    exit 1
fi
kill "$djinnd_pid" 2>/dev/null || true
wait "$djinnd_pid" 2>/dev/null || true
trap - EXIT

# Adaptive scheduler smoke (DESIGN.md §16): boot a daemon with two
# weighted tenants sharing the mnist weights under --sched adaptive,
# drive load through both instances, then assert the djinn_sched_*
# gauge families show up in the exposition and the `sched` wire verb
# answers with the scheduler state dump.
./build/tools/djinnd --port 19166 --models mnist --batching \
    --sched adaptive --slo-ms 50 \
    --tenant gold=mnist:2 --tenant bronze=mnist:1 &
sched_pid=$!
trap 'kill "$sched_pid" 2>/dev/null || true' EXIT
tries=0
until ./build/tools/djinn_cli --timeout-ms 2000 127.0.0.1 19166 \
    ping > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "check_build: sched djinnd did not come up" >&2
        exit 1
    fi
    sleep 0.2
done
for tenant in gold bronze gold bronze; do
    if ! ./build/tools/djinn_cli 127.0.0.1 19166 infer "$tenant" 4 \
        > /dev/null; then
        echo "check_build: tenant inference ($tenant) FAILED" >&2
        exit 1
    fi
done
if ! ./build/tools/djinn_cli 127.0.0.1 19166 metrics \
    | grep -q '^djinn_sched_'; then
    echo "check_build: metrics lack djinn_sched_* gauges" >&2
    exit 1
fi
if ! ./build/tools/djinn_cli 127.0.0.1 19166 sched \
    | grep -q '"tenant": "gold"'; then
    echo "check_build: sched verb lacks tenant state" >&2
    exit 1
fi
kill "$sched_pid" 2>/dev/null || true
wait "$sched_pid" 2>/dev/null || true
trap - EXIT

# Robustness battery (DESIGN.md §10): fault-injection, timeout,
# retry, backpressure, and drain suites in release mode. The TSan
# stage below re-runs most of them; the fd-exhaustion AcceptLoop
# test runs only here (starving the fd table starves TSan itself).
./build/tests/core_test --gtest_filter=\
'FrameIo*:FaultSpec*:Retry*:Robustness*:AcceptLoop*:HttpTimeout*'

# Fault-injection smoke at the daemon level: DJINN_FAULT must be
# honored from the environment, and slow-read degrades throughput
# without corrupting frames, so the control plane still answers.
DJINN_FAULT=slow-read ./build/tools/djinnd --port 19165 \
    --models mnist &
fault_pid=$!
trap 'kill "$fault_pid" 2>/dev/null || true' EXIT
sleep 1
if ! ./build/tools/djinn_cli 127.0.0.1 19165 list; then
    echo "check_build: fault-injection smoke FAILED" >&2
    exit 1
fi
kill "$fault_pid" 2>/dev/null || true
wait "$fault_pid" 2>/dev/null || true
trap - EXIT

# Cluster-simulator determinism smoke: the same seed must produce
# byte-identical JSON (trace hash, percentiles, time series, and
# the flight-record tail attribution) on repeated runs of the real
# binary, not just inside one process.
cluster_args="--nodes 8 --policy jsq-d --workload mmpp \
    --rate 4000 --duration 5 --seed 42 --json"
./build/tools/cluster_sim $cluster_args > /tmp/djinn_cluster_a.json
./build/tools/cluster_sim $cluster_args > /tmp/djinn_cluster_b.json
if ! cmp -s /tmp/djinn_cluster_a.json /tmp/djinn_cluster_b.json; then
    echo "check_build: cluster_sim determinism smoke FAILED" >&2
    diff /tmp/djinn_cluster_a.json /tmp/djinn_cluster_b.json >&2 \
        || true
    exit 1
fi
if ! grep -q djinn_tail_dominant /tmp/djinn_cluster_a.json; then
    echo "check_build: cluster_sim JSON lacks tail attribution" >&2
    exit 1
fi
rm -f /tmp/djinn_cluster_a.json /tmp/djinn_cluster_b.json

# Throughput-vs-SLO frontier (DESIGN.md §16): the JSON sweep must be
# byte-identical across runs (the adaptive scheduler is clock-free),
# and in text mode the hybrid policy must weakly dominate both the
# batch-only and mt-only baselines at >= 2 of the swept load points.
./build/bench/ablation_colocation --frontier --json \
    > /tmp/djinn_frontier_a.json
./build/bench/ablation_colocation --frontier --json \
    > /tmp/djinn_frontier_b.json
if ! cmp -s /tmp/djinn_frontier_a.json /tmp/djinn_frontier_b.json; then
    echo "check_build: frontier determinism smoke FAILED" >&2
    diff /tmp/djinn_frontier_a.json /tmp/djinn_frontier_b.json >&2 \
        || true
    exit 1
fi
rm -f /tmp/djinn_frontier_a.json /tmp/djinn_frontier_b.json
dominated=$(./build/bench/ablation_colocation --frontier \
    | sed -nE \
    's/.*hybrid weakly dominates both baselines at ([0-9]+) of.*/\1/p')
if [ -z "$dominated" ] || [ "$dominated" -lt 2 ]; then
    echo "check_build: hybrid dominates at ${dominated:-0} load" \
         "points (need >= 2)" >&2
    exit 1
fi

# Perf-regression harness smoke (DESIGN.md §15): two back-to-back
# quick runs of bench_suite must compare clean (the noise-aware
# thresholds absorb run-to-run jitter; the cluster stage is
# bit-identical by construction), and the comparator's built-in
# self-test proves it fails on an injected regression of each
# class.
./build/bench/bench_suite --quick --out /tmp/djinn_bench_a.json
./build/bench/bench_suite --quick --out /tmp/djinn_bench_b.json
if ! ./build/bench/bench_compare /tmp/djinn_bench_a.json \
    /tmp/djinn_bench_b.json; then
    echo "check_build: bench_suite self-comparison FAILED" >&2
    exit 1
fi
if ! ./build/bench/bench_compare --self-test; then
    echo "check_build: bench_compare self-test FAILED" >&2
    exit 1
fi
rm -f /tmp/djinn_bench_a.json /tmp/djinn_bench_b.json

# Quantization battery (DESIGN.md §14), three parts. First the
# microbenchmark's registry snapshot: int8 must actually be faster
# than f32 at the square 512 shape on one thread, or the low-
# precision path has regressed into pointless accuracy loss.
# (--benchmark_filter skips the google-benchmark suites; the GEMM
# rate snapshot always runs.)
./build/bench/microbench_nn --benchmark_filter='^$' \
    > /tmp/djinn_microbench.json
gflops() {
    grep '"djinn_gemm_gflops"' /tmp/djinn_microbench.json \
        | grep '"shape": "square512"' \
        | grep "\"precision\": \"$1\"" \
        | grep '"threads": "1"' \
        | sed -E 's/.*"value": ([0-9.eE+-]+).*/\1/'
}
int8_rate=$(gflops int8)
f32_rate=$(gflops f32)
if [ -z "$int8_rate" ] || [ -z "$f32_rate" ]; then
    echo "check_build: microbench JSON lacks precision-labeled" \
         "djinn_gemm_gflops samples" >&2
    exit 1
fi
if ! awk -v i="$int8_rate" -v f="$f32_rate" \
    'BEGIN { exit !(i + 0 >= f + 0) }'; then
    echo "check_build: int8 512^3 GEMM ($int8_rate GF) slower" \
         "than f32 ($f32_rate GF)" >&2
    exit 1
fi
rm -f /tmp/djinn_microbench.json

# Second, the differential battery and quantization property tests
# under AddressSanitizer + UBSan: the packed kernels index raw
# panel buffers with hand-rolled arithmetic, exactly where a
# fuzzy-but-passing out-of-bounds read would hide.
cmake -B build-asan -S . -DDJINN_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j --target nn_test
./build-asan/tests/nn_test --gtest_filter='GemmDiff*:Quant*'

# ThreadSanitizer pass over the concurrency-heavy suites: the
# compute pool, the threaded GEMM kernel, the batching server, and
# the request-lifecycle robustness battery.
cmake -B build-tsan -S . -DDJINN_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target common_test nn_test core_test \
    cluster_test telemetry_test
./build-tsan/tests/common_test \
    --gtest_filter='ThreadPool*:ComputePool*'
# GemmDiff* covers the f32, bf16, and int8 batteries (all three
# run the threaded driver); Quant* rides along for the scalar
# primitives.
./build-tsan/tests/nn_test --gtest_filter='GemmDiff*:Quant*'
./build-tsan/tests/core_test \
    --gtest_filter='*Batcher*:*Server*:*Robustness*:*Retry*:*FrameIo*:*Observability*:*Sched*'
# The flight recorder's seqlock ring and the histogram exemplar
# slots are lock-free multi-writer structures; their stress tests
# are only meaningful under TSan.
# TimeSeries/Health ride along: the store's sample path runs on
# the sampler thread while queries and the health monitor read it.
./build-tsan/tests/telemetry_test \
    --gtest_filter='FlightRecorder*:*Exemplar*:TimeSeries*:Health*'
# The cluster simulator is single-threaded by design, but its
# results flow through the lock-free telemetry histograms; the
# determinism and policy suites double as a TSan check of that
# read path.
./build-tsan/tests/cluster_test \
    --gtest_filter='ClusterSim*:Policy*'

echo "check_build: OK"
