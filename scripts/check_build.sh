#!/bin/sh
# Tier-1 verification: full configure + build + test, plus source
# lints. Run before every commit.
set -e
cd "$(dirname "$0")/.."

# Lint: ad-hoc instrumentation is not allowed on the service path.
# Timing belongs in src/telemetry (RequestTrace spans / histograms),
# console output in common/logging. strprintf() is fine: the \b
# boundary only matches bare printf-family calls.
bad=$(grep -rnE '\bprintf\(|\bfprintf\(|gettimeofday|clock_gettime' \
    src/core/ || true)
if [ -n "$bad" ]; then
    echo "lint: ad-hoc printf/timing in src/core;" \
         "use src/telemetry instead:" >&2
    echo "$bad" >&2
    exit 1
fi

cmake -B build -S . && cmake --build build -j && \
    cd build && ctest --output-on-failure -j "$(nproc)"
cd ..

# Smoke test the observability surface: boot a real daemon with the
# HTTP endpoint and let scrape_check validate /healthz, /metrics
# (must parse as Prometheus exposition), and /trace.
http_port=19164
./build/tools/djinnd --port 19163 --http-port "$http_port" \
    --models mnist --batching &
djinnd_pid=$!
trap 'kill "$djinnd_pid" 2>/dev/null || true' EXIT
if ! ./build/tools/scrape_check 127.0.0.1 "$http_port"; then
    echo "check_build: HTTP scrape smoke test FAILED" >&2
    exit 1
fi
kill "$djinnd_pid" 2>/dev/null || true
wait "$djinnd_pid" 2>/dev/null || true
trap - EXIT

# ThreadSanitizer pass over the concurrency-heavy suites: the
# compute pool, the threaded GEMM kernel, and the batching server.
cmake -B build-tsan -S . -DDJINN_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target common_test nn_test core_test
./build-tsan/tests/common_test \
    --gtest_filter='ThreadPool*:ComputePool*'
./build-tsan/tests/nn_test --gtest_filter='GemmDiff*'
./build-tsan/tests/core_test --gtest_filter='*Batcher*:*Server*'

echo "check_build: OK"
