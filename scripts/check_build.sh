#!/bin/sh
# Tier-1 verification: full configure + build + test, plus source
# lints. Run before every commit.
set -e
cd "$(dirname "$0")/.."

# Lint: ad-hoc instrumentation is not allowed on the service path.
# Timing belongs in src/telemetry (RequestTrace spans / histograms),
# console output in common/logging. strprintf() is fine: the \b
# boundary only matches bare printf-family calls.
bad=$(grep -rnE '\bprintf\(|\bfprintf\(|gettimeofday|clock_gettime' \
    src/core/ || true)
if [ -n "$bad" ]; then
    echo "lint: ad-hoc printf/timing in src/core;" \
         "use src/telemetry instead:" >&2
    echo "$bad" >&2
    exit 1
fi

cmake -B build -S . && cmake --build build -j && \
    cd build && ctest --output-on-failure -j "$(nproc)"
echo "check_build: OK"
