/**
 * @file
 * djinn_cli - command-line client for a running DjiNN server.
 *
 * Usage:
 *   djinn_cli [--timeout-ms N] [--retries N] [--deadline-ms N]
 *             HOST PORT ping
 *   djinn_cli ... HOST PORT list
 *   djinn_cli ... HOST PORT stats
 *   djinn_cli ... HOST PORT metrics [prometheus|json|requests]
 *   djinn_cli ... HOST PORT tail [PCT]
 *   djinn_cli ... HOST PORT sched
 *   djinn_cli ... HOST PORT top [WINDOW_SECONDS]
 *   djinn_cli ... HOST PORT trace OUT.json [last_n]
 *   djinn_cli ... HOST PORT profile [SECONDS] [OUT.txt]
 *   djinn_cli ... HOST PORT infer MODEL ROWS [payload.f32]
 *
 * --timeout-ms N bounds connection establishment and each request
 * round-trip (0, the default, blocks indefinitely). --retries N
 * allows up to N retries of an infer that failed safely — an
 * Overloaded shed or a transient connect/send failure — with
 * capped jittered exponential backoff; ambiguous mid-stream
 * failures are never retried. --deadline-ms N attaches a deadline
 * budget to infer requests (protocol v3): the server sheds the
 * request once the budget expires instead of computing a result
 * the caller stopped waiting for.
 *
 * `metrics` prints the server's full telemetry exposition:
 * per-model request counters and decode / queue-wait / forward /
 * encode latency histograms with p50/p95/p99. The `requests`
 * format prints the recent-request table instead: one line per
 * request with its trace id, rows, the size of the batch that
 * served it, and service latency.
 *
 * `top` is the live operator dashboard: per-model QPS, windowed
 * p50/p99, shed rate, and batch occupancy with request-rate
 * sparklines, computed server-side from the continuous time-series
 * store and refreshed every --interval-ms (default 1000). On a tty
 * it clears the screen between frames and runs until interrupted;
 * piped, it prints --frames frames (default 1) of plain text, so
 * scripts and tests can grep it.
 *
 * `sched` dumps the adaptive scheduler's live state as JSON: each
 * model's current batch target, observed arrival rate, calibrated
 * per-query service time, SLO and burn rate, plus each tenant's
 * fair-share weight, deficit, and realised share of dispatch
 * capacity. Requires a server started with `--sched adaptive`
 * (DESIGN.md §16).
 *
 * `tail` asks the server's flight recorder where tail latency
 * comes from: it compares the pPCT-slowest requests (default p99)
 * against the p50-and-faster baseline and prints the per-phase
 * excess — queue wait vs forward vs read/decode/encode — fleet-wide
 * and per model. See DESIGN.md "Tail attribution & flight
 * recorder".
 *
 * `trace` downloads the server's span ring as Chrome trace-event
 * JSON; open the file in chrome://tracing or
 * https://ui.perfetto.dev to see the end-to-end timeline.
 *
 * `profile` samples the server's call stacks for SECONDS (default
 * 1) and prints collapsed stacks — `flamegraph.pl` input — to
 * stdout, or to OUT.txt when given. See README "Flamegraphs".
 *
 * For `infer`, the payload file holds raw little-endian float32
 * data (rows x model-input elements); without a file, a
 * deterministic random payload is generated. The top prediction of
 * every row is printed.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/strings.hh"
#include "core/djinn_client.hh"

using namespace djinn;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: djinn_cli [--timeout-ms N] [--retries N] "
                 "[--deadline-ms N] [--frames N] [--interval-ms N] "
                 "HOST PORT "
                 "ping|list|stats|metrics|tail|sched|top|trace|"
                 "profile|infer [MODEL ROWS [payload.f32]]\n"
                 "       metrics takes an optional format: "
                 "prometheus (default), json, or requests\n"
                 "       tail takes an optional percentile: "
                 "djinn_cli HOST PORT tail [PCT] (default 99)\n"
                 "       top takes an optional window: "
                 "djinn_cli HOST PORT top [WINDOW_SECONDS] "
                 "(default 60); --frames N stops after N frames "
                 "(0 = until interrupted), --interval-ms sets the "
                 "refresh period\n"
                 "       trace takes an output file: "
                 "djinn_cli HOST PORT trace out.json\n"
                 "       profile takes an optional window and "
                 "output file: djinn_cli HOST PORT profile "
                 "[SECONDS] [out.txt]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    double timeout_ms = 0.0;
    int retries = 0;
    uint32_t deadline_ms = 0;
    int frames = -1;
    int interval_ms = 1000;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        if (argi + 1 >= argc)
            return usage();
        if (arg == "--timeout-ms") {
            timeout_ms = std::atof(argv[++argi]);
        } else if (arg == "--retries") {
            retries = std::atoi(argv[++argi]);
        } else if (arg == "--deadline-ms") {
            deadline_ms =
                static_cast<uint32_t>(std::atoi(argv[++argi]));
        } else if (arg == "--frames") {
            frames = std::atoi(argv[++argi]);
        } else if (arg == "--interval-ms") {
            interval_ms = std::atoi(argv[++argi]);
            if (interval_ms <= 0)
                return usage();
        } else {
            return usage();
        }
        ++argi;
    }
    if (argc - argi < 3)
        return usage();
    std::string host = argv[argi];
    uint16_t port = static_cast<uint16_t>(std::atoi(argv[argi + 1]));
    std::string command = argv[argi + 2];
    argv += argi - 1; // re-base so argv[4] is the first operand
    argc -= argi - 1;

    core::DjinnClient client;
    if (timeout_ms > 0.0) {
        client.setConnectTimeout(timeout_ms * 1e-3);
        client.setRequestTimeout(timeout_ms * 1e-3);
    }
    if (retries > 0) {
        core::RetryPolicy policy;
        policy.maxAttempts = retries + 1;
        client.setRetryPolicy(policy);
    }
    client.setDeadlineMs(deadline_ms);
    Status connected = client.connect(host, port);
    if (!connected.isOk()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     connected.toString().c_str());
        return 1;
    }

    if (command == "ping") {
        Status s = client.ping();
        std::printf("%s\n", s.isOk() ? "pong" :
                            s.toString().c_str());
        return s.isOk() ? 0 : 1;
    }
    if (command == "list") {
        auto models = client.listModels();
        if (!models.isOk()) {
            std::fprintf(stderr, "%s\n",
                         models.status().toString().c_str());
            return 1;
        }
        for (const auto &name : models.value())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (command == "stats") {
        auto stats = client.serverStats();
        if (!stats.isOk()) {
            std::fprintf(stderr, "%s\n",
                         stats.status().toString().c_str());
            return 1;
        }
        std::printf("%-16s %10s %12s %12s\n", "model", "requests",
                    "rows", "mean(ms)");
        for (const auto &s : stats.value()) {
            std::printf("%-16s %10llu %12llu %12.3f\n",
                        s.model.c_str(),
                        static_cast<unsigned long long>(s.requests),
                        static_cast<unsigned long long>(s.rows),
                        s.meanServiceMs);
        }
        return 0;
    }
    if (command == "metrics") {
        std::string format = argc > 4 ? argv[4] : "";
        auto exposition = client.metricsExposition(format);
        if (!exposition.isOk()) {
            std::fprintf(stderr, "%s\n",
                         exposition.status().toString().c_str());
            return 1;
        }
        if (format != "requests") {
            std::fputs(exposition.value().c_str(), stdout);
            return 0;
        }
        // Render the request CSV as a human table with trace-id
        // and batch-size columns.
        std::printf("%-16s %-16s %6s %10s %12s\n", "trace_id",
                    "model", "rows", "batch_rows", "service(ms)");
        std::istringstream lines(exposition.value());
        std::string line;
        std::getline(lines, line); // skip the CSV header
        while (std::getline(lines, line)) {
            if (line.empty())
                continue;
            auto fields = split(line, ',');
            if (fields.size() != 5) {
                std::fprintf(stderr, "malformed line '%s'\n",
                             line.c_str());
                return 1;
            }
            std::printf("%-16s %-16s %6s %10s %12s\n",
                        fields[0].c_str(), fields[1].c_str(),
                        fields[2].c_str(), fields[3].c_str(),
                        fields[4].c_str());
        }
        return 0;
    }
    if (command == "tail") {
        // The Metrics verb's "tail:PCT" format runs the server-side
        // tail attribution over the flight recorder.
        double pct = 99.0;
        if (argc > 4) {
            pct = std::atof(argv[4]);
            if (!(pct > 0.0 && pct < 100.0)) {
                std::fprintf(stderr, "PCT must be in (0, 100)\n");
                return 2;
            }
        }
        auto report =
            client.metricsExposition(strprintf("tail:%g", pct));
        if (!report.isOk()) {
            std::fprintf(stderr, "%s\n",
                         report.status().toString().c_str());
            return 1;
        }
        std::fputs(report.value().c_str(), stdout);
        return 0;
    }
    if (command == "sched") {
        // The Metrics verb's "sched" format dumps the adaptive
        // scheduler's per-model targets and tenant fair shares.
        auto state = client.metricsExposition("sched");
        if (!state.isOk()) {
            std::fprintf(stderr, "%s\n",
                         state.status().toString().c_str());
            return 1;
        }
        std::fputs(state.value().c_str(), stdout);
        return 0;
    }
    if (command == "top") {
        double window = 60.0;
        if (argc > 4) {
            window = std::atof(argv[4]);
            if (!(window > 0.0)) {
                std::fprintf(stderr,
                             "WINDOW_SECONDS must be positive\n");
                return 2;
            }
        }
        const bool tty = isatty(fileno(stdout)) != 0;
        // Interactive default: refresh forever. Piped default: one
        // frame, so `djinn_cli ... top | grep` terminates.
        if (frames < 0)
            frames = tty ? 0 : 1;
        for (int frame = 0; frames == 0 || frame < frames;
             ++frame) {
            if (frame > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(interval_ms));
            }
            auto dashboard = client.metricsExposition(
                strprintf("top:%g", window));
            if (!dashboard.isOk()) {
                std::fprintf(stderr, "%s\n",
                             dashboard.status().toString().c_str());
                return 1;
            }
            if (tty) {
                // Home the cursor and clear before each frame.
                std::fputs("\x1b[H\x1b[2J", stdout);
            }
            std::fputs(dashboard.value().c_str(), stdout);
            std::fflush(stdout);
        }
        return 0;
    }
    if (command == "profile") {
        // The Metrics verb's "profile:N" format runs an N-second
        // sampling window server-side and returns collapsed stacks.
        int seconds = 1;
        if (argc > 4) {
            seconds = std::atoi(argv[4]);
            if (seconds <= 0 || seconds > 60) {
                std::fprintf(stderr,
                             "SECONDS must be in 1..60\n");
                return 2;
            }
        }
        auto collapsed = client.metricsExposition(
            strprintf("profile:%d", seconds));
        if (!collapsed.isOk()) {
            std::fprintf(stderr, "%s\n",
                         collapsed.status().toString().c_str());
            return 1;
        }
        if (argc > 5) {
            std::ofstream os(argv[5], std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", argv[5]);
                return 1;
            }
            os << collapsed.value();
            std::printf("wrote %zu bytes of collapsed stacks to "
                        "%s\nrender with: flamegraph.pl %s > "
                        "profile.svg\n",
                        collapsed.value().size(), argv[5], argv[5]);
        } else {
            std::fputs(collapsed.value().c_str(), stdout);
        }
        return 0;
    }
    if (command == "trace") {
        if (argc < 5)
            return usage();
        auto trace = client.traceJson();
        if (!trace.isOk()) {
            std::fprintf(stderr, "%s\n",
                         trace.status().toString().c_str());
            return 1;
        }
        std::ofstream os(argv[4], std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", argv[4]);
            return 1;
        }
        os << trace.value();
        std::printf("wrote %zu bytes of Chrome trace JSON to %s\n"
                    "open in chrome://tracing or "
                    "https://ui.perfetto.dev\n",
                    trace.value().size(), argv[4]);
        return 0;
    }
    if (command != "infer" || argc < 6)
        return usage();

    std::string model = argv[4];
    int64_t rows = std::atoll(argv[5]);
    if (rows <= 0) {
        std::fprintf(stderr, "rows must be positive\n");
        return 2;
    }

    std::vector<float> payload;
    if (argc > 6) {
        std::ifstream is(argv[6], std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "cannot open %s\n", argv[6]);
            return 1;
        }
        std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                              std::istreambuf_iterator<char>());
        payload.resize(raw.size() / sizeof(float));
        std::memcpy(payload.data(), raw.data(),
                    payload.size() * sizeof(float));
    } else {
        auto info = client.describeModel(model);
        if (!info.isOk()) {
            std::fprintf(stderr, "describe failed: %s\n",
                         info.status().toString().c_str());
            return 1;
        }
        int64_t elems = info.value().inputElems();
        Rng rng(7);
        payload.resize(static_cast<size_t>(rows * elems));
        for (auto &v : payload)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        std::printf("generated random payload: %lld rows x %lld "
                    "floats\n", static_cast<long long>(rows),
                    static_cast<long long>(elems));
    }

    // Attach a wire trace context so the server records spans for
    // this request; the id is printed for correlation with
    // `metrics requests` and `trace` output.
    client.setTracing(true);
    auto result = client.infer(model, rows, payload);
    if (!result.isOk()) {
        std::fprintf(stderr, "infer failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    std::printf("trace id %s\n",
                telemetry::traceIdToHex(
                    client.lastTrace().traceId).c_str());
    const auto &output = result.value();
    int64_t out_elems = static_cast<int64_t>(output.size()) / rows;
    for (int64_t r = 0; r < rows; ++r) {
        const float *base = output.data() + r * out_elems;
        int64_t best = std::max_element(base, base + out_elems) -
                       base;
        std::printf("row %lld: class %lld (score %.4f of %lld "
                    "outputs)\n", static_cast<long long>(r),
                    static_cast<long long>(best), base[best],
                    static_cast<long long>(out_elems));
    }
    return 0;
}
