/**
 * @file
 * djinn_cli - command-line client for a running DjiNN server.
 *
 * Usage:
 *   djinn_cli HOST PORT ping
 *   djinn_cli HOST PORT list
 *   djinn_cli HOST PORT stats
 *   djinn_cli HOST PORT metrics [prometheus|json]
 *   djinn_cli HOST PORT infer MODEL ROWS [payload.f32]
 *
 * `metrics` prints the server's full telemetry exposition:
 * per-model request counters and decode / queue-wait / forward /
 * encode latency histograms with p50/p95/p99.
 *
 * For `infer`, the payload file holds raw little-endian float32
 * data (rows x model-input elements); without a file, a
 * deterministic random payload is generated. The top prediction of
 * every row is printed.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/djinn_client.hh"

using namespace djinn;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: djinn_cli HOST PORT "
                 "ping|list|stats|metrics|infer "
                 "[MODEL ROWS [payload.f32]]\n"
                 "       metrics takes an optional format: "
                 "prometheus (default) or json\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::string host = argv[1];
    uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
    std::string command = argv[3];

    core::DjinnClient client;
    Status connected = client.connect(host, port);
    if (!connected.isOk()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     connected.toString().c_str());
        return 1;
    }

    if (command == "ping") {
        Status s = client.ping();
        std::printf("%s\n", s.isOk() ? "pong" :
                            s.toString().c_str());
        return s.isOk() ? 0 : 1;
    }
    if (command == "list") {
        auto models = client.listModels();
        if (!models.isOk()) {
            std::fprintf(stderr, "%s\n",
                         models.status().toString().c_str());
            return 1;
        }
        for (const auto &name : models.value())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (command == "stats") {
        auto stats = client.serverStats();
        if (!stats.isOk()) {
            std::fprintf(stderr, "%s\n",
                         stats.status().toString().c_str());
            return 1;
        }
        std::printf("%-16s %10s %12s %12s\n", "model", "requests",
                    "rows", "mean(ms)");
        for (const auto &s : stats.value()) {
            std::printf("%-16s %10llu %12llu %12.3f\n",
                        s.model.c_str(),
                        static_cast<unsigned long long>(s.requests),
                        static_cast<unsigned long long>(s.rows),
                        s.meanServiceMs);
        }
        return 0;
    }
    if (command == "metrics") {
        std::string format = argc > 4 ? argv[4] : "";
        auto exposition = client.metricsExposition(format);
        if (!exposition.isOk()) {
            std::fprintf(stderr, "%s\n",
                         exposition.status().toString().c_str());
            return 1;
        }
        std::fputs(exposition.value().c_str(), stdout);
        return 0;
    }
    if (command != "infer" || argc < 6)
        return usage();

    std::string model = argv[4];
    int64_t rows = std::atoll(argv[5]);
    if (rows <= 0) {
        std::fprintf(stderr, "rows must be positive\n");
        return 2;
    }

    std::vector<float> payload;
    if (argc > 6) {
        std::ifstream is(argv[6], std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "cannot open %s\n", argv[6]);
            return 1;
        }
        std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                              std::istreambuf_iterator<char>());
        payload.resize(raw.size() / sizeof(float));
        std::memcpy(payload.data(), raw.data(),
                    payload.size() * sizeof(float));
    } else {
        auto info = client.describeModel(model);
        if (!info.isOk()) {
            std::fprintf(stderr, "describe failed: %s\n",
                         info.status().toString().c_str());
            return 1;
        }
        int64_t elems = info.value().inputElems();
        Rng rng(7);
        payload.resize(static_cast<size_t>(rows * elems));
        for (auto &v : payload)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        std::printf("generated random payload: %lld rows x %lld "
                    "floats\n", static_cast<long long>(rows),
                    static_cast<long long>(elems));
    }

    auto result = client.infer(model, rows, payload);
    if (!result.isOk()) {
        std::fprintf(stderr, "infer failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    const auto &output = result.value();
    int64_t out_elems = static_cast<int64_t>(output.size()) / rows;
    for (int64_t r = 0; r < rows; ++r) {
        const float *base = output.data() + r * out_elems;
        int64_t best = std::max_element(base, base + out_elems) -
                       base;
        std::printf("row %lld: class %lld (score %.4f of %lld "
                    "outputs)\n", static_cast<long long>(r),
                    static_cast<long long>(best), base[best],
                    static_cast<long long>(out_elems));
    }
    return 0;
}
