/**
 * @file
 * export_models - write the zoo's network definitions (and
 * optionally their deterministic weights) to disk, in the formats
 * djinnd loads with --netdef/--weights. The paper ships its
 * models the same way: configuration plus trained parameters.
 *
 * Usage: export_models [--dir DIR] [--weights] [--seed N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/serialize.hh"
#include "nn/zoo.hh"

using namespace djinn;

int
main(int argc, char **argv)
{
    std::string dir = "models";
    bool weights = false;
    uint64_t seed = 42;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--weights") {
            weights = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: export_models [--dir DIR] "
                         "[--weights] [--seed N]\n");
            return 2;
        }
    }

    for (nn::zoo::Model model : nn::zoo::allModels()) {
        std::string name = nn::zoo::modelName(model);
        std::string def_path = dir + "/" + name + ".def";
        std::ofstream os(def_path);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         def_path.c_str());
            return 1;
        }
        os << nn::zoo::netDef(model);
        os.close();
        std::printf("wrote %s\n", def_path.c_str());

        if (weights) {
            auto net = nn::zoo::build(model, seed);
            std::string djw_path = dir + "/" + name + ".djw";
            Status s = nn::saveWeights(*net, djw_path);
            if (!s.isOk()) {
                std::fprintf(stderr, "cannot write %s: %s\n",
                             djw_path.c_str(),
                             s.toString().c_str());
                return 1;
            }
            std::printf("wrote %s (%.1f MiB)\n", djw_path.c_str(),
                        net->weightBytes() / (1024.0 * 1024.0));
        }
    }
    return 0;
}
