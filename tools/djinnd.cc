/**
 * @file
 * djinnd - the standalone DjiNN service daemon.
 *
 * Loads a set of models into memory once, then serves inference
 * requests over TCP until interrupted (paper Section 3.1).
 *
 * Usage:
 *   djinnd [--port N] [--models m1,m2,...|all] [--batching]
 *          [--batch-size N] [--batch-delay-us N] [--seed N]
 *          [--precision m=int8|bf16|f32[,m=...]]
 *          [--max-queue-depth N] [--io-timeout-ms N]
 *          [--drain-timeout-ms N] [--fault SPEC]
 *          [--compute-threads N]
 *          [--metrics-dump] [--metrics-dump-json]
 *          [--http-port N] [--no-tracing]
 *          [--profile-hz N] [--slo-ms X]
 *          [--sched adaptive|static]
 *          [--tenant NAME=MODEL[:WEIGHT]]...
 *          [--timeseries-cap N]
 *          [--netdef FILE --weights FILE]...
 *
 * --metrics-dump prints the full telemetry exposition (Prometheus
 * text; --metrics-dump-json for JSON) to stdout at shutdown. A
 * running daemon serves the same exposition to clients via the
 * Metrics wire verb (`djinn_cli HOST PORT metrics`).
 *
 * --precision lowers named zoo models for serving (DESIGN.md §14):
 * a comma list of model=precision pairs, e.g.
 * `--precision mnist=int8,senna_pos=bf16`. int8 models are
 * post-training quantized against the committed calibration batch;
 * unlisted models serve f32. Each model's serving precision is
 * visible in the Describe response and the `djinn_model_precision`
 * gauge.
 *
 * --compute-threads N sizes the shared intra-layer compute pool
 * (threaded GEMM and layer partitioning, DESIGN.md §8). Unset, the
 * DJINN_COMPUTE_THREADS environment variable applies, then the
 * hardware concurrency. Inference output bits are identical at
 * every setting.
 *
 * --http-port N starts the embedded HTTP scrape endpoint on port N
 * (0 picks an ephemeral port): GET /healthz (structured JSON
 * health verdict with uptime), GET /metrics (Prometheus text),
 * GET /trace?last=N (Chrome trace-event JSON, loadable in
 * chrome://tracing or https://ui.perfetto.dev),
 * GET /profile?seconds=N (collapsed stacks for flamegraph.pl), and
 * GET /debug/timeseries?metric=M&window=W (windowed series from
 * the continuous time-series store — the same data `djinn_cli
 * HOST PORT top` renders as a live dashboard). --no-tracing
 * disables span recording for sampled requests (and with it the
 * store, the health watchdog, and the dashboard).
 *
 * --timeseries-cap N sets the store's retention in sampler-period
 * slots (default 600 = 2.5 minutes at the 0.25 s period).
 *
 * --profile-hz N runs the continuous sampling profiler at N samples
 * per consumed CPU-second (off by default; /profile still works via
 * a temporary window). --slo-ms X sets the per-model latency SLO
 * target driving the djinn_slo_* good/bad counters and burn-rate
 * gauges (default 50 ms; 0 disables SLO tracking).
 *
 * --sched adaptive enables the SLO-driven adaptive batch scheduler
 * (DESIGN.md §16): each model's dispatch batch is sized from its
 * observed arrival rate and calibrated batch service time so
 * predicted latency stays inside the --slo-ms target, shrinking
 * under burn-rate pressure (requires --batching). --tenant
 * NAME=MODEL[:WEIGHT] (repeatable) registers a tenant-visible
 * instance of MODEL named NAME that shares MODEL's weight tensors
 * (no duplicate resident bytes) and receives a WEIGHT-proportional
 * share of batch dispatch capacity via deficit round-robin
 * (default weight 1). Inspect live state with
 * `djinn_cli HOST PORT sched`.
 *
 * Overload & failure handling (DESIGN.md §10): --max-queue-depth N
 * caps each model's batch queue (0 derives 4 x batch size; excess
 * submits are rejected with an Overloaded response the client may
 * retry). --io-timeout-ms N bounds each connection's frame
 * transfers (default 10000; 0 disables). --drain-timeout-ms N
 * bounds the graceful drain at shutdown (default 5000). --fault
 * SPEC (or the DJINN_FAULT environment variable) injects protocol
 * faults for robustness drills: a comma list of slow-read,
 * stall-after-header, mid-frame-close.
 *
 * Zoo model names: alexnet mnist deepface kaldi_asr senna_pos
 * senna_chk senna_ner. Custom models load from a netdef text file
 * plus an optional .djw weight file.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "common/thread_pool.hh"
#include "core/djinn_server.hh"
#include "telemetry/exposition.hh"
#include "tonic/apps.hh"

using namespace djinn;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: djinnd [--port N] [--models m1,m2|all]\n"
                 "              [--precision m=int8|bf16|f32[,...]]\n"
                 "              [--batching] [--batch-size N] "
                 "[--batch-delay-us N]\n"
                 "              [--max-queue-depth N] "
                 "[--io-timeout-ms N]\n"
                 "              [--drain-timeout-ms N] "
                 "[--fault SPEC]\n"
                 "              [--compute-threads N]\n"
                 "              [--seed N] [--metrics-dump] "
                 "[--metrics-dump-json]\n"
                 "              [--http-port N] [--no-tracing]\n"
                 "              [--profile-hz N] [--slo-ms X]\n"
                 "              [--sched adaptive|static]\n"
                 "              [--tenant NAME=MODEL[:WEIGHT]]...\n"
                 "              [--timeseries-cap N]\n"
                 "              [--netdef F --weights F]...\n");
}

} // namespace

int
main(int argc, char **argv)
{
    core::ServerConfig config;
    config.port = 5555; // the historical DjiNN default port
    std::vector<std::string> model_names{"mnist", "senna_pos"};
    std::vector<std::pair<std::string, std::string>> custom;
    std::vector<std::pair<std::string, std::string>> tenants;
    uint64_t seed = 42;
    bool metrics_dump = false;
    bool metrics_json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", what);
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            config.port =
                static_cast<uint16_t>(std::atoi(next("--port")));
        } else if (arg == "--models") {
            std::string list = next("--models");
            if (list == "all") {
                model_names.clear();
                for (auto model : nn::zoo::allModels())
                    model_names.push_back(nn::zoo::modelName(model));
            } else {
                model_names = split(list, ',');
            }
        } else if (arg == "--batching") {
            config.batching = true;
        } else if (arg == "--batch-size") {
            config.batchOptions.maxQueries =
                std::atoll(next("--batch-size"));
        } else if (arg == "--batch-delay-us") {
            config.batchOptions.maxDelay =
                std::atof(next("--batch-delay-us")) * 1e-6;
        } else if (arg == "--max-queue-depth") {
            config.batchOptions.maxQueueDepth =
                std::atoll(next("--max-queue-depth"));
        } else if (arg == "--io-timeout-ms") {
            config.ioTimeoutSeconds =
                std::atof(next("--io-timeout-ms")) * 1e-3;
        } else if (arg == "--drain-timeout-ms") {
            config.drainTimeoutSeconds =
                std::atof(next("--drain-timeout-ms")) * 1e-3;
        } else if (arg == "--fault") {
            config.faultSpec = next("--fault");
        } else if (arg == "--precision") {
            for (const std::string &pair :
                 split(next("--precision"), ',')) {
                size_t eq = pair.find('=');
                if (eq == std::string::npos || eq == 0) {
                    std::fprintf(stderr,
                                 "--precision wants model=prec "
                                 "pairs, got '%s'\n", pair.c_str());
                    return 2;
                }
                try {
                    config.modelPrecisions[pair.substr(0, eq)] =
                        nn::precisionFromName(pair.substr(eq + 1));
                } catch (const FatalError &e) {
                    std::fprintf(stderr, "%s\n", e.what());
                    return 2;
                }
            }
        } else if (arg == "--seed") {
            seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (arg == "--compute-threads") {
            config.computeThreads =
                std::atoi(next("--compute-threads"));
        } else if (arg == "--http-port") {
            config.httpPort = std::atoi(next("--http-port"));
        } else if (arg == "--no-tracing") {
            config.tracing = false;
        } else if (arg == "--profile-hz") {
            config.profileHz = std::atoi(next("--profile-hz"));
        } else if (arg == "--slo-ms") {
            config.sloTargetSeconds =
                std::atof(next("--slo-ms")) * 1e-3;
        } else if (arg == "--sched") {
            std::string mode = next("--sched");
            if (mode == "adaptive") {
                config.adaptiveScheduling = true;
            } else if (mode == "static") {
                config.adaptiveScheduling = false;
            } else {
                std::fprintf(stderr,
                             "--sched wants adaptive|static, "
                             "got '%s'\n", mode.c_str());
                return 2;
            }
        } else if (arg == "--tenant") {
            std::string spec = next("--tenant");
            size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= spec.size()) {
                std::fprintf(stderr,
                             "--tenant wants NAME=MODEL[:WEIGHT], "
                             "got '%s'\n", spec.c_str());
                return 2;
            }
            std::string name = spec.substr(0, eq);
            std::string model = spec.substr(eq + 1);
            double weight = 1.0;
            size_t colon = model.find(':');
            if (colon != std::string::npos) {
                weight = std::atof(model.c_str() + colon + 1);
                model = model.substr(0, colon);
            }
            if (model.empty() || weight <= 0.0) {
                std::fprintf(stderr,
                             "--tenant wants NAME=MODEL[:WEIGHT] "
                             "with WEIGHT > 0, got '%s'\n",
                             spec.c_str());
                return 2;
            }
            tenants.emplace_back(name, model);
            config.tenantWeights[name] = weight;
            config.tenantModels[name] = name;
        } else if (arg == "--timeseries-cap") {
            int cap = std::atoi(next("--timeseries-cap"));
            if (cap < 2) {
                std::fprintf(stderr,
                             "--timeseries-cap must be >= 2\n");
                return 2;
            }
            config.timeseriesCapacity = static_cast<size_t>(cap);
        } else if (arg == "--metrics-dump") {
            metrics_dump = true;
        } else if (arg == "--metrics-dump-json") {
            metrics_dump = true;
            metrics_json = true;
        } else if (arg == "--netdef") {
            custom.emplace_back(next("--netdef"), "");
        } else if (arg == "--weights") {
            if (custom.empty()) {
                std::fprintf(stderr,
                             "--weights needs a prior --netdef\n");
                return 2;
            }
            custom.back().second = next("--weights");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    // The DJINN_FAULT environment variable seeds the fault spec so
    // drills can misconfigure a stock deployment without editing
    // its command line; an explicit --fault wins.
    if (config.faultSpec.empty()) {
        const char *env_fault = std::getenv("DJINN_FAULT");
        if (env_fault)
            config.faultSpec = env_fault;
    }

    core::ModelRegistry registry;
    for (const std::string &name : model_names) {
        try {
            nn::zoo::Model model = nn::zoo::modelFromName(name);
            nn::Precision precision = nn::Precision::F32;
            auto it = config.modelPrecisions.find(name);
            if (it != config.modelPrecisions.end())
                precision = it->second;
            std::printf("loading zoo model %s (%s)...\n",
                        name.c_str(), nn::precisionName(precision));
            Status s = registry.addZooModel(model, seed, precision);
            if (!s.isOk()) {
                std::fprintf(stderr, "cannot load '%s': %s\n",
                             name.c_str(), s.toString().c_str());
                return 1;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    for (const auto &[netdef, weights] : custom) {
        std::printf("loading custom model from %s...\n",
                    netdef.c_str());
        Status s = registry.loadFromFiles(netdef, weights);
        if (!s.isOk()) {
            std::fprintf(stderr, "cannot load '%s': %s\n",
                         netdef.c_str(), s.toString().c_str());
            return 1;
        }
    }
    for (const auto &[name, base] : tenants) {
        Status s = registry.addInstance(name, base);
        if (!s.isOk()) {
            std::fprintf(stderr,
                         "cannot register tenant '%s' on '%s': "
                         "%s\n", name.c_str(), base.c_str(),
                         s.toString().c_str());
            return 1;
        }
        std::printf("tenant %s serves %s (weight %.3g, shared "
                    "weights)\n", name.c_str(), base.c_str(),
                    config.tenantWeights[name]);
    }
    if (config.adaptiveScheduling && !config.batching) {
        std::fprintf(stderr,
                     "--sched adaptive requires --batching\n");
        return 2;
    }
    std::printf("%zu models resident (%.0f MiB, shared read-only)\n",
                registry.size(),
                registry.totalWeightBytes() / (1024.0 * 1024.0));

    core::DjinnServer server(registry, config);
    Status started = server.start();
    if (!started.isOk()) {
        std::fprintf(stderr, "cannot start: %s\n",
                     started.toString().c_str());
        return 1;
    }
    std::printf("djinnd listening on %s:%u (batching %s, "
                "%d compute threads)\n",
                config.bindAddress.c_str(), server.port(),
                config.batching ? "on" : "off",
                common::computeThreads());
    if (config.httpPort >= 0) {
        std::printf("http endpoint on %s:%u "
                    "(/healthz /metrics /trace /profile "
                    "/debug/timeseries)\n",
                    config.bindAddress.c_str(), server.httpPort());
        std::printf("live dashboard: djinn_cli %s %u top\n",
                    config.bindAddress.c_str(), server.port());
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop)
        ::pause();

    std::printf("shutting down after %lu requests\n",
                static_cast<unsigned long>(server.requestsServed()));
    server.stop();
    if (metrics_dump) {
        auto samples = server.metrics().snapshot();
        std::fputs(metrics_json
                       ? telemetry::renderJson(samples).c_str()
                       : telemetry::renderPrometheus(samples)
                             .c_str(),
                   stdout);
    }
    return 0;
}
