/**
 * @file
 * scrape_check - validate a DjiNN HTTP scrape endpoint.
 *
 * Usage:
 *   scrape_check HOST PORT [timeout_seconds]
 *
 * Polls GET /healthz until the endpoint answers 200 (or the
 * timeout elapses), then fetches /metrics and checks the body
 * parses as a Prometheus text exposition, fetches /trace?last=8
 * and checks it looks like a Chrome trace JSON document, and
 * fetches /profile?seconds=1 and checks the body is collapsed
 * stacks ("frame;frame;... count" lines — empty allowed on idle
 * servers, 503 allowed where profiling signals are restricted).
 * Then it exercises content negotiation: /metrics with `Accept:
 * application/openmetrics-text` must answer the OpenMetrics
 * content type, terminate with `# EOF`, carry only well-formed
 * `# {...} value` exemplar suffixes, and still parse; the plain
 * Prometheus rendering must stay free of exemplar/OpenMetrics
 * markers (byte-stable with exemplars off). /debug/tail must
 * answer attribution JSON. When the daemon runs a health monitor,
 * /healthz must carry the structured JSON verdict (status +
 * uptime); /debug/timeseries must serve windowed series JSON for a
 * known metric, 400 with a JSON error body when the metric
 * parameter is missing or the window is out of bounds, and 404 for
 * an unknown metric. Exits 0 when every check passes; prints the
 * first failure and exits 1 otherwise.
 *
 * Exists so `scripts/check_build.sh` can smoke-test the endpoint
 * without assuming curl is installed.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "telemetry/exposition.hh"

using namespace djinn;

namespace {

/**
 * One blocking HTTP/1.0 GET. Returns false on connect/io error.
 * @p accept, when non-empty, is sent as the Accept header;
 * @p content_type, when non-null, receives the response's
 * Content-Type value ("" if the header is missing).
 */
bool
httpGet(const std::string &host, uint16_t port,
        const std::string &path, int &code, std::string &body,
        const std::string &accept = std::string(),
        std::string *content_type = nullptr)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return false;
    }

    std::string request = "GET " + path + " HTTP/1.0\r\n"
                          "Host: " + host + "\r\n";
    if (!accept.empty())
        request += "Accept: " + accept + "\r\n";
    request += "\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        sent += static_cast<size_t>(n);
    }

    std::string response;
    char buf[4096];
    while (true) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
    if (std::sscanf(response.c_str(), "HTTP/%*d.%*d %d", &code) != 1)
        return false;
    size_t sep = response.find("\r\n\r\n");
    if (sep == std::string::npos)
        return false;
    if (content_type) {
        content_type->clear();
        std::string head = response.substr(0, sep);
        size_t at = head.find("Content-Type:");
        if (at != std::string::npos) {
            at += std::strlen("Content-Type:");
            size_t end = head.find("\r\n", at);
            while (at < end && head[at] == ' ')
                ++at;
            *content_type = head.substr(at, end - at);
        }
    }
    body = response.substr(sep + 4);
    return true;
}

/**
 * Check every exemplar suffix in an OpenMetrics body: a line
 * containing " # " must be a `_bucket` sample whose suffix is
 * `{label="value",...} <number>`. Returns the number of exemplars
 * seen, or -1 with a diagnostic on malformed syntax.
 */
long
checkExemplarSyntax(const std::string &body)
{
    long exemplars = 0;
    size_t pos = 0;
    while (pos < body.size()) {
        size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        size_t hash = line.find(" # ");
        if (hash == std::string::npos)
            continue;
        if (line.find("_bucket{") == std::string::npos) {
            std::fprintf(stderr,
                         "FAIL: exemplar on a non-bucket line: "
                         "'%s'\n", line.c_str());
            return -1;
        }
        std::string suffix = line.substr(hash + 3);
        size_t close = suffix.rfind('}');
        if (suffix.empty() || suffix[0] != '{' ||
            close == std::string::npos || close + 1 >= suffix.size() ||
            suffix[close + 1] != ' ') {
            std::fprintf(stderr,
                         "FAIL: malformed exemplar suffix: '%s'\n",
                         line.c_str());
            return -1;
        }
        char *end = nullptr;
        std::strtod(suffix.c_str() + close + 2, &end);
        if (end == suffix.c_str() + close + 2) {
            std::fprintf(stderr,
                         "FAIL: exemplar without a value: '%s'\n",
                         line.c_str());
            return -1;
        }
        ++exemplars;
    }
    return exemplars;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: scrape_check HOST PORT "
                     "[timeout_seconds]\n");
        return 2;
    }
    std::string host = argv[1];
    uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
    double timeout = argc > 3 ? std::atof(argv[3]) : 10.0;

    // 1. /healthz with retry: the daemon may still be starting.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(timeout));
    int code = 0;
    std::string body;
    bool healthy = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (httpGet(host, port, "/healthz", code, body) &&
            code == 200) {
            healthy = true;
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    if (!healthy) {
        std::fprintf(stderr,
                     "FAIL: /healthz did not answer 200 within "
                     "%.1fs\n", timeout);
        return 1;
    }
    // With a health monitor the body is the structured verdict;
    // without one it is the legacy plain "ok". Validate whichever
    // shape answered.
    if (!body.empty() && body[0] == '{') {
        if (body.find("\"status\"") == std::string::npos ||
            body.find("\"uptime_seconds\"") == std::string::npos ||
            body.find("\"reasons\"") == std::string::npos) {
            std::fprintf(stderr,
                         "FAIL: /healthz JSON lacks status/"
                         "uptime_seconds/reasons: '%s'\n",
                         body.c_str());
            return 1;
        }
        std::printf("ok: /healthz 200 (structured verdict)\n");
    } else {
        std::printf("ok: /healthz 200\n");
    }

    // 2. /metrics must parse as a Prometheus text exposition.
    if (!httpGet(host, port, "/metrics", code, body) ||
        code != 200) {
        std::fprintf(stderr, "FAIL: GET /metrics -> %d\n", code);
        return 1;
    }
    auto parsed = telemetry::parseExposition(body);
    if (!parsed.isOk()) {
        std::fprintf(stderr, "FAIL: /metrics body does not parse: "
                     "%s\n", parsed.status().toString().c_str());
        return 1;
    }
    std::printf("ok: /metrics parses (%zu samples)\n",
                parsed.value().size());

    // 3. /trace must answer Chrome trace-event JSON.
    if (!httpGet(host, port, "/trace?last=8", code, body) ||
        code != 200) {
        std::fprintf(stderr, "FAIL: GET /trace -> %d\n", code);
        return 1;
    }
    if (body.find("\"traceEvents\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /trace body is not a trace document\n");
        return 1;
    }
    std::printf("ok: /trace answers a trace document (%zu bytes)\n",
                body.size());

    // 4. /profile must answer collapsed stacks (or a clean 503
    // where the profiler cannot arm its timer). Every non-empty
    // line ends in " <count>"; an idle server may return nothing.
    if (!httpGet(host, port, "/profile?seconds=1", code, body)) {
        std::fprintf(stderr, "FAIL: GET /profile io error\n");
        return 1;
    }
    if (code == 503) {
        std::printf("ok: /profile 503 (profiler unavailable)\n");
    } else if (code != 200) {
        std::fprintf(stderr, "FAIL: GET /profile -> %d\n", code);
        return 1;
    } else {
        size_t stacks = 0;
        size_t pos = 0;
        while (pos < body.size()) {
            size_t eol = body.find('\n', pos);
            if (eol == std::string::npos)
                eol = body.size();
            std::string line = body.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty())
                continue;
            size_t space = line.rfind(' ');
            if (space == std::string::npos ||
                std::atoll(line.c_str() + space + 1) <= 0) {
                std::fprintf(stderr,
                             "FAIL: /profile line not "
                             "collapsed-stack format: '%s'\n",
                             line.c_str());
                return 1;
            }
            ++stacks;
        }
        std::printf("ok: /profile answers %zu collapsed stacks\n",
                    stacks);
    }

    // 5. Content negotiation: Accept: application/openmetrics-text
    // must select the OpenMetrics rendering — right content type,
    // `# EOF` terminator, well-formed exemplar suffixes, and a body
    // the tolerant exposition parser still accepts.
    std::string content_type;
    if (!httpGet(host, port, "/metrics", code, body,
                 "application/openmetrics-text", &content_type) ||
        code != 200) {
        std::fprintf(stderr,
                     "FAIL: GET /metrics (openmetrics) -> %d\n",
                     code);
        return 1;
    }
    if (content_type.find("application/openmetrics-text") ==
        std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: openmetrics negotiation answered "
                     "content type '%s'\n", content_type.c_str());
        return 1;
    }
    if (body.size() < 6 ||
        body.compare(body.size() - 6, 6, "# EOF\n") != 0) {
        std::fprintf(stderr,
                     "FAIL: openmetrics body lacks the # EOF "
                     "terminator\n");
        return 1;
    }
    long exemplars = checkExemplarSyntax(body);
    if (exemplars < 0)
        return 1;
    auto om_parsed = telemetry::parseExposition(body);
    if (!om_parsed.isOk()) {
        std::fprintf(stderr,
                     "FAIL: openmetrics body does not parse: %s\n",
                     om_parsed.status().toString().c_str());
        return 1;
    }
    std::printf("ok: /metrics openmetrics negotiation (%ld "
                "exemplars)\n", exemplars);

    // 6. The plain Prometheus rendering must be untouched by the
    // exemplar machinery: no exemplar markers, no OpenMetrics
    // terminator, and the plain content type.
    if (!httpGet(host, port, "/metrics", code, body, "text/plain",
                 &content_type) ||
        code != 200) {
        std::fprintf(stderr, "FAIL: GET /metrics (plain) -> %d\n",
                     code);
        return 1;
    }
    if (content_type.find("text/plain") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: plain scrape answered content type "
                     "'%s'\n", content_type.c_str());
        return 1;
    }
    if (body.find(" # ") != std::string::npos ||
        body.find("# EOF") != std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: plain Prometheus output carries "
                     "OpenMetrics markers\n");
        return 1;
    }
    std::printf("ok: /metrics plain output free of exemplar "
                "markers\n");

    // 7. /debug/tail must answer attribution JSON.
    if (!httpGet(host, port, "/debug/tail", code, body,
                 std::string(), &content_type) ||
        code != 200) {
        std::fprintf(stderr, "FAIL: GET /debug/tail -> %d\n", code);
        return 1;
    }
    if (body.find("\"fleet\"") == std::string::npos ||
        body.find("\"models\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /debug/tail body is not an attribution "
                     "document\n");
        return 1;
    }
    std::printf("ok: /debug/tail answers attribution JSON\n");

    // 8. /debug/timeseries: windowed series JSON for a metric the
    // server always has, JSON 400s for parameter errors, and a
    // JSON 404 for an unknown metric. Skipped (with a 503) when
    // the daemon runs without the time-series store.
    // The store adopts metrics on its first sampler tick, so right
    // after startup the known-metric query can briefly 404; retry
    // within the timeout budget.
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(timeout));
    while (true) {
        if (!httpGet(host, port,
                     "/debug/timeseries?metric=djinn_health"
                     "&window=60",
                     code, body, std::string(), &content_type)) {
            std::fprintf(stderr,
                         "FAIL: GET /debug/timeseries io error\n");
            return 1;
        }
        if (code != 404 ||
            std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    if (code == 503) {
        std::printf("ok: /debug/timeseries 503 (store disabled)\n");
        return 0;
    }
    if (code != 200 ||
        body.find("\"series\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: GET /debug/timeseries -> %d '%s'\n",
                     code, body.c_str());
        return 1;
    }
    if (content_type.find("application/json") ==
        std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /debug/timeseries content type '%s'\n",
                     content_type.c_str());
        return 1;
    }
    if (!httpGet(host, port, "/debug/timeseries", code, body) ||
        code != 400 ||
        body.find("\"error\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /debug/timeseries without metric "
                     "should 400 with a JSON error (got %d)\n",
                     code);
        return 1;
    }
    if (!httpGet(host, port,
                 "/debug/timeseries?metric=djinn_health"
                 "&window=999999999",
                 code, body) ||
        code != 400 ||
        body.find("\"error\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /debug/timeseries with out-of-bounds "
                     "window should 400 (got %d)\n", code);
        return 1;
    }
    if (!httpGet(host, port,
                 "/debug/timeseries?metric=no_such_metric", code,
                 body) ||
        code != 404 ||
        body.find("\"error\"") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: /debug/timeseries with unknown metric "
                     "should 404 with a JSON error (got %d)\n",
                     code);
        return 1;
    }
    std::printf("ok: /debug/timeseries serves series JSON with "
                "JSON errors\n");
    return 0;
}
