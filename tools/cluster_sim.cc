/**
 * @file
 * cluster_sim - drive the cluster-scale serving simulator from the
 * command line.
 *
 * Usage:
 *   cluster_sim [--nodes N] [--gpus-per-node N] [--policy P]
 *               [--workload poisson|diurnal|mmpp] [--rate QPS]
 *               [--duration SECONDS] [--requests N] [--batch N]
 *               [--batch-timeout-ms MS] [--queue-depth N]
 *               [--slo-ms MS] [--retries N] [--seed N]
 *               [--sched static|adaptive|fair|hybrid]
 *               [--tenant APP=WEIGHT[,APP=WEIGHT...]]
 *               [--apps IMC,ASR,...] [--sample-ms MS] [--json]
 *
 * Generates a synthetic open-loop trace over the Tonic mix (all
 * seven apps by default), replays it through N simulated DjiNN
 * servers behind the chosen routing policy, and prints a summary
 * table, or — with --json — the full djinn_cluster_* metric
 * snapshot (including the sampled time series) in the microbench
 * JSON schema. Fully deterministic: the same flags and seed print
 * byte-identical output, which scripts/check_build.sh relies on.
 *
 * Policies: rr (round-robin), jsq (join-shortest-queue), po2
 * (power of two choices), jsq-d / po2-d (deadline-aware variants;
 * they shed requests whose SLO no node can meet). Deadline-aware
 * policies need --slo-ms.
 *
 * --sched selects the node-local dispatch policy (DESIGN.md §16):
 * static (tuned batches, round-robin — the default), adaptive
 * (SLO-driven batch sizing), fair (weighted fair sharing across
 * tenants from --tenant), or hybrid (both). --tenant APP=WEIGHT
 * gives APP its own tenant at that fair-share weight; unlisted
 * apps share the default tenant at weight 1.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/simulator.hh"
#include "cluster/telemetry.hh"
#include "cluster/workload.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "serve/app.hh"
#include "telemetry/attribution.hh"
#include "telemetry/exposition.hh"

using namespace djinn;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cluster_sim [--nodes N] [--gpus-per-node N]\n"
        "    [--policy rr|jsq|po2|jsq-d|po2-d]\n"
        "    [--workload poisson|diurnal|mmpp] [--rate QPS]\n"
        "    [--duration SECONDS] [--requests N] [--batch N]\n"
        "    [--batch-timeout-ms MS] [--queue-depth N]\n"
        "    [--slo-ms MS] [--retries N] [--seed N]\n"
        "    [--sched static|adaptive|fair|hybrid]\n"
        "    [--tenant APP=WEIGHT[,APP=WEIGHT...]]\n"
        "    [--apps IMC,ASR,...] [--sample-ms MS] [--json]\n");
    return 2;
}

double
parseDouble(const char *flag, const char *value)
{
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0')
        fatal("%s: not a number: '%s'", flag, value);
    return parsed;
}

long
parseLong(const char *flag, const char *value)
{
    char *end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0')
        fatal("%s: not an integer: '%s'", flag, value);
    return parsed;
}

} // namespace

int
main(int argc, char **argv)
{
    cluster::WorkloadSpec workload;
    cluster::ClusterConfig config;
    bool json = false;

    workload.apps = serve::allApps();
    workload.durationSeconds = 10.0;
    workload.meanRate = 2000.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--nodes") {
            config.nodeCount = static_cast<int>(
                parseLong("--nodes", value()));
        } else if (arg == "--gpus-per-node") {
            config.node.gpus = static_cast<int>(
                parseLong("--gpus-per-node", value()));
        } else if (arg == "--policy") {
            config.policy = cluster::routePolicyFromName(value());
        } else if (arg == "--workload") {
            workload.process =
                cluster::arrivalProcessFromName(value());
        } else if (arg == "--rate") {
            workload.meanRate = parseDouble("--rate", value());
        } else if (arg == "--duration") {
            workload.durationSeconds =
                parseDouble("--duration", value());
        } else if (arg == "--requests") {
            workload.maxRequests = static_cast<uint64_t>(
                parseLong("--requests", value()));
        } else if (arg == "--batch") {
            config.node.maxBatch = parseLong("--batch", value());
        } else if (arg == "--batch-timeout-ms") {
            config.node.batchTimeout =
                1e-3 * parseDouble("--batch-timeout-ms", value());
        } else if (arg == "--queue-depth") {
            config.node.queueLimit =
                parseLong("--queue-depth", value());
        } else if (arg == "--slo-ms") {
            config.deadlineSeconds =
                1e-3 * parseDouble("--slo-ms", value());
            config.node.sloSeconds = config.deadlineSeconds;
        } else if (arg == "--sched") {
            std::string mode = value();
            if (mode == "static") {
                config.node.adaptiveBatch = false;
                config.node.fairShare = false;
            } else if (mode == "adaptive") {
                config.node.adaptiveBatch = true;
            } else if (mode == "fair") {
                config.node.fairShare = true;
            } else if (mode == "hybrid") {
                config.node.adaptiveBatch = true;
                config.node.fairShare = true;
            } else {
                fatal("--sched wants static|adaptive|fair|hybrid, "
                      "got '%s'", mode.c_str());
            }
        } else if (arg == "--tenant") {
            for (const std::string &pair : split(value(), ',')) {
                size_t eq = pair.find('=');
                if (eq == std::string::npos || eq == 0)
                    fatal("--tenant wants APP=WEIGHT pairs, got "
                          "'%s'", pair.c_str());
                double weight =
                    parseDouble("--tenant", pair.c_str() + eq + 1);
                if (weight <= 0.0)
                    fatal("--tenant weight must be positive");
                // Validate the app name eagerly for a clear error.
                serve::App app =
                    serve::appFromName(pair.substr(0, eq));
                config.node.tenantWeights[serve::appName(app)] =
                    weight;
            }
        } else if (arg == "--retries") {
            config.retry.maxAttempts = 1 + static_cast<int>(
                parseLong("--retries", value()));
        } else if (arg == "--seed") {
            workload.seed = static_cast<uint64_t>(
                parseLong("--seed", value()));
            config.seed = workload.seed;
        } else if (arg == "--apps") {
            workload.apps.clear();
            for (const std::string &name : split(value(), ','))
                workload.apps.push_back(serve::appFromName(name));
        } else if (arg == "--sample-ms") {
            config.sampleInterval =
                1e-3 * parseDouble("--sample-ms", value());
        } else if (arg == "--json") {
            json = true;
        } else {
            return usage();
        }
    }

    cluster::ClusterTrace trace =
        cluster::generateTrace(workload);
    cluster::ClusterResult result =
        cluster::runClusterSim(config, trace);

    char scenario[128];
    std::snprintf(scenario, sizeof(scenario),
                  "nodes=%d,gpus=%d,workload=%s,rate=%g",
                  config.nodeCount, config.node.gpus,
                  cluster::arrivalProcessName(workload.process),
                  workload.meanRate);

    if (json) {
        telemetry::MetricRegistry registry;
        cluster::recordClusterResult(registry, scenario, config,
                                     result,
                                     /*includeSeries=*/true);
        std::fputs(
            telemetry::renderJson(registry.snapshot()).c_str(),
            stdout);
        return 0;
    }

    std::printf("cluster_sim: %s policy=%s\n", scenario,
                cluster::routePolicyName(config.policy));
    std::printf("  offered      %llu requests (%.1f qps over "
                "%.2fs)\n",
                static_cast<unsigned long long>(result.offered),
                result.offeredQps, result.traceDuration);
    std::printf("  completed    %llu (%.1f qps, drained at "
                "%.2fs)\n",
                static_cast<unsigned long long>(result.completed),
                result.throughputQps, result.duration);
    std::printf("  shed         %llu overload, %llu deadline; "
                "%llu retries; %llu lost (%.2f%%)\n",
                static_cast<unsigned long long>(
                    result.shedOverload),
                static_cast<unsigned long long>(
                    result.shedDeadline),
                static_cast<unsigned long long>(result.retries),
                static_cast<unsigned long long>(result.lost),
                100.0 * result.lostFraction());
    std::printf("  latency      mean %.2fms  p50 %.2fms  "
                "p95 %.2fms  p99 %.2fms  p99.9 %.2fms\n",
                1e3 * result.latency.mean, 1e3 * result.latency.p50,
                1e3 * result.latency.p95, 1e3 * result.latency.p99,
                1e3 * result.latency.p999);
    std::printf("  batching     %llu batches, %.2f queries/batch; "
                "occupancy %.2f\n",
                static_cast<unsigned long long>(result.batches),
                result.meanBatchQueries, result.occupancy);
    std::printf("  queue depth  mean %.1f, max on one node %lld\n",
                result.meanQueueDepth,
                static_cast<long long>(result.maxNodeQueueDepth));
    std::printf("  events       %llu fired, trace hash "
                "%016llx\n",
                static_cast<unsigned long long>(result.eventsFired),
                static_cast<unsigned long long>(result.traceHash));

    std::printf("\n  %-6s %10s %10s %12s %12s\n", "app", "offered",
                "served", "p50 ms", "p99 ms");
    for (const cluster::AppClusterStats &app : result.apps) {
        std::printf("  %-6s %10llu %10llu %12.2f %12.2f\n",
                    serve::appName(app.app),
                    static_cast<unsigned long long>(app.offered),
                    static_cast<unsigned long long>(app.completed),
                    1e3 * app.latency.p50, 1e3 * app.latency.p99);
    }

    // Why is the p99 what it is? Same attribution engine as the
    // live server's /debug/tail, over this run's flight records.
    std::printf("\n%s",
                telemetry::renderTailReport(telemetry::attributeTail(
                                                result.flightRecords,
                                                99.0))
                    .c_str());
    return 0;
}
